//! Query-level resilience: per-attempt timeouts, retry budgets with
//! exponential backoff, hedged requests, and correlated fault plans.
//!
//! The lifecycle module (PR 6) models replicas that are either healthy
//! or dead. Production fleets also produce the modes in between: a
//! limping box that keeps accepting work at a tenth of its profile
//! speed (gray failure / limpware), a query stuck behind it, and the
//! retry storm that turns one slow replica into fleet-wide congestion
//! collapse. This module supplies the client-side vocabulary the
//! simulator speaks when a [`ResilienceConfig`] is attached to a run
//! ([`serve_resilient`](crate::serve_resilient)):
//!
//! * [`ResilienceConfig`] — a per-attempt timeout, a [`RetryPolicy`]
//!   consulted when it fires, and an optional [`HedgePolicy`];
//! * [`RetryPolicy`] — attempt cap, exponential backoff with seeded
//!   jitter, and a global [`RetryBudget`] (token bucket refilled by
//!   successes) that provably bounds retry amplification;
//! * [`HedgePolicy`] — after a fixed or quantile-derived delay,
//!   dispatch a duplicate attempt to a *different* replica;
//!   first completion wins, the loser is cancelled lazily;
//! * [`ResilienceStats`] — timeouts fired, retries by attempt, hedges
//!   issued/won, wasted service seconds — reported through
//!   [`SimResult::resilience`](crate::SimResult::resilience);
//! * [`FaultPlan`] — seeded, correlated fail-stop/degrade bursts
//!   expanded into a [`LifecycleSchedule`], the injection side of the
//!   same story.
//!
//! An inert config (no timeout, no hedge) arms nothing, draws no
//! randomness, and leaves the event loop bit-identical to
//! [`serve_routed`](crate::serve_routed) — pinned by proptest.

use crate::lifecycle::{LifecycleEvent, LifecycleSchedule};

/// Retry discipline consulted when a per-attempt timeout fires.
///
/// The default policy ([`RetryPolicy::none`]) allows a single attempt:
/// the first timeout is final. [`RetryPolicy::new`] raises the attempt
/// cap and configures exponential backoff; [`with_budget`] adds the
/// global token bucket that keeps retries from amplifying overload
/// into congestion collapse.
///
/// [`with_budget`]: Self::with_budget
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts allowed per query, including the first (≥ 1).
    pub max_attempts: usize,
    /// Backoff before retry `k` (1-based) is
    /// `min(base · factor^(k-1), max)`, stretched by up to
    /// `jitter_frac` with seeded uniform jitter.
    pub backoff_base_s: f64,
    /// Multiplier applied per successive retry (≥ 1).
    pub backoff_factor: f64,
    /// Upper bound on the un-jittered backoff delay in seconds.
    pub backoff_max_s: f64,
    /// Jitter fraction in `[0, 1]`: the delay is multiplied by
    /// `1 + jitter_frac · u` with `u` uniform in `[0, 1)` from a
    /// dedicated seeded stream. Zero keeps backoff deterministic
    /// per-attempt.
    pub jitter_frac: f64,
    /// Global retry budget; `None` allows unbounded retries (up to the
    /// attempt cap) — the storm-prone configuration the budget exists
    /// to beat.
    pub budget: Option<RetryBudget>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

impl RetryPolicy {
    /// No retries: one attempt per query, the first final timeout
    /// resolves it.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            backoff_base_s: 0.0,
            backoff_factor: 1.0,
            backoff_max_s: 0.0,
            jitter_frac: 0.0,
            budget: None,
        }
    }

    /// Up to `max_attempts` total attempts with exponential backoff
    /// `min(base · factor^(k-1), max)` before retry `k`.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts == 0`, any duration is negative or
    /// non-finite, or `factor < 1`.
    pub fn new(max_attempts: usize, backoff_base_s: f64, backoff_factor: f64) -> Self {
        assert!(
            max_attempts > 0,
            "retry policy must allow at least one attempt"
        );
        assert!(
            backoff_base_s.is_finite() && backoff_base_s >= 0.0,
            "backoff base must be non-negative and finite"
        );
        assert!(
            backoff_factor.is_finite() && backoff_factor >= 1.0,
            "backoff factor must be at least 1"
        );
        Self {
            max_attempts,
            backoff_base_s,
            backoff_factor,
            backoff_max_s: f64::INFINITY,
            jitter_frac: 0.0,
            budget: None,
        }
    }

    /// Caps the un-jittered backoff delay.
    ///
    /// # Panics
    ///
    /// Panics if `backoff_max_s` is negative or NaN (infinity — no
    /// cap — is allowed).
    pub fn with_backoff_cap(mut self, backoff_max_s: f64) -> Self {
        assert!(
            !backoff_max_s.is_nan() && backoff_max_s >= 0.0,
            "backoff cap must be non-negative"
        );
        self.backoff_max_s = backoff_max_s;
        self
    }

    /// Sets the seeded-jitter fraction.
    ///
    /// # Panics
    ///
    /// Panics unless `jitter_frac` is in `[0, 1]`.
    pub fn with_jitter(mut self, jitter_frac: f64) -> Self {
        assert!(
            jitter_frac.is_finite() && (0.0..=1.0).contains(&jitter_frac),
            "jitter fraction must be in [0, 1]"
        );
        self.jitter_frac = jitter_frac;
        self
    }

    /// Attaches a global [`RetryBudget`].
    pub fn with_budget(mut self, budget: RetryBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// The un-jittered backoff before retry `retry_index` (1-based:
    /// the first retry is 1).
    pub fn backoff_s(&self, retry_index: usize) -> f64 {
        debug_assert!(retry_index >= 1);
        let raw = self.backoff_base_s * self.backoff_factor.powi(retry_index as i32 - 1);
        raw.min(self.backoff_max_s)
    }
}

/// A global retry token bucket: retries spend one token, successes
/// refill `refill_per_success` (capped at `capacity`).
///
/// With a refill of `r`, long-run retries are bounded by `r` per
/// success plus the initial `capacity` — the classic "retries may not
/// exceed 10% of successes" guarantee (`r = 0.1`) that prevents a
/// timeout burst from amplifying into a self-sustaining retry storm:
/// once the bucket drains, timed-out queries resolve as final instead
/// of re-entering an already-saturated fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryBudget {
    /// Token capacity (also the initial fill, ≥ 1).
    pub capacity: f64,
    /// Tokens refunded per successful completion.
    pub refill_per_success: f64,
}

impl RetryBudget {
    /// A budget of `capacity` tokens refilled by `refill_per_success`
    /// per completion.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity ≥ 1` and `refill_per_success` is in
    /// `[0, 1]`, both finite.
    pub fn new(capacity: f64, refill_per_success: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity >= 1.0,
            "retry budget capacity must be at least 1"
        );
        assert!(
            refill_per_success.is_finite() && (0.0..=1.0).contains(&refill_per_success),
            "retry budget refill must be in [0, 1]"
        );
        Self {
            capacity,
            refill_per_success,
        }
    }
}

/// When to dispatch a hedge (duplicate attempt).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HedgeDelay {
    /// Hedge a fixed number of seconds after the attempt starts.
    Fixed(f64),
    /// Hedge once the attempt has been outstanding longer than this
    /// running quantile of observed completion latencies (the classic
    /// "hedge past p95" discipline). Until
    /// [`HedgePolicy::MIN_QUANTILE_SAMPLES`] completions have been
    /// observed no hedges are issued — the estimate would be noise.
    Quantile(f64),
}

/// Hedged-request discipline: after [`HedgeDelay`], dispatch one
/// duplicate of the outstanding attempt, routed to a *different*
/// replica whenever the group has one; first completion wins and the
/// loser is cancelled lazily (its queued work is purged, its in-flight
/// service runs out and is accounted as wasted).
///
/// At most one hedge is issued per attempt — retries re-arm the hedge
/// clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgePolicy {
    /// When the hedge fires, measured from the attempt's start.
    pub delay: HedgeDelay,
}

impl HedgePolicy {
    /// Completions observed before a quantile-derived delay activates.
    pub const MIN_QUANTILE_SAMPLES: usize = 32;

    /// Hedge a fixed `delay_s` after each attempt starts.
    ///
    /// # Panics
    ///
    /// Panics if `delay_s` is negative or non-finite.
    pub fn after(delay_s: f64) -> Self {
        assert!(
            delay_s.is_finite() && delay_s >= 0.0,
            "hedge delay must be non-negative and finite"
        );
        Self {
            delay: HedgeDelay::Fixed(delay_s),
        }
    }

    /// Hedge once an attempt outlives the running `q`-quantile of
    /// completion latency.
    ///
    /// # Panics
    ///
    /// Panics unless `q` is in `(0, 1)`.
    pub fn at_quantile(q: f64) -> Self {
        assert!(
            q.is_finite() && q > 0.0 && q < 1.0,
            "hedge quantile must be in (0, 1)"
        );
        Self {
            delay: HedgeDelay::Quantile(q),
        }
    }
}

/// Per-run resilience options attached by
/// [`serve_resilient`](crate::serve_resilient): a per-attempt timeout,
/// the [`RetryPolicy`] consulted when it fires, and an optional
/// [`HedgePolicy`]. The default ([`ResilienceConfig::new`]) is inert —
/// no timeout, no hedge — and leaves the event loop bit-identical to
/// [`serve_routed`](crate::serve_routed).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResilienceConfig {
    /// Per-attempt timeout in seconds; `None` never times out.
    pub timeout_s: Option<f64>,
    /// What a fired timeout does next.
    pub retry: RetryPolicy,
    /// Hedged-request discipline; `None` never hedges.
    pub hedge: Option<HedgePolicy>,
}

impl ResilienceConfig {
    /// The inert configuration: no timeout, no retries, no hedging.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms a per-attempt timeout.
    ///
    /// # Panics
    ///
    /// Panics unless `timeout_s` is strictly positive and finite.
    pub fn with_timeout(mut self, timeout_s: f64) -> Self {
        assert!(
            timeout_s.is_finite() && timeout_s > 0.0,
            "timeout must be positive and finite"
        );
        self.timeout_s = Some(timeout_s);
        self
    }

    /// Sets the retry policy consulted when a timeout fires.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables hedged requests.
    pub fn with_hedge(mut self, hedge: HedgePolicy) -> Self {
        self.hedge = Some(hedge);
        self
    }

    /// Whether this configuration can ever arm an event: an inert
    /// config keeps the loop on the resilience-free fast path.
    pub fn is_inert(&self) -> bool {
        self.timeout_s.is_none() && self.hedge.is_none()
    }
}

/// Client-side resilience telemetry for one run, reported through
/// [`SimResult::resilience`](crate::SimResult::resilience).
///
/// `timeouts` counts fired per-attempt timeouts (a query retried twice
/// contributes up to three); `timed_out` counts queries resolved as
/// timed-out-final — the conservation ledger reads
/// `completed + shed + dropped + timed_out == admitted`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResilienceStats {
    /// Per-attempt timeouts fired (including the one that resolves a
    /// query as final).
    pub timeouts: usize,
    /// Queries resolved as timed-out-final.
    pub timed_out: usize,
    /// Retries dispatched, indexed by retry number − 1 (`retries[0]`
    /// counts first retries, i.e. second attempts).
    pub retries: Vec<usize>,
    /// Retries denied by an exhausted [`RetryBudget`]; each denial
    /// resolves its query as timed-out-final.
    pub retries_denied: usize,
    /// Hedges dispatched.
    pub hedges_issued: usize,
    /// Queries whose hedge lane finished before the primary.
    pub hedges_won: usize,
    /// Service seconds consumed by cancelled lanes (hedge losers and
    /// attempts that finished after their query was resolved),
    /// amortized per batch slot.
    pub wasted_service_s: f64,
}

impl ResilienceStats {
    /// Total retries across all attempt indices.
    pub fn total_retries(&self) -> usize {
        self.retries.iter().sum()
    }
}

/// Which fault a [`FaultPlan`] burst injects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Kill the chosen replicas outright.
    FailStop,
    /// Degrade the chosen replicas to `speed` × profile (limpware).
    Degrade {
        /// Fraction of profile speed, in `(0, 1]`.
        speed: f64,
    },
}

/// One correlated burst: at `time`, `count` distinct replicas —
/// chosen by the plan's seeded stream — suffer `kind`, and (optionally)
/// all recover together `recover_after_s` later.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultBurst {
    /// Injection instant in seconds.
    pub time: f64,
    /// Fail-stop or degrade.
    pub kind: FaultKind,
    /// Distinct replicas hit (clamped to the group size at expansion).
    pub count: usize,
    /// Recovery delay; `None` leaves the fault in place.
    pub recover_after_s: Option<f64>,
}

/// A seeded generator of *correlated* fault injections: bursts that
/// take out or degrade several replicas of one group at once (a rack
/// switch brown-out, a bad kernel rollout), expanded deterministically
/// into the [`LifecycleSchedule`] vocabulary the simulator already
/// speaks.
///
/// The same `(seed, bursts)` pair always expands to the same schedule;
/// different seeds redraw which replicas each burst hits.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    bursts: Vec<FaultBurst>,
}

impl FaultPlan {
    /// An empty plan drawing replica choices from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            bursts: Vec::new(),
        }
    }

    /// Adds a correlated fail-stop burst: `count` replicas die at
    /// `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is negative or non-finite, or `count == 0`.
    pub fn fail_stop_burst(self, time: f64, count: usize) -> Self {
        self.burst(FaultBurst {
            time,
            kind: FaultKind::FailStop,
            count,
            recover_after_s: None,
        })
    }

    /// Adds a correlated degrade burst: `count` replicas limp at
    /// `speed` × profile from `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is negative or non-finite, `count == 0`, or
    /// `speed` is outside `(0, 1]`.
    pub fn degrade_burst(self, time: f64, count: usize, speed: f64) -> Self {
        self.burst(FaultBurst {
            time,
            kind: FaultKind::Degrade { speed },
            count,
            recover_after_s: None,
        })
    }

    /// Adds one burst with full control (including recovery).
    ///
    /// # Panics
    ///
    /// Panics on a non-finite or negative time or recovery delay, a
    /// zero count, or a degrade speed outside `(0, 1]`.
    pub fn burst(mut self, burst: FaultBurst) -> Self {
        assert!(
            burst.time.is_finite() && burst.time >= 0.0,
            "fault burst time must be non-negative and finite"
        );
        assert!(burst.count > 0, "fault burst must hit at least one replica");
        if let FaultKind::Degrade { speed } = burst.kind {
            assert!(
                speed.is_finite() && speed > 0.0 && speed <= 1.0,
                "degraded speed must be in (0, 1]"
            );
        }
        if let Some(r) = burst.recover_after_s {
            assert!(
                r.is_finite() && r > 0.0,
                "recovery delay must be positive and finite"
            );
        }
        self.bursts.push(burst);
        self
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.bursts.is_empty()
    }

    /// Expands the plan against a group of `replicas` slots into a
    /// time-ordered [`LifecycleSchedule`]. Each burst draws `count`
    /// distinct replica indices (clamped to the group size) from the
    /// plan's splitmix64 stream via a partial Fisher–Yates shuffle, so
    /// co-failure is genuinely correlated: one burst, one instant,
    /// several replicas.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0`.
    pub fn expand(&self, replicas: usize) -> LifecycleSchedule {
        assert!(
            replicas > 0,
            "cannot expand a fault plan over zero replicas"
        );
        let mut rng = self.seed;
        let mut next_u64 = move || -> u64 {
            // splitmix64 — the same stream routers and admission use.
            rng = rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = rng;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut events: Vec<LifecycleEvent> = Vec::new();
        let mut pool: Vec<usize> = (0..replicas).collect();
        for b in &self.bursts {
            let hit = b.count.min(replicas);
            // Partial Fisher–Yates over the slot pool: the first `hit`
            // entries after shuffling are the burst's victims.
            for i in 0..hit {
                let j = i + (next_u64() as usize) % (replicas - i);
                pool.swap(i, j);
            }
            let mut victims: Vec<usize> = pool[..hit].to_vec();
            // Deterministic event order within the instant: ascending
            // replica index, independent of the draw order.
            victims.sort_unstable();
            for &r in &victims {
                events.push(match b.kind {
                    FaultKind::FailStop => LifecycleEvent::fail_stop(b.time, r),
                    FaultKind::Degrade { speed } => LifecycleEvent::degrade(b.time, r, speed),
                });
            }
            if let Some(delay) = b.recover_after_s {
                for &r in &victims {
                    events.push(LifecycleEvent::recover(b.time + delay, r));
                }
            }
        }
        events.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("finite times"));
        LifecycleSchedule::new(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifecycle::LifecycleAction;

    #[test]
    fn retry_policy_backoff_is_exponential_and_capped() {
        let p = RetryPolicy::new(4, 0.010, 2.0).with_backoff_cap(0.030);
        assert!((p.backoff_s(1) - 0.010).abs() < 1e-12);
        assert!((p.backoff_s(2) - 0.020).abs() < 1e-12);
        assert!((p.backoff_s(3) - 0.030).abs() < 1e-12); // capped from 0.040
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_attempt_policy_is_rejected() {
        RetryPolicy::new(0, 0.010, 2.0);
    }

    #[test]
    #[should_panic(expected = "backoff factor")]
    fn shrinking_backoff_is_rejected() {
        RetryPolicy::new(3, 0.010, 0.5);
    }

    #[test]
    #[should_panic(expected = "jitter fraction")]
    fn jitter_above_one_is_rejected() {
        let _ = RetryPolicy::new(3, 0.010, 2.0).with_jitter(1.5);
    }

    #[test]
    #[should_panic(expected = "budget capacity")]
    fn sub_unit_budget_capacity_is_rejected() {
        RetryBudget::new(0.5, 0.1);
    }

    #[test]
    #[should_panic(expected = "budget refill")]
    fn budget_refill_above_one_is_rejected() {
        RetryBudget::new(10.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "hedge quantile")]
    fn hedge_quantile_must_be_interior() {
        HedgePolicy::at_quantile(1.0);
    }

    #[test]
    #[should_panic(expected = "hedge delay")]
    fn negative_hedge_delay_is_rejected() {
        HedgePolicy::after(-0.001);
    }

    #[test]
    fn inert_config_detects_itself() {
        assert!(ResilienceConfig::new().is_inert());
        assert!(!ResilienceConfig::new().with_timeout(0.1).is_inert());
        assert!(!ResilienceConfig::new()
            .with_hedge(HedgePolicy::after(0.05))
            .is_inert());
        // A retry policy alone cannot fire without a timeout: still
        // inert.
        assert!(ResilienceConfig::new()
            .with_retry(RetryPolicy::new(3, 0.01, 2.0))
            .is_inert());
    }

    #[test]
    #[should_panic(expected = "timeout must be positive")]
    fn zero_timeout_is_rejected() {
        let _ = ResilienceConfig::new().with_timeout(0.0);
    }

    #[test]
    fn stats_sum_retries_across_attempts() {
        let s = ResilienceStats {
            retries: vec![5, 2, 1],
            ..ResilienceStats::default()
        };
        assert_eq!(s.total_retries(), 8);
        assert_eq!(ResilienceStats::default().total_retries(), 0);
    }

    #[test]
    fn fault_plan_expansion_is_deterministic_and_correlated() {
        let plan = FaultPlan::new(7)
            .degrade_burst(1.0, 2, 0.25)
            .burst(FaultBurst {
                time: 2.0,
                kind: FaultKind::FailStop,
                count: 3,
                recover_after_s: Some(0.5),
            });
        let a = plan.expand(8);
        let b = plan.expand(8);
        assert_eq!(a, b, "same seed, same schedule");
        let events = a.events();
        // Burst 1: two degrades at t=1; burst 2: three fail-stops at
        // t=2 and three recoveries at t=2.5.
        assert_eq!(events.len(), 2 + 3 + 3);
        let degrades: Vec<_> = events
            .iter()
            .filter(|e| matches!(e.action, LifecycleAction::Degrade { .. }))
            .collect();
        assert_eq!(degrades.len(), 2);
        assert!(degrades.iter().all(|e| e.time == 1.0), "correlated instant");
        assert!(
            degrades[0].replica < degrades[1].replica,
            "sorted within burst"
        );
        let failed: Vec<usize> = events
            .iter()
            .filter(|e| e.action == LifecycleAction::FailStop)
            .map(|e| e.replica)
            .collect();
        let recovered: Vec<usize> = events
            .iter()
            .filter(|e| e.action == LifecycleAction::Recover)
            .map(|e| e.replica)
            .collect();
        assert_eq!(failed, recovered, "the burst's victims recover together");
        // A different seed redraws the victims somewhere in the space.
        let other = FaultPlan::new(8).degrade_burst(1.0, 2, 0.25).expand(8);
        assert_eq!(other.events().len(), 2);
    }

    #[test]
    fn fault_plan_burst_count_clamps_to_group_size() {
        let plan = FaultPlan::new(3).fail_stop_burst(1.0, 10);
        let schedule = plan.expand(2);
        assert_eq!(schedule.events().len(), 2);
        let hit: Vec<usize> = schedule.events().iter().map(|e| e.replica).collect();
        assert_eq!(hit, vec![0, 1], "every replica hit exactly once");
        assert!(!plan.is_empty());
        assert!(FaultPlan::new(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn empty_burst_is_rejected() {
        let _ = FaultPlan::new(0).fail_stop_burst(1.0, 0);
    }
}
