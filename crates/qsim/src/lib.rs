//! Discrete-event queueing simulator for at-scale recommendation serving.
//!
//! The paper's methodology feeds per-query stage latencies into a
//! simulator that measures tail latency and throughput over tens of
//! thousands of Poisson-arriving queries (Section 4, "Accelerator
//! modeling", step 2). This crate is that simulator:
//!
//! * **Resources** model hardware pools with unit capacity — 64 CPU
//!   cores, 1 GPU, `n` accelerator sub-array groups. Stages *share*
//!   resources: a CPU-only two-stage pipeline contends for the same
//!   cores with both stages, exactly like the real deployment.
//! * **Stages** consume `units_per_query` resource units for a
//!   deterministic service time (per-query model latencies are computed
//!   upstream by the hardware models).
//! * **Queries** flow through stages in order; per-query end-to-end
//!   latency lands in a [`LatencyStats`](recpipe_metrics::LatencyStats).
//!
//! # Examples
//!
//! ```
//! use recpipe_qsim::{PipelineSpec, ResourceSpec, StageSpec};
//!
//! // One 64-core CPU serving a single 10 ms stage at 500 QPS.
//! let spec = PipelineSpec::new(vec![ResourceSpec::new("cpu", 64)])
//!     .with_stage(StageSpec::new("rank", 0, 1, 0.010))
//!     .expect("valid stage");
//! let mut result = spec.simulate(500.0, 5_000, 42);
//! assert!(!result.saturated);
//! assert!(result.p99_seconds() < 0.050);
//! ```

mod result;
mod sim;
mod spec;

pub use result::SimResult;
pub use sim::simulate;
pub use spec::{PipelineSpec, ResourceSpec, SpecError, StageSpec};
