//! Discrete-event queueing simulator for at-scale recommendation serving.
//!
//! The paper's methodology feeds per-query stage latencies into a
//! simulator that measures tail latency and throughput over tens of
//! thousands of Poisson-arriving queries (Section 4, "Accelerator
//! modeling", step 2). This crate is that simulator, extended into a
//! batching-aware serving core:
//!
//! * **Resources** are [`ReplicaGroup`]s: fleets of replica pools — 64
//!   CPU cores, 1 GPU, `n` accelerator sub-array groups, or N such
//!   machines behind a load balancer. Each replica is described by a
//!   [`ReplicaProfile`] (unit capacity + a service-rate `speed`
//!   multiplier), so a fleet may mix machine generations; uniform
//!   fleets built with [`ReplicaGroup::replicated`] behave exactly as
//!   before. Each replica has its own private queue; stages *share*
//!   groups: a CPU-only two-stage pipeline contends for the same cores
//!   with both stages, exactly like the real deployment.
//! * **Routing** is pluggable behind [`Router`]: when a group has more
//!   than one replica, every query is routed to one replica per stage —
//!   oblivious [`RoundRobin`], full-information [`JoinShortestQueue`],
//!   sampled [`PowerOfTwoChoices`], free-unit-driven [`LeastWorkLeft`],
//!   speed-aware [`ExpectedWait`], or affinity-preserving [`Sticky`]
//!   (fed by a per-query [`RoutingCtx`] recording prior stages'
//!   choices). Batches never span replicas.
//! * **Stages** consume `units` resource units per launch for a
//!   deterministic service time. Each stage carries a [`BatchModel`]:
//!   how many queries one launch may aggregate and how the batch's
//!   service time scales (per-query serving is the `max_batch = 1`
//!   degenerate case).
//! * **Arrivals** are pluggable behind
//!   [`ArrivalProcess`](recpipe_data::ArrivalProcess): Poisson (the
//!   paper's model), bursty MMPP, diurnal cycles, or closed-loop client
//!   populations.
//! * **Scheduling** is pluggable behind [`SchedulingPolicy`]: [`Fifo`]
//!   work-conserving dispatch, [`BatchWindow`] batch-forming timeouts,
//!   or [`EarliestDeadlineFirst`] SLA-aware ordering.
//! * **Queries** flow through stages in order; per-query end-to-end
//!   latency lands in a [`LatencyStats`](recpipe_metrics::LatencyStats).
//!
//! The legacy entry point [`simulate`] (Poisson + FIFO + per-query
//! stages) is a thin wrapper over [`serve`] and reproduces the
//! pre-batching simulator bit-for-bit on the same seed.
//!
//! # Examples
//!
//! ```
//! use recpipe_qsim::{PipelineSpec, ResourceSpec, StageSpec};
//!
//! // One 64-core CPU serving a single 10 ms stage at 500 QPS.
//! let spec = PipelineSpec::new(vec![ResourceSpec::new("cpu", 64)])
//!     .with_stage(StageSpec::new("rank", 0, 1, 0.010))
//!     .expect("valid stage");
//! let mut result = spec.simulate(500.0, 5_000, 42);
//! assert!(!result.saturated);
//! assert!(result.p99_seconds() < 0.050);
//! ```
//!
//! Batched serving under bursty traffic with a batch-window policy:
//!
//! ```
//! use recpipe_data::MmppArrivals;
//! use recpipe_qsim::{BatchModel, BatchWindow, PipelineSpec, ResourceSpec, StageSpec};
//!
//! // A GPU-like stage: 4 ms per query, but a batch of 8 costs far less
//! // than 8 single launches (marginal cost 0.2).
//! let spec = PipelineSpec::new(vec![ResourceSpec::new("gpu", 1)])
//!     .with_stage(StageSpec::new("rank", 0, 1, 0.004).with_batch(BatchModel::new(8, 0.2)))
//!     .expect("valid stage");
//! let bursty = MmppArrivals::new(100.0, 800.0, 0.2, 0.05);
//! let result = spec.serve(&bursty, &BatchWindow::new(0.002), 4_000, 7);
//! assert_eq!(result.completed, 4_000);
//! assert!(result.mean_batch > 1.0);
//! ```

mod admission;
mod lifecycle;
mod persist;
mod policy;
mod resilience;
mod result;
mod router;
mod shard;
mod sim;
mod spec;

pub use admission::{
    Admission, AdmissionCtx, AdmissionPolicy, AdmissionState, AlwaysPrimary, DeadlineAware,
    LoadAdaptive, PathProfile, PathSet,
};
pub use lifecycle::{
    AutoscaleConfig, FailurePolicy, FleetController, LifecycleAction, LifecycleConfig,
    LifecycleEvent, LifecycleSchedule, SimError, SloSpec, WindowStats,
};
pub use persist::ParseError;
pub use policy::{BatchWindow, EarliestDeadlineFirst, Fifo, QueueEntry, Release, SchedulingPolicy};
pub use resilience::{
    FaultBurst, FaultKind, FaultPlan, HedgeDelay, HedgePolicy, ResilienceConfig, ResilienceStats,
    RetryBudget, RetryPolicy,
};
pub use result::{PathStats, SimResult};
pub use router::{
    ExpectedWait, JoinShortestQueue, LeastWorkLeft, PowerOfTwoChoices, ReplicaLoads,
    ReplicaSnapshot, RoundRobin, Router, RouterState, RoutingCtx, Sticky,
};
pub use shard::serve_routed_sharded;
pub use sim::{
    serve, serve_autoscaled, serve_lifecycle, serve_multipath, serve_resilient, serve_routed,
    simulate,
};
pub use spec::{
    BatchModel, PipelineSpec, ReplicaGroup, ReplicaProfile, ResourceSpec, SpecError, StageSpec,
};
