//! Sharded parallel execution of the lifecycle-free event loop.
//!
//! A chained pipeline whose stages use pairwise-distinct resource
//! groups only couples stages in one direction: a stage-`k` completion
//! at time `t` becomes a stage-`k+1` arrival at the same `t`. That
//! makes the serial event loop decomposable by stage: each stage runs
//! as its own shard (its own heap, queues, batches, and router state)
//! and hands finished queries downstream through a bounded channel,
//! turning an `s`-stage replay into an `s`-deep pipeline of threads.
//!
//! # Determinism
//!
//! [`serve_routed_sharded`] produces the *same* [`SimResult`] as
//! [`serve_routed`](crate::serve_routed) for any worker count,
//! including 1 (the property tests pin this across the router × policy
//! × replica × batching matrix). Three invariants carry the proof:
//!
//! * **Shard boundaries.** A stage's behavior depends only on the
//!   sequence of its own arrivals. Arrivals cross a boundary in
//!   upstream *completion-processing order*, which is nondecreasing in
//!   time, so the downstream shard sees them in the serial loop's
//!   order by induction (the head shard replays the same arrival
//!   schedule either way).
//! * **Merge order at equal timestamps.** In the serial loop ties
//!   break on the global event sequence number — creation order. An
//!   incoming arrival at time `t` was created at `t` (its upstream
//!   completion's instant); every internal shard event pending at `t`
//!   was created strictly earlier (service times are positive, and
//!   policy rechecks only arm strictly-future deadlines). So shards
//!   run internal events before same-time incoming arrivals, which is
//!   exactly the serial tie order. This is also why a zero service
//!   time disqualifies a spec: a zero-length batch would tie its own
//!   launch and break the strict inequality.
//! * **RNG stream splitting.** Router state is seeded per resource
//!   group (`seed ^ group * 0x9e37…`), never shared across groups, so
//!   each shard derives its group's generator from the *global* group
//!   index and draws the identical stream the serial loop would.
//!
//! Floating-point accumulation order is also preserved: every per-slot
//! quantity (busy seconds, estimator columns) is updated by the one
//! shard owning that slot in its serial order, and the merged latency
//! sums are integer nanoseconds.
//!
//! Specs the decomposition cannot handle fall back to the serial loop
//! (same results, one thread): single-stage pipelines, stages sharing
//! a resource group (one slot would need two owners), closed-loop
//! arrivals (completions feed back to admissions, coupling tail to
//! head), and non-positive service times. Lifecycle and autoscaled
//! runs always take [`serve_lifecycle`](crate::serve_lifecycle) /
//! [`serve_autoscaled`](crate::serve_autoscaled), which are serial.

use std::sync::mpsc;

use recpipe_data::ArrivalProcess;

use crate::sim::{serve_routed, ShardOutcome, ShardSink, ShardSource, Sim};
use crate::{PipelineSpec, Router, SchedulingPolicy, SimResult};

/// Completion tuples per channel send: large enough to amortize the
/// channel's synchronization, small enough to keep the stage pipeline
/// primed.
const CHUNK: usize = 4096;
/// Bounded channel depth in chunks (~256k queries of slack per
/// boundary) — backpressure without unbounded buffering.
const CHANNEL_CHUNKS: usize = 64;

/// A query hand-off: completion time at the upstream stage (= arrival
/// time at the downstream stage), query index, original stage-0
/// arrival time.
type Tuple = (f64, usize, f64);

/// Collects every hand-off in memory — the sequential (workers ≤ 1)
/// executor's boundary.
#[derive(Default)]
struct VecSink {
    buf: Vec<Tuple>,
}

impl ShardSink for VecSink {
    fn emit(&mut self, time: f64, query: usize, arrived: f64) {
        self.buf.push((time, query, arrived));
    }
}

struct VecSource {
    iter: std::vec::IntoIter<Tuple>,
}

impl ShardSource for VecSource {
    fn next_arrival(&mut self) -> Option<Tuple> {
        self.iter.next()
    }
}

/// Chunk-batched sender over a bounded channel — the threaded
/// executor's boundary.
struct ChanSink {
    tx: mpsc::SyncSender<Vec<Tuple>>,
    buf: Vec<Tuple>,
}

impl ChanSink {
    fn new(tx: mpsc::SyncSender<Vec<Tuple>>) -> Self {
        Self {
            tx,
            buf: Vec::with_capacity(CHUNK),
        }
    }

    /// Flushes the trailing partial chunk and closes the channel
    /// (dropping the sender ends the downstream shard's input).
    fn finish(self) {
        if !self.buf.is_empty() {
            // A send can only fail if the downstream shard panicked;
            // its own join surfaces that, so the error is ignorable.
            let _ = self.tx.send(self.buf);
        }
    }
}

impl ShardSink for ChanSink {
    fn emit(&mut self, time: f64, query: usize, arrived: f64) {
        self.buf.push((time, query, arrived));
        if self.buf.len() == CHUNK {
            let full = std::mem::replace(&mut self.buf, Vec::with_capacity(CHUNK));
            let _ = self.tx.send(full);
        }
    }
}

struct ChanSource {
    rx: mpsc::Receiver<Vec<Tuple>>,
    cur: std::vec::IntoIter<Tuple>,
}

impl ChanSource {
    fn new(rx: mpsc::Receiver<Vec<Tuple>>) -> Self {
        Self {
            rx,
            cur: Vec::new().into_iter(),
        }
    }
}

impl ShardSource for ChanSource {
    fn next_arrival(&mut self) -> Option<Tuple> {
        loop {
            if let Some(t) = self.cur.next() {
                return Some(t);
            }
            match self.rx.recv() {
                Ok(chunk) => self.cur = chunk.into_iter(),
                Err(_) => return None, // upstream finished and closed
            }
        }
    }
}

/// Whether the per-stage decomposition applies (see the module docs
/// for why each condition is load-bearing).
fn shardable(spec: &PipelineSpec, arrivals: &dyn ArrivalProcess) -> bool {
    let stages = spec.stages();
    if stages.len() < 2 || arrivals.closed_loop().is_some() {
        return false;
    }
    if stages.iter().any(|s| s.service_time <= 0.0) {
        return false;
    }
    for (i, a) in stages.iter().enumerate() {
        if stages[..i].iter().any(|b| b.resource == a.resource) {
            return false;
        }
    }
    true
}

/// Runs the cluster-aware simulation sharded by pipeline stage: one
/// shard (and, with `workers > 1`, one thread) per stage, chained by
/// bounded hand-off channels, merged into a [`SimResult`] **identical
/// to [`serve_routed`](crate::serve_routed)** on the same inputs (see
/// the module docs for the determinism argument).
///
/// `workers` is a parallelism *cap*, not a shard count: `0` resolves
/// to the machine's available parallelism, `1` runs the shards
/// sequentially on the calling thread (buffering each boundary), and
/// anything higher runs one thread per stage. The result never depends
/// on `workers`.
///
/// Specs outside the decomposition's reach (single stage, stages
/// sharing a resource group, closed-loop arrivals, non-positive
/// service times) silently fall back to the serial loop.
///
/// # Panics
///
/// Panics if the pipeline has no stages or `num_queries == 0`.
pub fn serve_routed_sharded(
    spec: &PipelineSpec,
    arrivals: &(dyn ArrivalProcess + Sync),
    policy: &(dyn SchedulingPolicy + Sync),
    router: &(dyn Router + Sync),
    num_queries: usize,
    seed: u64,
    workers: usize,
) -> SimResult {
    assert!(!spec.stages().is_empty(), "pipeline has no stages");
    assert!(num_queries > 0, "need at least one query");
    if !shardable(spec, arrivals) {
        return serve_routed(spec, arrivals, policy, router, num_queries, seed);
    }
    // simlint: allow(shard-nondet) -- worker count only picks the execution strategy
    let workers = if workers == 0 {
        // simlint: allow(shard-nondet) -- sizes the thread pool only; per-shard
        // results are computed independently and merged in shard order, so the
        // merged output is invariant to how many workers ran (proved by the
        // sharded == serial frozen-reference proptests).
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        workers
    };
    let stages = spec.stages().len();
    // simlint: allow(shard-nondet) -- sequential vs threaded produce identical
    // shard outcomes; the branch only avoids thread spawn overhead at 1 worker.
    let outcomes = if workers <= 1 {
        run_sequential(spec, arrivals, policy, router, num_queries, seed, stages)
    } else {
        run_threaded(spec, arrivals, policy, router, num_queries, seed, stages)
    };
    merge(spec, arrivals, outcomes)
}

#[allow(clippy::too_many_arguments)]
fn run_sequential(
    spec: &PipelineSpec,
    arrivals: &dyn ArrivalProcess,
    policy: &dyn SchedulingPolicy,
    router: &dyn Router,
    num_queries: usize,
    seed: u64,
    stages: usize,
) -> Vec<ShardOutcome> {
    let mut outcomes = Vec::with_capacity(stages);
    let mut carry: Option<Vec<Tuple>> = None;
    for stage in 0..stages {
        let last = stage + 1 == stages;
        let mut sink = VecSink::default();
        let out: Option<&mut dyn ShardSink> = if last { None } else { Some(&mut sink) };
        let sim = Sim::new_shard(
            spec,
            arrivals,
            policy,
            router,
            num_queries,
            seed,
            stage,
            out,
        );
        let outcome = match carry.take() {
            None => sim.run_shard(stage, None),
            Some(buf) => {
                let mut src = VecSource {
                    iter: buf.into_iter(),
                };
                sim.run_shard(stage, Some(&mut src))
            }
        };
        outcomes.push(outcome);
        if !last {
            carry = Some(sink.buf);
        }
    }
    outcomes
}

#[allow(clippy::too_many_arguments)]
fn run_threaded(
    spec: &PipelineSpec,
    arrivals: &(dyn ArrivalProcess + Sync),
    policy: &(dyn SchedulingPolicy + Sync),
    router: &(dyn Router + Sync),
    num_queries: usize,
    seed: u64,
    stages: usize,
) -> Vec<ShardOutcome> {
    // One bounded channel per stage boundary, wired up front.
    let mut txs = Vec::with_capacity(stages - 1);
    let mut rxs = Vec::with_capacity(stages - 1);
    for _ in 0..stages - 1 {
        let (tx, rx) = mpsc::sync_channel(CHANNEL_CHUNKS);
        txs.push(tx);
        rxs.push(rx);
    }
    let mut txs = txs.into_iter();
    let mut rxs = rxs.into_iter();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(stages);
        for stage in 0..stages {
            let last = stage + 1 == stages;
            let tx = if last { None } else { txs.next() };
            let input_rx = if stage == 0 { None } else { rxs.next() };
            handles.push(scope.spawn(move || {
                let mut sink = tx.map(ChanSink::new);
                let out = sink.as_mut().map(|s| s as &mut dyn ShardSink);
                let sim = Sim::new_shard(
                    spec,
                    arrivals,
                    policy,
                    router,
                    num_queries,
                    seed,
                    stage,
                    out,
                );
                let outcome = match input_rx {
                    None => sim.run_shard(stage, None),
                    Some(rx) => {
                        let mut src = ChanSource::new(rx);
                        sim.run_shard(stage, Some(&mut src))
                    }
                };
                if let Some(sink) = sink {
                    sink.finish();
                }
                outcome
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("stage shard panicked"))
            .collect()
    })
}

/// Deterministic merge of the per-stage shard outcomes — mirrors the
/// serial loop's `finish` arithmetic term for term.
fn merge(
    spec: &PipelineSpec,
    arrivals: &dyn ArrivalProcess,
    mut outcomes: Vec<ShardOutcome>,
) -> SimResult {
    let arrival_span = outcomes[0].arrival_span;
    let last_time = outcomes.iter().fold(0.0f64, |m, o| m.max(o.last_time));
    let span = last_time.max(f64::MIN_POSITIVE);
    let launches: u64 = outcomes.iter().map(|o| o.launches).sum();
    let served: u64 = outcomes.iter().map(|o| o.served).sum();
    // Each replica slot is owned by exactly one shard (distinct stage
    // groups), so the element-wise sum recovers the serial loop's
    // per-slot busy integrals bit for bit.
    let num_slots = outcomes[0].busy_unit_seconds.len();
    let mut busy_unit_seconds = vec![0.0f64; num_slots];
    for o in &outcomes {
        for (total, &b) in busy_unit_seconds.iter_mut().zip(&o.busy_unit_seconds) {
            *total += b;
        }
    }
    let tail = outcomes.pop().expect("at least one shard ran");

    let resources = spec.resources();
    let mut slot_base = Vec::with_capacity(resources.len());
    let mut base = 0usize;
    for r in resources {
        slot_base.push(base);
        base += r.replicas();
    }
    let utilization: Vec<f64> = resources
        .iter()
        .enumerate()
        .map(|(g, r)| {
            let base = slot_base[g];
            let busy: f64 = busy_unit_seconds[base..base + r.replicas()].iter().sum();
            (busy / (r.total_units() as f64 * span)).min(1.0)
        })
        .collect();
    let replica_utilization: Vec<Vec<f64>> = if spec.has_replication() {
        resources
            .iter()
            .enumerate()
            .map(|(g, r)| {
                let base = slot_base[g];
                busy_unit_seconds[base..base + r.replicas()]
                    .iter()
                    .zip(r.profiles())
                    .map(|(&busy, p)| (busy / (p.capacity as f64 * span)).min(1.0))
                    .collect()
            })
            .collect()
    } else {
        Vec::new()
    };

    // Saturation mirrors the serial test: eligibility guarantees an
    // open loop, so the rate-overload term always applies.
    let offered = arrivals.mean_rate();
    let rate_overload = offered > spec.max_qps_at_full_batch();
    let saturated = rate_overload || last_time > arrival_span * 1.5 + spec.service_floor();

    let mean_batch = if launches > 0 {
        served as f64 / launches as f64
    } else {
        1.0
    };
    SimResult::new(
        tail.latency,
        tail.qps,
        tail.completed,
        saturated,
        utilization,
    )
    .with_mean_batch(mean_batch)
    .with_replica_utilization(replica_utilization)
    .with_lifecycle_outcome(0, 0, 0.0, Vec::new())
}
