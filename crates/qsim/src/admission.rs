//! Multi-path serving: several pipelines sharing one replica fleet,
//! with a per-query admission policy choosing a path (or shedding) at
//! arrival time.
//!
//! Steady-state sweeps treat quality as a *design-time* choice: every
//! query of a run takes the same pipeline. Production serving does
//! better — hold several model paths live (a large high-quality ranker,
//! a distilled mid-size one, a cheap filter-only fallback) and pick one
//! per query from the load the cluster is actually under. Quality
//! becomes a runtime control variable: under pressure the fleet
//! *degrades* to cheaper paths before it *sheds*, trading a little
//! NDCG for a lot of goodput — the brown-out behavior real
//! recommendation fleets run.
//!
//! The vocabulary:
//!
//! * [`PathSet`] — an ordered list of pipelines ("paths") over one
//!   shared resource fleet, each tagged with a quality score. Path 0 is
//!   the *primary* (highest-quality) path; later paths are the
//!   degradation ladder.
//! * [`AdmissionPolicy`] — the extension trait called once per arriving
//!   query with an [`AdmissionCtx`] load snapshot; it returns
//!   [`Admit(path)`](Admission::Admit) or [`Shed`](Admission::Shed).
//! * [`PathProfile`] — per-path analytic signals (quality, zero-load
//!   latency floor, capacity bounds) policies reason over.
//! * Built-ins: [`AlwaysPrimary`] (the degenerate single-path case,
//!   bit-identical to [`serve_routed`](crate::serve_routed)),
//!   [`DeadlineAware`] (slack-based downgrade), and [`LoadAdaptive`]
//!   (utilization-knee brown-out with hysteresis).
//!
//! Determinism matches the router contract: a policy may keep per-run
//! state only inside the [`AdmissionState`] handed to it, so identical
//! seeds replay identical admission streams.

use recpipe_data::ArrivalProcess;

use crate::{
    LifecycleConfig, PipelineSpec, ResourceSpec, Router, SchedulingPolicy, SimError, SimResult,
    SpecError, StageSpec, WindowStats,
};

/// Largest number of paths one [`PathSet`] may hold: per-query path
/// assignments pack into a byte with two sentinel values reserved.
pub(crate) const MAX_PATHS: usize = 254;

/// Several serving pipelines ("paths") sharing one replica fleet, each
/// tagged with a quality score — the runtime form of the paper's
/// quality × latency trade-off.
///
/// Internally the paths concatenate into one flat [`PipelineSpec`] over
/// the shared resources: path `p` traverses the contiguous stage range
/// `entry(p) .. entry(p) + len`. Path 0 starts at flat stage 0, so a
/// single-path set served with [`AlwaysPrimary`] replays the plain
/// routed loop bit-for-bit.
///
/// # Examples
///
/// ```
/// use recpipe_qsim::{PathSet, ResourceSpec, StageSpec};
///
/// let paths = PathSet::new(vec![ResourceSpec::new("cpu", 16)])
///     .with_path("full", 0.97, vec![StageSpec::new("rank-large", 0, 4, 0.008)])?
///     .with_path("lite", 0.91, vec![StageSpec::new("rank-small", 0, 1, 0.002)])?;
/// assert_eq!(paths.num_paths(), 2);
/// assert!(paths.quality(0) > paths.quality(1));
/// # Ok::<(), recpipe_qsim::SpecError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PathSet {
    /// All paths' stages concatenated over the shared resources.
    spec: PipelineSpec,
    /// First flat stage index of each path.
    entry: Vec<usize>,
    /// Stage count of each path.
    lens: Vec<usize>,
    names: Vec<String>,
    qualities: Vec<f64>,
}

impl PathSet {
    /// Creates an empty path set over the given shared fleet.
    pub fn new(resources: Vec<ResourceSpec>) -> Self {
        Self {
            spec: PipelineSpec::new(resources),
            entry: Vec::new(),
            lens: Vec::new(),
            names: Vec::new(),
            qualities: Vec::new(),
        }
    }

    /// Appends one path: an ordered stage list over the shared fleet,
    /// tagged with a quality score (the paper's NDCG axis — see
    /// `QualityEvaluator` in the core crate). Paths should be appended
    /// best-quality first: admission policies degrade by walking the
    /// index order.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] when any stage fails
    /// [`PipelineSpec::with_stage`] validation against the shared
    /// resources.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty, `quality` is negative or
    /// non-finite, or the set already holds the maximum of 254 paths —
    /// the crate's panic-on-construction policy.
    pub fn with_path(
        mut self,
        name: impl Into<String>,
        quality: f64,
        stages: Vec<StageSpec>,
    ) -> Result<Self, SpecError> {
        assert!(!stages.is_empty(), "path has no stages");
        assert!(
            quality.is_finite() && quality >= 0.0,
            "path quality must be non-negative and finite"
        );
        assert!(self.entry.len() < MAX_PATHS, "too many paths in one set");
        let entry = self.spec.stages().len();
        let len = stages.len();
        let mut spec = self.spec;
        for stage in stages {
            spec = spec.with_stage(stage)?;
        }
        self.spec = spec;
        self.entry.push(entry);
        self.lens.push(len);
        self.names.push(name.into());
        self.qualities.push(quality);
        Ok(self)
    }

    /// Wraps one complete pipeline as a single-path set — the
    /// degenerate case [`serve_multipath`](crate::serve_multipath)
    /// replays bit-identically to [`serve_routed`](crate::serve_routed)
    /// under [`AlwaysPrimary`].
    ///
    /// # Panics
    ///
    /// Panics if the pipeline has no stages or `quality` is negative or
    /// non-finite.
    pub fn single(spec: PipelineSpec, quality: f64) -> Self {
        assert!(!spec.stages().is_empty(), "path has no stages");
        assert!(
            quality.is_finite() && quality >= 0.0,
            "path quality must be non-negative and finite"
        );
        let lens = vec![spec.stages().len()];
        Self {
            spec,
            entry: vec![0],
            lens,
            names: vec!["primary".to_string()],
            qualities: vec![quality],
        }
    }

    /// Builds a path set from complete pipelines that must all declare
    /// the *same* resource fleet (the whole point of multi-path serving
    /// is contending for one set of machines).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::PathFleetMismatch`] when a pipeline's
    /// resources differ from the first pipeline's, and propagates any
    /// stage re-validation error.
    ///
    /// # Panics
    ///
    /// Panics if `paths` is empty, any pipeline has no stages, or any
    /// quality is negative or non-finite.
    pub fn from_pipelines(
        paths: Vec<(impl Into<String>, f64, PipelineSpec)>,
    ) -> Result<Self, SpecError> {
        assert!(!paths.is_empty(), "path set has no paths");
        let mut iter = paths.into_iter();
        let (name, quality, first) = iter.next().expect("non-empty");
        let fleet = first.resources().to_vec();
        let mut set = Self::new(fleet.clone()).with_path(name, quality, first.stages().to_vec())?;
        for (name, quality, pipeline) in iter {
            let name = name.into();
            if pipeline.resources() != fleet.as_slice() {
                return Err(SpecError::PathFleetMismatch { path: name });
            }
            set = set.with_path(name, quality, pipeline.stages().to_vec())?;
        }
        Ok(set)
    }

    /// The combined flat pipeline (all paths' stages over the shared
    /// resources) the simulator runs.
    pub fn spec(&self) -> &PipelineSpec {
        &self.spec
    }

    /// Number of paths in the set.
    pub fn num_paths(&self) -> usize {
        self.entry.len()
    }

    /// First flat stage index of path `p`.
    pub fn entry(&self, p: usize) -> usize {
        self.entry[p]
    }

    /// The stages of path `p`, in traversal order.
    pub fn path_stages(&self, p: usize) -> &[StageSpec] {
        &self.spec.stages()[self.entry[p]..self.entry[p] + self.lens[p]]
    }

    /// Path names, in path order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Path quality scores, in path order.
    pub fn qualities(&self) -> &[f64] {
        &self.qualities
    }

    /// The name of path `p`.
    pub fn name(&self, p: usize) -> &str {
        &self.names[p]
    }

    /// The quality score of path `p`.
    pub fn quality(&self, p: usize) -> f64 {
        self.qualities[p]
    }

    /// Per-path analytic profiles (quality, latency floor, capacity
    /// bounds) — the signals handed to admission policies via
    /// [`AdmissionCtx::paths`].
    pub fn profiles(&self) -> Vec<PathProfile> {
        (0..self.num_paths()).map(|p| self.profile(p)).collect()
    }

    /// The analytic profile of path `p`, derived from only that path's
    /// stages against the shared fleet (other paths' load is a runtime
    /// matter, not a spec property).
    pub fn profile(&self, p: usize) -> PathProfile {
        let resources = self.spec.resources();
        let mut load = vec![0.0; resources.len()];
        let mut amortized = vec![0.0; resources.len()];
        let mut floor = 0.0;
        for s in self.path_stages(p) {
            load[s.resource] += s.units as f64 * s.service_time;
            amortized[s.resource] += s.units as f64 * s.amortized_service_time();
            floor += s.service_time;
        }
        let bottleneck = |per_resource: &[f64]| {
            resources
                .iter()
                .zip(per_resource)
                .filter(|(_, load)| **load > 0.0)
                .map(|(r, load)| r.weighted_units() / load)
                .fold(f64::INFINITY, f64::min)
        };
        PathProfile {
            quality: self.qualities[p],
            service_floor_s: floor,
            max_qps: bottleneck(&load),
            max_qps_full_batch: bottleneck(&amortized),
        }
    }

    /// Per-flat-stage "is this a path's final stage" table — the
    /// completion test the event loop runs per stage hop.
    pub(crate) fn last_of_path(&self) -> Vec<bool> {
        let mut last = vec![false; self.spec.stages().len()];
        for (&entry, &len) in self.entry.iter().zip(&self.lens) {
            last[entry + len - 1] = true;
        }
        last
    }

    /// Runs the multi-path simulation (see
    /// [`serve_multipath`](crate::serve_multipath)).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoAvailableReplica`] under
    /// [`serve_lifecycle`](crate::serve_lifecycle)'s rule.
    ///
    /// # Panics
    ///
    /// Panics if the set has no paths or `num_queries == 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn serve(
        &self,
        arrivals: &dyn ArrivalProcess,
        policy: &dyn SchedulingPolicy,
        router: &dyn Router,
        admission: &dyn AdmissionPolicy,
        num_queries: usize,
        seed: u64,
        cfg: &LifecycleConfig,
    ) -> Result<SimResult, SimError> {
        crate::serve_multipath(
            self,
            arrivals,
            policy,
            router,
            admission,
            num_queries,
            seed,
            cfg,
        )
    }
}

/// Analytic signals of one path, handed to admission policies: its
/// quality tag plus load-independent latency and capacity bounds
/// derived from the path's stages against the shared fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathProfile {
    /// The path's quality score (path sets order these descending).
    pub quality: f64,
    /// Sum of the path's stage service times — its zero-load latency.
    pub service_floor_s: f64,
    /// Maximum sustainable throughput serving one query per launch.
    pub max_qps: f64,
    /// Maximum sustainable throughput at full batches (equal to
    /// [`max_qps`](Self::max_qps) for per-query stages).
    pub max_qps_full_batch: f64,
}

/// An admission decision for one arriving query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Serve the query on the given path index.
    Admit(usize),
    /// Reject the query without service (counted as shed).
    Shed,
}

/// Per-run mutable state an [`AdmissionPolicy`] may use: a degradation
/// level for hysteresis policies and a deterministic RNG stream —
/// mirror of [`RouterState`](crate::RouterState), so identical seeds
/// replay identical admission streams.
#[derive(Debug, Clone)]
pub struct AdmissionState {
    level: usize,
    rng: u64,
}

impl AdmissionState {
    /// Creates state with the level at 0 (no degradation) and the RNG
    /// seeded deterministically.
    pub fn new(seed: u64) -> Self {
        Self {
            level: 0,
            rng: seed,
        }
    }

    /// The current degradation level (0 = primary path).
    pub fn level(&self) -> usize {
        self.level
    }

    /// Replaces the degradation level.
    pub fn set_level(&mut self, level: usize) {
        self.level = level;
    }

    /// Draws the next value of the deterministic RNG stream
    /// (splitmix64, the same generator routers use for probing).
    pub fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// The load snapshot an [`AdmissionPolicy`] sees for one arriving
/// query, taken at the arrival instant before any routing happens.
#[derive(Debug)]
pub struct AdmissionCtx<'a> {
    /// Arrival time in simulated seconds.
    pub now: f64,
    /// The arriving query's index.
    pub query: usize,
    /// Queries admitted but not yet completed (or lost) — the
    /// cluster-wide concurrency the arrival joins.
    pub in_system: usize,
    /// Unit capacity of the live (non-down) fleet — the denominator
    /// that turns `in_system` into a pressure signal.
    pub capacity: usize,
    /// Waiting queries (queued plus parked) across all replicas.
    pub queue_depth: usize,
    /// Per-path analytic profiles, in path order (index 0 = primary).
    pub paths: &'a [PathProfile],
    /// The most recently closed telemetry window, when the run records
    /// windows — the feedback signal knee policies may read.
    pub window: Option<&'a WindowStats>,
}

impl AdmissionCtx<'_> {
    /// Concurrency per unit of live capacity — the dimensionless
    /// pressure signal load-adaptive policies threshold on (0.0 on an
    /// idle fleet; grows past 1.0 as queueing builds).
    pub fn pressure(&self) -> f64 {
        self.in_system as f64 / self.capacity.max(1) as f64
    }

    /// Crude expected latency of serving one more query on path `p`
    /// right now: the path's zero-load floor stretched by the current
    /// pressure. Deliberately simple — a load signal, not a queueing
    /// model — but monotone in both load and path cost, which is all a
    /// slack test needs.
    pub fn estimated_latency_s(&self, p: usize) -> f64 {
        self.paths[p].service_floor_s * (1.0 + self.pressure())
    }
}

/// The admission seam: called once per arriving query (before routing,
/// at stage 0 of the chosen path), it maps a load snapshot to a path —
/// or sheds. Policies must be deterministic given the context and
/// state, like routers: all randomness comes from
/// [`AdmissionState::next_u64`].
pub trait AdmissionPolicy {
    /// Short name for reports.
    fn name(&self) -> String;

    /// Decides the arriving query's fate.
    fn admit(&self, ctx: &AdmissionCtx<'_>, state: &mut AdmissionState) -> Admission;
}

/// The degenerate policy: every query takes the primary path. On a
/// single-path set this replays [`serve_routed`](crate::serve_routed)
/// bit-for-bit — the frozen-reference pin for the multi-path loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysPrimary;

impl AdmissionPolicy for AlwaysPrimary {
    fn name(&self) -> String {
        "always-primary".to_string()
    }

    fn admit(&self, _ctx: &AdmissionCtx<'_>, _state: &mut AdmissionState) -> Admission {
        Admission::Admit(0)
    }
}

/// Slack-based downgrade: admit the best (lowest-index) path whose
/// estimated latency (see [`AdmissionCtx::estimated_latency_s`]) fits
/// the deadline, shedding when even the cheapest path cannot.
#[derive(Debug, Clone, Copy)]
pub struct DeadlineAware {
    deadline_s: f64,
}

impl DeadlineAware {
    /// A policy holding per-query latency under `deadline_s`.
    ///
    /// # Panics
    ///
    /// Panics unless `deadline_s` is strictly positive and finite.
    pub fn new(deadline_s: f64) -> Self {
        assert!(
            deadline_s.is_finite() && deadline_s > 0.0,
            "deadline must be positive and finite"
        );
        Self { deadline_s }
    }
}

impl AdmissionPolicy for DeadlineAware {
    fn name(&self) -> String {
        format!("deadline-aware({}ms)", self.deadline_s * 1e3)
    }

    fn admit(&self, ctx: &AdmissionCtx<'_>, _state: &mut AdmissionState) -> Admission {
        for p in 0..ctx.paths.len() {
            if ctx.estimated_latency_s(p) <= self.deadline_s {
                return Admission::Admit(p);
            }
        }
        Admission::Shed
    }
}

/// Utilization-knee brown-out with hysteresis: while the pressure
/// signal (see [`AdmissionCtx::pressure`]) sits above `degrade_at` the
/// degradation level ratchets one path deeper per arrival; below
/// `recover_at` it ratchets back. Past the last path the policy sheds.
/// The gap between the two thresholds is the hysteresis band that stops
/// the fleet from flapping between paths at the knee.
///
/// [`without_degradation`](Self::without_degradation) turns the ladder
/// off — the level jumps straight between "primary" and "shed", the
/// classic load-shedding baseline brown-out runs are measured against.
#[derive(Debug, Clone, Copy)]
pub struct LoadAdaptive {
    degrade_at: f64,
    recover_at: f64,
    degrade: bool,
}

impl LoadAdaptive {
    /// A brown-out policy degrading above `degrade_at` pressure and
    /// recovering below `recover_at`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < recover_at < degrade_at` and both are finite.
    pub fn new(degrade_at: f64, recover_at: f64) -> Self {
        assert!(
            degrade_at.is_finite() && recover_at.is_finite(),
            "thresholds must be finite"
        );
        assert!(
            0.0 < recover_at && recover_at < degrade_at,
            "need 0 < recover_at < degrade_at for hysteresis"
        );
        Self {
            degrade_at,
            recover_at,
            degrade: true,
        }
    }

    /// Disables the degradation ladder: overload sheds outright instead
    /// of walking down the path list (the shed-only ablation).
    pub fn without_degradation(mut self) -> Self {
        self.degrade = false;
        self
    }
}

impl AdmissionPolicy for LoadAdaptive {
    fn name(&self) -> String {
        let kind = if self.degrade { "degrade" } else { "shed-only" };
        format!(
            "load-adaptive({kind},{:.2}/{:.2})",
            self.degrade_at, self.recover_at
        )
    }

    fn admit(&self, ctx: &AdmissionCtx<'_>, state: &mut AdmissionState) -> Admission {
        let n = ctx.paths.len();
        let pressure = ctx.pressure();
        let mut level = state.level().min(n);
        if pressure > self.degrade_at {
            level = if self.degrade { (level + 1).min(n) } else { n };
        } else if pressure < self.recover_at {
            level = if self.degrade {
                level.saturating_sub(1)
            } else {
                0
            };
        }
        state.set_level(level);
        if level >= n {
            Admission::Shed
        } else {
            Admission::Admit(level)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BatchModel, ReplicaGroup};

    fn two_paths() -> PathSet {
        PathSet::new(vec![ResourceSpec::new("cpu", 8)])
            .with_path(
                "full",
                0.97,
                vec![
                    StageSpec::new("filter", 0, 1, 0.001),
                    StageSpec::new("rank-large", 0, 4, 0.008),
                ],
            )
            .unwrap()
            .with_path(
                "lite",
                0.90,
                vec![StageSpec::new("rank-small", 0, 1, 0.002)],
            )
            .unwrap()
    }

    fn ctx_at<'a>(in_system: usize, capacity: usize, paths: &'a [PathProfile]) -> AdmissionCtx<'a> {
        AdmissionCtx {
            now: 1.0,
            query: 7,
            in_system,
            capacity,
            queue_depth: 0,
            paths,
            window: None,
        }
    }

    #[test]
    fn paths_concatenate_into_one_flat_spec() {
        let set = two_paths();
        assert_eq!(set.num_paths(), 2);
        assert_eq!(set.spec().stages().len(), 3);
        assert_eq!(set.entry(0), 0);
        assert_eq!(set.entry(1), 2);
        assert_eq!(set.path_stages(1)[0].name, "rank-small");
        assert_eq!(set.last_of_path(), vec![false, true, true]);
    }

    #[test]
    fn profiles_reflect_each_paths_own_load() {
        let set = two_paths();
        let profiles = set.profiles();
        // Full path: 1*0.001 + 4*0.008 = 0.033 unit-seconds on 8 units.
        assert!((profiles[0].max_qps - 8.0 / 0.033).abs() < 1e-9);
        assert!((profiles[0].service_floor_s - 0.009).abs() < 1e-12);
        // Lite path: 1*0.002 on the same 8 units.
        assert!((profiles[1].max_qps - 4000.0).abs() < 1e-9);
        assert!(profiles[1].max_qps > profiles[0].max_qps);
        assert!(profiles[0].quality > profiles[1].quality);
    }

    #[test]
    fn full_batch_bound_matches_the_pipeline_spec_exactly() {
        // The single-path profile must reproduce the PipelineSpec's
        // analytic bound bit-for-bit: the saturation test of a
        // single-path multipath run keys off it.
        let spec = PipelineSpec::new(vec![ReplicaGroup::replicated("gpu", 2, 3)])
            .with_stage(StageSpec::new("rank", 0, 1, 0.004).with_batch(BatchModel::new(8, 0.25)))
            .unwrap()
            .with_stage(StageSpec::new("post", 0, 1, 0.001))
            .unwrap();
        let set = PathSet::single(spec.clone(), 0.95);
        let profile = set.profile(0);
        assert_eq!(
            profile.max_qps_full_batch.to_bits(),
            spec.max_qps_at_full_batch().to_bits()
        );
        assert_eq!(profile.max_qps.to_bits(), spec.max_qps().to_bits());
    }

    #[test]
    fn from_pipelines_requires_one_shared_fleet() {
        let fleet = vec![ResourceSpec::new("cpu", 8)];
        let a = PipelineSpec::new(fleet.clone())
            .with_stage(StageSpec::new("s", 0, 1, 0.004))
            .unwrap();
        let b = PipelineSpec::new(vec![ResourceSpec::new("cpu", 4)])
            .with_stage(StageSpec::new("s", 0, 1, 0.001))
            .unwrap();
        let err =
            PathSet::from_pipelines(vec![("full", 0.97, a.clone()), ("lite", 0.9, b)]).unwrap_err();
        assert!(matches!(err, SpecError::PathFleetMismatch { .. }));
        assert!(err.to_string().contains("lite"));

        let c = PipelineSpec::new(fleet)
            .with_stage(StageSpec::new("s2", 0, 1, 0.001))
            .unwrap();
        let ok = PathSet::from_pipelines(vec![("full", 0.97, a), ("lite", 0.9, c)]).unwrap();
        assert_eq!(ok.num_paths(), 2);
    }

    #[test]
    #[should_panic(expected = "path has no stages")]
    fn empty_paths_are_rejected() {
        let _ = PathSet::new(vec![ResourceSpec::new("cpu", 8)]).with_path("x", 0.9, vec![]);
    }

    #[test]
    #[should_panic(expected = "quality must be non-negative")]
    fn nan_quality_is_rejected() {
        let _ = PathSet::new(vec![ResourceSpec::new("cpu", 8)]).with_path(
            "x",
            f64::NAN,
            vec![StageSpec::new("s", 0, 1, 0.01)],
        );
    }

    #[test]
    fn always_primary_never_degrades() {
        let set = two_paths();
        let profiles = set.profiles();
        let mut state = AdmissionState::new(1);
        let ctx = ctx_at(10_000, 8, &profiles);
        assert_eq!(AlwaysPrimary.admit(&ctx, &mut state), Admission::Admit(0));
    }

    #[test]
    fn deadline_aware_walks_the_ladder_with_load() {
        let set = two_paths();
        let profiles = set.profiles();
        let policy = DeadlineAware::new(0.020);
        let mut state = AdmissionState::new(1);
        // Idle: primary fits (floor 9 ms < 20 ms deadline).
        assert_eq!(
            policy.admit(&ctx_at(0, 8, &profiles), &mut state),
            Admission::Admit(0)
        );
        // Pressure 2.0 stretches the primary's estimate to 27 ms; the
        // lite path (2 ms floor -> 6 ms) still fits.
        assert_eq!(
            policy.admit(&ctx_at(16, 8, &profiles), &mut state),
            Admission::Admit(1)
        );
        // Pressure 10: even 2 ms * 11 = 22 ms misses; shed.
        assert_eq!(
            policy.admit(&ctx_at(80, 8, &profiles), &mut state),
            Admission::Shed
        );
    }

    #[test]
    fn deadline_aware_zero_slack_sheds_instead_of_panicking() {
        // A deadline tighter than every path's zero-load floor leaves
        // no slack at all: the policy must shed every arrival — never
        // panic, never admit a path that cannot make the deadline even
        // on an idle fleet.
        let set = two_paths();
        let profiles = set.profiles();
        // Cheapest floor is the lite path's 2 ms; 1 ms is unservable.
        let policy = DeadlineAware::new(0.001);
        let mut state = AdmissionState::new(1);
        for in_system in [0usize, 8, 10_000] {
            assert_eq!(
                policy.admit(&ctx_at(in_system, 8, &profiles), &mut state),
                Admission::Shed
            );
        }
    }

    #[test]
    fn deadline_exactly_at_the_analytic_floor_admits_at_zero_load() {
        // At zero load the estimate is exactly the path's analytic
        // service floor (pressure 0 stretches by 1.0, which is exact in
        // IEEE), so a deadline equal to the floor admits on the <=
        // boundary — and one ulp less sheds the path.
        let set = two_paths();
        let profiles = set.profiles();
        let floor = profiles[1].service_floor_s; // lite path: 2 ms
        let idle = ctx_at(0, 8, &profiles);
        assert_eq!(idle.estimated_latency_s(1).to_bits(), floor.to_bits());
        let mut state = AdmissionState::new(1);
        let exact = DeadlineAware::new(floor);
        assert_eq!(exact.admit(&idle, &mut state), Admission::Admit(1));
        let shy = DeadlineAware::new(f64::from_bits(floor.to_bits() - 1));
        assert_eq!(shy.admit(&idle, &mut state), Admission::Shed);
        // Any backlog at all pushes the estimate past the exact floor.
        assert_eq!(
            exact.admit(&ctx_at(1, 8, &profiles), &mut state),
            Admission::Shed
        );
    }

    #[test]
    fn load_adaptive_ratchets_with_hysteresis() {
        let set = two_paths();
        let profiles = set.profiles();
        let policy = LoadAdaptive::new(1.0, 0.5);
        let mut state = AdmissionState::new(1);
        // Below the knee: stays primary.
        assert_eq!(
            policy.admit(&ctx_at(2, 8, &profiles), &mut state),
            Admission::Admit(0)
        );
        // Above the knee: one level per arrival, then shed.
        assert_eq!(
            policy.admit(&ctx_at(16, 8, &profiles), &mut state),
            Admission::Admit(1)
        );
        assert_eq!(
            policy.admit(&ctx_at(16, 8, &profiles), &mut state),
            Admission::Shed
        );
        // Inside the hysteresis band: holds the level (still shedding).
        assert_eq!(
            policy.admit(&ctx_at(6, 8, &profiles), &mut state),
            Admission::Shed
        );
        // Below recover_at: ratchets back one level per arrival.
        assert_eq!(
            policy.admit(&ctx_at(1, 8, &profiles), &mut state),
            Admission::Admit(1)
        );
        assert_eq!(
            policy.admit(&ctx_at(1, 8, &profiles), &mut state),
            Admission::Admit(0)
        );
    }

    #[test]
    fn shed_only_jumps_straight_between_extremes() {
        let set = two_paths();
        let profiles = set.profiles();
        let policy = LoadAdaptive::new(1.0, 0.5).without_degradation();
        let mut state = AdmissionState::new(1);
        assert_eq!(
            policy.admit(&ctx_at(16, 8, &profiles), &mut state),
            Admission::Shed
        );
        assert_eq!(
            policy.admit(&ctx_at(1, 8, &profiles), &mut state),
            Admission::Admit(0)
        );
    }

    #[test]
    fn admission_state_rng_is_deterministic() {
        let mut a = AdmissionState::new(42);
        let mut b = AdmissionState::new(42);
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(AdmissionState::new(1).next_u64(), a.next_u64());
    }

    #[test]
    fn policy_names_are_informative() {
        assert_eq!(AlwaysPrimary.name(), "always-primary");
        assert!(DeadlineAware::new(0.05).name().contains("50"));
        let la = LoadAdaptive::new(1.5, 0.75);
        assert!(la.name().contains("degrade"));
        assert!(la.without_degradation().name().contains("shed-only"));
    }
}
