//! Scheduling policies: when a stage launches a batch.
//!
//! The simulator keeps one waiting queue per resource. Whenever a
//! scheduling opportunity arises (an arrival, a completion freeing
//! units, or a policy-requested recheck), it orders the queue by the
//! policy's [`priority`](SchedulingPolicy::priority), takes the
//! head entry's stage, gathers up to `max_batch` same-stage entries in
//! priority order, and asks the policy to
//! [`release`](SchedulingPolicy::release) the batch now or hold it.
//!
//! * [`Fifo`] — work-conserving: launch as soon as units are free, with
//!   whatever has queued (the pre-batching simulator's behavior when
//!   every stage has `max_batch = 1`);
//! * [`BatchWindow`] — hold a partial batch until it fills or the head
//!   entry has waited `window_s`, trading latency at low load for
//!   amortization at high load;
//! * [`EarliestDeadlineFirst`] — order by each query's *system* arrival
//!   time plus a deadline, so queries deep into their SLA budget
//!   preempt fresh ones on shared resources.

/// One query waiting at a stage's queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueEntry {
    /// Query id (index in arrival order).
    pub query: usize,
    /// Pipeline stage the query is waiting for.
    pub stage: usize,
    /// When the query entered the *system* (stage 0 arrival), seconds.
    pub arrived: f64,
    /// When the query joined this stage's queue, seconds.
    pub enqueued: f64,
    /// Global admission sequence number (FIFO tie-break).
    pub seq: u64,
}

/// A policy's verdict on a ready batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Release {
    /// Launch the batch immediately.
    Now,
    /// Hold the batch; recheck at the given absolute time (the
    /// simulator also rechecks on every arrival and completion).
    At(f64),
}

/// Decides when a stage launches a batch from its waiting queue.
///
/// Implementations must be deterministic: identical queue states must
/// produce identical decisions, or simulation results stop being
/// reproducible across runs and worker threads.
pub trait SchedulingPolicy: std::fmt::Debug + Send + Sync {
    /// Short name for reports.
    fn name(&self) -> String;

    /// Sort key of a waiting entry — lower is served first. Ties break
    /// by admission sequence. The default (enqueue time) is FIFO.
    fn priority(&self, entry: &QueueEntry) -> f64 {
        entry.enqueued
    }

    /// Whether a batch of `ready` same-stage entries (head entry
    /// `head`, stage batch cap `max_batch`) should launch at `now`.
    fn release(&self, now: f64, head: &QueueEntry, ready: usize, max_batch: usize) -> Release {
        let _ = (now, head, ready, max_batch);
        Release::Now
    }

    /// Whether a query arriving at a stage with free units may start
    /// service immediately without consulting
    /// [`release`](Self::release). Work-conserving policies keep the
    /// default `true`; batch-forming policies return `false` so
    /// arrivals accumulate into batches.
    ///
    /// Contract: a policy returning `true` must also release ready
    /// batches immediately (the default [`release`](Self::release)) —
    /// the simulator relies on it to skip redundant queue scans when an
    /// arrival cannot start.
    fn admit_on_arrival(&self) -> bool {
        true
    }
}

/// First-in-first-out, work-conserving scheduling: every scheduling
/// opportunity launches the largest batch that has already queued. With
/// per-query stages this is exactly the pre-batching simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fifo;

impl SchedulingPolicy for Fifo {
    fn name(&self) -> String {
        "fifo".into()
    }
}

/// Batch-window scheduling: hold a partial batch until it reaches the
/// stage's `max_batch` or the head entry has waited `window_s` seconds.
///
/// The canonical dynamic-batching policy of GPU/accelerator serving
/// stacks: a bounded latency tax at low load buys full amortization at
/// high load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchWindow {
    /// Longest time the head entry may wait for its batch to fill.
    pub window_s: f64,
}

impl BatchWindow {
    /// Creates a batch-window policy with the given fill timeout.
    ///
    /// # Panics
    ///
    /// Panics if `window_s` is negative or not finite.
    pub fn new(window_s: f64) -> Self {
        assert!(
            window_s.is_finite() && window_s >= 0.0,
            "window must be non-negative"
        );
        Self { window_s }
    }
}

impl SchedulingPolicy for BatchWindow {
    fn name(&self) -> String {
        format!("batch-window({}s)", self.window_s)
    }

    fn release(&self, now: f64, head: &QueueEntry, ready: usize, max_batch: usize) -> Release {
        if ready >= max_batch || now >= head.enqueued + self.window_s {
            Release::Now
        } else {
            Release::At(head.enqueued + self.window_s)
        }
    }

    fn admit_on_arrival(&self) -> bool {
        false
    }
}

/// Earliest-deadline-first scheduling: entries are served in order of
/// their system arrival (the query whose deadline `arrived +
/// deadline_s` expires soonest first), and partial batches may form
/// only inside each query's slack budget.
///
/// Two effects, both deadline-driven:
///
/// * **Ordering** — on resources shared by several stages, queries that
///   already burned latency at earlier stages jump ahead of fresh
///   arrivals (FIFO by *system* age rather than queue age);
/// * **Deadline-bounded batching** — a partial batch is held until it
///   fills or the head query has consumed `batch_slack` of its
///   deadline budget since entering the system, whichever comes first.
///   A tight deadline degenerates toward work-conserving FIFO; a loose
///   one batches as deeply as a [`BatchWindow`]. Stages with
///   `max_batch = 1` always launch immediately.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarliestDeadlineFirst {
    /// Per-query end-to-end deadline in seconds (e.g. the SLA target).
    pub deadline_s: f64,
    /// Fraction of the deadline budget a query may spend waiting for
    /// batches to fill; the rest is reserved for service. Default 0.25.
    pub batch_slack: f64,
}

impl EarliestDeadlineFirst {
    /// Creates an EDF policy with the given end-to-end deadline and the
    /// default slack reservation.
    ///
    /// # Panics
    ///
    /// Panics if `deadline_s` is not strictly positive and finite.
    pub fn new(deadline_s: f64) -> Self {
        assert!(
            deadline_s.is_finite() && deadline_s > 0.0,
            "deadline must be positive"
        );
        Self {
            deadline_s,
            batch_slack: 0.25,
        }
    }

    /// Overrides the fraction of the deadline spendable on batching.
    ///
    /// # Panics
    ///
    /// Panics if `batch_slack` is not in `[0, 1]`.
    pub fn with_batch_slack(mut self, batch_slack: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&batch_slack),
            "batch_slack must be in [0, 1]"
        );
        self.batch_slack = batch_slack;
        self
    }

    /// Latest instant the given head entry may keep waiting for its
    /// batch to fill.
    fn hold_until(&self, head: &QueueEntry) -> f64 {
        head.arrived + self.deadline_s * self.batch_slack
    }
}

impl SchedulingPolicy for EarliestDeadlineFirst {
    fn name(&self) -> String {
        format!("edf({}s)", self.deadline_s)
    }

    fn priority(&self, entry: &QueueEntry) -> f64 {
        entry.arrived + self.deadline_s
    }

    fn release(&self, now: f64, head: &QueueEntry, ready: usize, max_batch: usize) -> Release {
        if ready >= max_batch || now >= self.hold_until(head) {
            Release::Now
        } else {
            Release::At(self.hold_until(head))
        }
    }

    fn admit_on_arrival(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(query: usize, arrived: f64, enqueued: f64) -> QueueEntry {
        QueueEntry {
            query,
            stage: 0,
            arrived,
            enqueued,
            seq: query as u64,
        }
    }

    #[test]
    fn fifo_orders_by_enqueue_time_and_always_releases() {
        let fifo = Fifo;
        assert!(fifo.priority(&entry(0, 0.0, 1.0)) < fifo.priority(&entry(1, 0.5, 2.0)));
        assert_eq!(fifo.release(0.0, &entry(0, 0.0, 0.0), 1, 8), Release::Now);
        assert!(fifo.admit_on_arrival());
    }

    #[test]
    fn batch_window_holds_partial_batches_until_timeout() {
        let policy = BatchWindow::new(0.002);
        let head = entry(0, 0.0, 1.0);
        // Partial batch before the window: hold until enqueued + window.
        assert_eq!(policy.release(1.001, &head, 3, 8), Release::At(1.002));
        // Window expired: go.
        assert_eq!(policy.release(1.002, &head, 3, 8), Release::Now);
        // Full batch: go immediately.
        assert_eq!(policy.release(1.0005, &head, 8, 8), Release::Now);
        assert!(!policy.admit_on_arrival());
    }

    #[test]
    fn edf_prioritizes_oldest_system_arrival() {
        let policy = EarliestDeadlineFirst::new(0.05);
        // Query 1 entered the system earlier even though it joined this
        // queue later — EDF serves it first.
        let fresh = entry(0, 10.0, 10.0);
        let aged = entry(1, 9.0, 10.5);
        assert!(policy.priority(&aged) < policy.priority(&fresh));
    }

    #[test]
    fn edf_batches_within_the_slack_budget_only() {
        // deadline 40 ms, slack 0.25: a query may wait for its batch
        // until 10 ms after it entered the system.
        let policy = EarliestDeadlineFirst::new(0.04);
        let head = entry(0, 1.0, 1.002);
        // Inside the slack: hold until arrived + 10 ms (not enqueued!).
        assert_eq!(policy.release(1.003, &head, 2, 8), Release::At(1.010));
        // Slack exhausted: launch the partial batch.
        assert_eq!(policy.release(1.010, &head, 2, 8), Release::Now);
        // Full batch launches regardless.
        assert_eq!(policy.release(1.003, &head, 8, 8), Release::Now);
        // Per-query stages never hold.
        assert_eq!(policy.release(1.003, &head, 1, 1), Release::Now);
        assert!(!policy.admit_on_arrival());
    }

    #[test]
    fn edf_deadline_scales_the_hold_window() {
        let head = entry(0, 0.0, 0.0);
        let tight = EarliestDeadlineFirst::new(0.004);
        let loose = EarliestDeadlineFirst::new(0.4);
        let hold_of = |r: Release| match r {
            Release::At(t) => t,
            Release::Now => 0.0,
        };
        let tight_hold = hold_of(tight.release(0.0001, &head, 1, 8));
        let loose_hold = hold_of(loose.release(0.0001, &head, 1, 8));
        assert!(tight_hold < loose_hold, "{tight_hold} vs {loose_hold}");
        // Slack override: zero slack is fully work-conserving.
        let eager = EarliestDeadlineFirst::new(0.4).with_batch_slack(0.0);
        assert_eq!(eager.release(0.0001, &head, 1, 8), Release::Now);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn batch_window_rejects_negative_window() {
        BatchWindow::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn edf_rejects_zero_deadline() {
        EarliestDeadlineFirst::new(0.0);
    }
}
