//! Replica lifecycle events, failure policies, and the autoscaling
//! seam — the availability dimension of at-scale serving.
//!
//! Steady-state sweeps assume a fixed, always-healthy fleet. Production
//! fleets are not: machines warm up, drain for maintenance, fail
//! mid-batch, and resize with the diurnal load. This module supplies
//! the vocabulary the simulator speaks:
//!
//! * [`LifecycleEvent`] — a timed [`LifecycleAction`] against one
//!   replica of a group (provision with warm-up, drain, fail-stop,
//!   recover), attached to a [`ReplicaGroup`] as a
//!   [`LifecycleSchedule`] and injected into the event loop as ordinary
//!   timed simulator events;
//! * [`FailurePolicy`] — what happens to a failed replica's queued and
//!   in-flight queries (requeue through the router, or shed);
//! * [`SimError`] — the typed all-replicas-down error surfaced when a
//!   query cannot be routed and no revival is pending;
//! * [`WindowStats`] — per-window telemetry (p99, queue depth,
//!   utilization, cost) driving feedback controllers;
//! * [`FleetController`] — the closed-loop resize seam: consulted at
//!   every window boundary with the closing window's stats, it returns
//!   the replica count the fleet should converge to. Scale-ups
//!   provision Down replicas through warm-up; scale-downs drain — they
//!   never kill live work.
//!
//! The replica state machine is `warming → up → draining → down` (plus
//! the fail-stop edge from any live state straight to down); see
//! ARCHITECTURE.md for the full transition table and the determinism
//! policy for same-instant event ordering.
//!
//! [`ReplicaGroup`]: crate::ReplicaGroup

/// What happens to one replica at a scheduled instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LifecycleAction {
    /// Bring a down replica up through a warm-up phase: for `warmup_s`
    /// seconds the replica serves at a reduced speed (see
    /// [`LifecycleConfig::warmup_speed`]) before reaching its profile
    /// speed. A zero warm-up is an instant bring-up.
    Provision {
        /// Warm-up duration in seconds.
        warmup_s: f64,
    },
    /// Stop routing new work to the replica; queued and in-flight
    /// batches finish, then the replica goes down. Scale-down never
    /// kills live work.
    Drain,
    /// Kill the replica mid-batch: its in-flight and queued queries are
    /// requeued through the router or shed per the run's
    /// [`FailurePolicy`], and the replica goes down immediately.
    FailStop,
    /// Instant bring-up of a down replica (a [`Provision`] with zero
    /// warm-up) — the recovery edge after a fail-stop. Applied to a
    /// *degraded* live replica it restores profile speed instead (the
    /// limpware repair edge).
    ///
    /// [`Provision`]: LifecycleAction::Provision
    Recover,
    /// Gray failure (limpware): the replica keeps accepting work but
    /// serves at `speed` times its profile speed. Unlike a fail-stop or
    /// drain it stays routable, so availability masking cannot see it —
    /// only latency-sensitive mechanisms (hedging, timeouts, the
    /// expected-wait estimator) can route around it. A later
    /// [`Recover`](LifecycleAction::Recover) restores profile speed.
    Degrade {
        /// Fraction of profile speed the limping replica serves at,
        /// in `(0, 1]`.
        speed: f64,
    },
}

/// One timed lifecycle action against one replica of a group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifecycleEvent {
    /// Absolute simulation time in seconds.
    pub time: f64,
    /// Replica index within the owning group.
    pub replica: usize,
    /// The action applied at `time`.
    pub action: LifecycleAction,
}

impl LifecycleEvent {
    fn validated(time: f64, replica: usize, action: LifecycleAction) -> Self {
        assert!(
            time.is_finite() && time >= 0.0,
            "lifecycle event time must be non-negative and finite"
        );
        if let LifecycleAction::Provision { warmup_s } = action {
            assert!(
                warmup_s.is_finite() && warmup_s >= 0.0,
                "warm-up duration must be non-negative and finite"
            );
        }
        if let LifecycleAction::Degrade { speed } = action {
            assert!(
                speed.is_finite() && speed > 0.0 && speed <= 1.0,
                "degraded speed must be in (0, 1]"
            );
        }
        Self {
            time,
            replica,
            action,
        }
    }

    /// A provision event with the given warm-up.
    ///
    /// # Panics
    ///
    /// Panics if `time` or `warmup_s` is negative or non-finite — the
    /// panic-on-construction policy every qsim constructor follows.
    pub fn provision(time: f64, replica: usize, warmup_s: f64) -> Self {
        Self::validated(time, replica, LifecycleAction::Provision { warmup_s })
    }

    /// A drain event.
    ///
    /// # Panics
    ///
    /// Panics if `time` is negative or non-finite.
    pub fn drain(time: f64, replica: usize) -> Self {
        Self::validated(time, replica, LifecycleAction::Drain)
    }

    /// A fail-stop event.
    ///
    /// # Panics
    ///
    /// Panics if `time` is negative or non-finite.
    pub fn fail_stop(time: f64, replica: usize) -> Self {
        Self::validated(time, replica, LifecycleAction::FailStop)
    }

    /// A recovery event.
    ///
    /// # Panics
    ///
    /// Panics if `time` is negative or non-finite.
    pub fn recover(time: f64, replica: usize) -> Self {
        Self::validated(time, replica, LifecycleAction::Recover)
    }

    /// A gray-failure (limpware) event: the replica keeps serving at
    /// `speed` times its profile speed until recovered.
    ///
    /// # Panics
    ///
    /// Panics if `time` is negative or non-finite, or `speed` is
    /// outside `(0, 1]` (a limping replica cannot outrun its profile;
    /// a stopped one is a [`fail_stop`](Self::fail_stop)).
    pub fn degrade(time: f64, replica: usize, speed: f64) -> Self {
        Self::validated(time, replica, LifecycleAction::Degrade { speed })
    }

    /// Whether this event can bring a down replica back
    /// ([`Provision`](LifecycleAction::Provision) or
    /// [`Recover`](LifecycleAction::Recover)) — the signal the
    /// simulator uses to park, rather than fail, unroutable queries.
    pub fn revives(&self) -> bool {
        matches!(
            self.action,
            LifecycleAction::Provision { .. } | LifecycleAction::Recover
        )
    }
}

/// A time-ordered stream of [`LifecycleEvent`]s for one replica group.
///
/// # Validation policy
///
/// [`new`](Self::new) panics on a non-monotone schedule or any
/// structurally invalid event (negative or non-finite time, negative
/// warm-up) — the same panic-on-construction policy the rest of the
/// crate's constructors follow. Replica indices are validated against
/// the owning group by
/// [`ReplicaGroup::with_lifecycle`](crate::ReplicaGroup::with_lifecycle).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LifecycleSchedule {
    events: Vec<LifecycleEvent>,
}

impl LifecycleSchedule {
    /// A schedule with no events — the inert default every group
    /// carries; runs with only empty schedules are bit-identical to
    /// lifecycle-free serving.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Creates a schedule from time-ordered events.
    ///
    /// # Panics
    ///
    /// Panics if event times decrease, or any event carries a negative
    /// or non-finite time or warm-up.
    pub fn new(events: Vec<LifecycleEvent>) -> Self {
        for w in events.windows(2) {
            assert!(
                w[1].time >= w[0].time,
                "lifecycle schedule times must be non-decreasing"
            );
        }
        for e in &events {
            // Re-assert even for struct-literal events so a schedule can
            // never smuggle in an invalid time or warm-up.
            LifecycleEvent::validated(e.time, e.replica, e.action);
        }
        Self { events }
    }

    /// Appends one event, which must not precede the last.
    ///
    /// # Panics
    ///
    /// Panics under the same rules as [`new`](Self::new).
    pub fn with_event(mut self, event: LifecycleEvent) -> Self {
        if let Some(last) = self.events.last() {
            assert!(
                event.time >= last.time,
                "lifecycle schedule times must be non-decreasing"
            );
        }
        self.events.push(LifecycleEvent::validated(
            event.time,
            event.replica,
            event.action,
        ));
        self
    }

    /// The events in schedule order.
    pub fn events(&self) -> &[LifecycleEvent] {
        &self.events
    }

    /// Whether the schedule holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of pending revival events
    /// ([`Provision`](LifecycleAction::Provision)/[`Recover`](LifecycleAction::Recover)).
    pub fn revivals(&self) -> usize {
        self.events.iter().filter(|e| e.revives()).count()
    }
}

/// What happens to queries stranded by a fail-stop (killed mid-batch or
/// queued on the dead replica) and to arrivals routed to a group with
/// no available replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// Re-inject stranded queries as fresh arrivals at the failure
    /// instant: the router re-places them on the group's surviving
    /// replicas, preserving their original arrival times (so the lost
    /// work shows up as latency, not as lost queries). When the whole
    /// group is down they park until a provision or recovery flushes
    /// them — or surface [`SimError::NoAvailableReplica`] when no
    /// revival is pending.
    #[default]
    Requeue,
    /// Drop stranded work: queued queries and dead-group arrivals are
    /// counted as `shed`, killed in-flight queries as `dropped`. The
    /// run always completes (no typed error), and
    /// `completed + shed + dropped` still accounts for every query.
    Shed,
}

/// Error surfaced by a lifecycle-aware simulation run.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A query arrived at a resource group whose replicas are all down,
    /// the [`FailurePolicy`] asked to requeue, and no provision or
    /// recovery is pending that could ever serve it.
    NoAvailableReplica {
        /// The dead resource group's index.
        group: usize,
        /// Simulation time of the unroutable arrival.
        time: f64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::NoAvailableReplica { group, time } => write!(
                f,
                "no available replica in resource group {group} at t={time:.3}s and no revival pending"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Telemetry for one fixed-width time window of a lifecycle-aware run —
/// the signal driving [`FleetController`]s and the per-window series
/// [`SimResult::windows`](crate::SimResult::windows) reports.
///
/// Integral quantities (queue depth, utilization, cost) are
/// time-weighted means over the window; `p99_s` is the 99th-percentile
/// latency of the queries that *completed* in the window (0.0 when none
/// did — pair it with `mean_queue_depth` to tell an idle window from a
/// stalled one).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStats {
    /// Window start time in seconds.
    pub start: f64,
    /// Window end time in seconds.
    pub end: f64,
    /// Stage-0 arrivals injected during the window.
    pub arrivals: usize,
    /// Queries that completed their final stage during the window.
    pub completed: usize,
    /// Queries shed during the window.
    pub shed: usize,
    /// In-flight queries dropped by fail-stops during the window.
    pub dropped: usize,
    /// Queries that exhausted their timeout (and any retry allowance)
    /// during the window. Always zero outside resilience-aware runs
    /// (see [`serve_resilient`](crate::serve_resilient)).
    pub timed_out: usize,
    /// p99 latency of the window's completions in seconds (0.0 when the
    /// window completed nothing).
    pub p99_s: f64,
    /// Time-weighted mean number of waiting queries (queued plus
    /// parked) across all replicas.
    pub mean_queue_depth: f64,
    /// Time-weighted mean busy fraction of the *live* fleet's units.
    pub utilization: f64,
    /// Live (up or warming) replicas at the window's end — of the
    /// scaled group under autoscaling, of the whole pipeline otherwise.
    pub live_replicas: usize,
    /// Time-weighted mean fleet cost: the sum of profile speeds over
    /// non-down replicas (a half-speed previous-generation box prices
    /// at 0.5), averaged over the window.
    pub cost: f64,
    /// Queries admitted onto each path during the window, in path order
    /// (see [`serve_multipath`](crate::serve_multipath)). Empty outside
    /// multi-path runs.
    pub path_admitted: Vec<usize>,
    /// Queries completing each path during the window, in path order.
    /// Empty outside multi-path runs.
    pub path_completed: Vec<usize>,
}

impl WindowStats {
    /// Window width in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// Mean offered arrival rate over the window in QPS.
    pub fn arrival_rate(&self) -> f64 {
        if self.duration() > 0.0 {
            self.arrivals as f64 / self.duration()
        } else {
            0.0
        }
    }

    /// Fraction of the window's resolved queries that were shed or
    /// dropped: `(shed + dropped) / (completed + shed + dropped)` (0.0
    /// when the window resolved nothing). The loss signal brown-out
    /// SLOs bound — a run that protects p99 by shedding heavily still
    /// shows its damage here.
    pub fn shed_rate(&self) -> f64 {
        let lost = self.shed + self.dropped;
        let resolved = self.completed + lost + self.timed_out;
        if resolved == 0 {
            0.0
        } else {
            lost as f64 / resolved as f64
        }
    }

    /// Fraction of the window's resolved queries that timed out for
    /// good: `timed_out / (completed + shed + dropped + timed_out)`
    /// (0.0 when the window resolved nothing). Mirrors
    /// [`shed_rate`](Self::shed_rate) for the resilience loss channel —
    /// a run that protects its tail statistics by abandoning slow
    /// queries still shows its damage here.
    pub fn timeout_rate(&self) -> f64 {
        let resolved = self.completed + self.shed + self.dropped + self.timed_out;
        if resolved == 0 {
            0.0
        } else {
            self.timed_out as f64 / resolved as f64
        }
    }

    /// Whether the window violated a p99 SLO with zero shed tolerance —
    /// shorthand for [`violates_slo`](Self::violates_slo) with
    /// [`SloSpec::p99`].
    pub fn violates(&self, slo_p99_s: f64) -> bool {
        self.violates_slo(&SloSpec::p99(slo_p99_s))
    }

    /// Whether the window violated an [`SloSpec`]: shed rate above the
    /// SLO's tolerance, timeout rate above its timeout tolerance, tail
    /// latency above its p99 bound, or work waiting while nothing
    /// completed (a stalled window has no latency sample but is
    /// certainly not meeting its SLO).
    pub fn violates_slo(&self, slo: &SloSpec) -> bool {
        self.shed_rate() > slo.max_shed_rate
            || self.timeout_rate() > slo.max_timeout_rate
            || self.p99_s > slo.p99_s
            || (self.completed == 0 && self.mean_queue_depth >= 1.0)
    }
}

/// A windowed service-level objective: a p99 latency bound plus a shed
/// tolerance. The default tolerance is zero — any shed or dropped query
/// violates — matching [`WindowStats::violates`]; brown-out runs that
/// deliberately shed under overload raise the tolerance with
/// [`with_shed_tolerance`](Self::with_shed_tolerance) so only
/// *excessive* loss flags.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// Largest acceptable window p99 latency in seconds.
    pub p99_s: f64,
    /// Largest acceptable window [`shed_rate`](WindowStats::shed_rate)
    /// (default 0.0: any loss violates).
    pub max_shed_rate: f64,
    /// Largest acceptable window
    /// [`timeout_rate`](WindowStats::timeout_rate) (default 0.0: any
    /// final timeout violates).
    pub max_timeout_rate: f64,
}

impl SloSpec {
    /// A p99-only SLO with zero shed and timeout tolerance.
    pub fn p99(p99_s: f64) -> Self {
        Self {
            p99_s,
            max_shed_rate: 0.0,
            max_timeout_rate: 0.0,
        }
    }

    /// Sets the shed-rate tolerance.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is in `[0, 1]`.
    pub fn with_shed_tolerance(mut self, rate: f64) -> Self {
        assert!(
            rate.is_finite() && (0.0..=1.0).contains(&rate),
            "shed tolerance must be in [0, 1]"
        );
        self.max_shed_rate = rate;
        self
    }

    /// Sets the timeout-rate tolerance.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is in `[0, 1]`.
    pub fn with_timeout_tolerance(mut self, rate: f64) -> Self {
        assert!(
            rate.is_finite() && (0.0..=1.0).contains(&rate),
            "timeout tolerance must be in [0, 1]"
        );
        self.max_timeout_rate = rate;
        self
    }
}

/// The closed-loop fleet-resize seam: consulted at every window
/// boundary with the closing window's [`WindowStats`] and the current
/// live (up or warming) replica count, it returns the count the fleet
/// should converge to. The simulator clamps the answer to the
/// configured `[min_replicas, max_replicas]` band, provisions down
/// replicas (lowest index first, through warm-up) to scale up, and
/// drains live replicas (highest index first) to scale down — draining
/// finishes queued and in-flight work, so scale-down never kills live
/// queries.
pub trait FleetController {
    /// Short name for reports.
    fn name(&self) -> String;

    /// The replica count the fleet should converge to.
    fn desired_replicas(&mut self, window: &WindowStats, live: usize) -> usize;
}

/// Options for a lifecycle-aware run
/// ([`serve_lifecycle`](crate::serve_lifecycle)): how failures treat
/// stranded work, how slowly warming replicas serve, and whether to
/// record windowed telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct LifecycleConfig {
    /// What happens to stranded queries (default: requeue).
    pub failure_policy: FailurePolicy,
    /// Speed multiplier applied to a warming replica's profile speed
    /// (default 0.5: a warming box serves at half rate).
    pub warmup_speed: f64,
    /// Fixed telemetry window width in seconds; `None` records no
    /// per-window series (the cost integral is still tracked).
    pub window_s: Option<f64>,
}

impl Default for LifecycleConfig {
    fn default() -> Self {
        Self {
            failure_policy: FailurePolicy::Requeue,
            warmup_speed: 0.5,
            window_s: None,
        }
    }
}

impl LifecycleConfig {
    /// The default configuration: requeue on failure, half-speed
    /// warm-up, no windowed telemetry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the failure policy.
    pub fn with_failure_policy(mut self, policy: FailurePolicy) -> Self {
        self.failure_policy = policy;
        self
    }

    /// Sets the warming-replica speed multiplier.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < warmup_speed <= 1` (a warming replica cannot
    /// outrun its own profile).
    pub fn with_warmup_speed(mut self, warmup_speed: f64) -> Self {
        assert!(
            warmup_speed.is_finite() && warmup_speed > 0.0 && warmup_speed <= 1.0,
            "warm-up speed must be in (0, 1]"
        );
        self.warmup_speed = warmup_speed;
        self
    }

    /// Enables windowed telemetry with the given window width.
    ///
    /// # Panics
    ///
    /// Panics if `window_s` is not strictly positive and finite.
    pub fn with_window(mut self, window_s: f64) -> Self {
        assert!(
            window_s.is_finite() && window_s > 0.0,
            "telemetry window must be positive"
        );
        self.window_s = Some(window_s);
        self
    }
}

/// Options for a closed-loop autoscaled run
/// ([`serve_autoscaled`](crate::serve_autoscaled)): which resource
/// group a [`FleetController`] resizes, within what band, and on what
/// cadence. The spec's group must hold `max_replicas` slots — the
/// controller provisions and drains within them.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscaleConfig {
    /// Index of the resource group the controller resizes.
    pub group: usize,
    /// Smallest replica count the controller may converge to (≥ 1).
    pub min_replicas: usize,
    /// Largest replica count (must not exceed the group's slot count).
    pub max_replicas: usize,
    /// Replicas live at t = 0; the rest start down.
    pub initial_replicas: usize,
    /// Warm-up applied to every controller-issued provision, seconds.
    pub warmup_s: f64,
    /// Decision and telemetry window width in seconds.
    pub window_s: f64,
    /// Lifecycle options shared with scheduled events.
    pub lifecycle: LifecycleConfig,
}

impl AutoscaleConfig {
    /// An autoscaling band over `group` with a decision window.
    ///
    /// Defaults: start at `min_replicas`, zero warm-up, requeue on
    /// failure, half-speed warm-up serving.
    ///
    /// # Panics
    ///
    /// Panics if `min_replicas == 0`, `min_replicas > max_replicas`, or
    /// `window_s` is not strictly positive and finite.
    pub fn new(group: usize, min_replicas: usize, max_replicas: usize, window_s: f64) -> Self {
        assert!(min_replicas > 0, "autoscale floor must be at least 1");
        assert!(
            min_replicas <= max_replicas,
            "autoscale floor exceeds ceiling"
        );
        assert!(
            window_s.is_finite() && window_s > 0.0,
            "decision window must be positive"
        );
        Self {
            group,
            min_replicas,
            max_replicas,
            initial_replicas: min_replicas,
            warmup_s: 0.0,
            window_s,
            lifecycle: LifecycleConfig::new(),
        }
    }

    /// Sets the replica count live at t = 0.
    ///
    /// # Panics
    ///
    /// Panics unless `min_replicas <= initial <= max_replicas`.
    pub fn with_initial_replicas(mut self, initial: usize) -> Self {
        assert!(
            (self.min_replicas..=self.max_replicas).contains(&initial),
            "initial replicas outside the autoscale band"
        );
        self.initial_replicas = initial;
        self
    }

    /// Sets the warm-up applied to controller-issued provisions.
    ///
    /// # Panics
    ///
    /// Panics if `warmup_s` is negative or non-finite.
    pub fn with_warmup(mut self, warmup_s: f64) -> Self {
        assert!(
            warmup_s.is_finite() && warmup_s >= 0.0,
            "warm-up duration must be non-negative and finite"
        );
        self.warmup_s = warmup_s;
        self
    }

    /// Replaces the shared lifecycle options.
    pub fn with_lifecycle(mut self, lifecycle: LifecycleConfig) -> Self {
        self.lifecycle = lifecycle;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_accepts_ordered_events() {
        let s = LifecycleSchedule::new(vec![
            LifecycleEvent::fail_stop(1.0, 0),
            LifecycleEvent::recover(2.0, 0),
            LifecycleEvent::drain(2.0, 1),
        ]);
        assert_eq!(s.events().len(), 3);
        assert_eq!(s.revivals(), 1);
        assert!(!s.is_empty());
        assert!(LifecycleSchedule::empty().is_empty());
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn non_monotone_schedule_is_rejected() {
        LifecycleSchedule::new(vec![
            LifecycleEvent::fail_stop(2.0, 0),
            LifecycleEvent::recover(1.0, 0),
        ]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn with_event_rejects_time_regression() {
        let _ = LifecycleSchedule::empty()
            .with_event(LifecycleEvent::drain(3.0, 0))
            .with_event(LifecycleEvent::drain(1.0, 1));
    }

    #[test]
    #[should_panic(expected = "non-negative and finite")]
    fn negative_event_time_is_rejected() {
        LifecycleEvent::drain(-1.0, 0);
    }

    #[test]
    #[should_panic(expected = "non-negative and finite")]
    fn nan_event_time_is_rejected() {
        LifecycleEvent::fail_stop(f64::NAN, 0);
    }

    #[test]
    #[should_panic(expected = "warm-up duration")]
    fn negative_warmup_is_rejected() {
        LifecycleEvent::provision(0.0, 0, -0.5);
    }

    #[test]
    #[should_panic(expected = "warm-up duration")]
    fn schedule_revalidates_struct_literal_events() {
        // A struct-literal event bypasses the constructors; new() must
        // still reject it (the heterogeneous-profiles precedent).
        LifecycleSchedule::new(vec![LifecycleEvent {
            time: 0.0,
            replica: 0,
            action: LifecycleAction::Provision {
                warmup_s: f64::INFINITY,
            },
        }]);
    }

    #[test]
    fn sim_error_displays_group_and_time() {
        let e = SimError::NoAvailableReplica {
            group: 2,
            time: 1.5,
        };
        let msg = e.to_string();
        assert!(msg.contains('2') && msg.contains("1.5"));
        // Composes with `?` into Box<dyn Error>.
        let boxed: Box<dyn std::error::Error> = Box::new(e);
        assert!(boxed.to_string().contains("no available replica"));
    }

    #[test]
    fn window_stats_violation_rules() {
        let base = WindowStats {
            start: 0.0,
            end: 1.0,
            arrivals: 100,
            completed: 100,
            shed: 0,
            dropped: 0,
            timed_out: 0,
            p99_s: 0.010,
            mean_queue_depth: 0.5,
            utilization: 0.4,
            live_replicas: 2,
            cost: 2.0,
            path_admitted: Vec::new(),
            path_completed: Vec::new(),
        };
        assert!(!base.violates(0.025));
        assert!(base.violates(0.005)); // tail above SLO
        let shedding = WindowStats {
            shed: 1,
            ..base.clone()
        };
        assert!(shedding.violates(0.025));
        let stalled = WindowStats {
            completed: 0,
            p99_s: 0.0,
            mean_queue_depth: 40.0,
            ..base.clone()
        };
        assert!(stalled.violates(0.025)); // backlogged, nothing finishing
        let idle = WindowStats {
            arrivals: 0,
            completed: 0,
            p99_s: 0.0,
            mean_queue_depth: 0.0,
            ..base
        };
        assert!(!idle.violates(0.025));
        assert!((idle.arrival_rate() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn shed_rate_divides_loss_by_resolved_queries() {
        let mut w = WindowStats {
            start: 0.0,
            end: 1.0,
            arrivals: 100,
            completed: 90,
            shed: 8,
            dropped: 2,
            timed_out: 0,
            p99_s: 0.010,
            mean_queue_depth: 0.5,
            utilization: 0.4,
            live_replicas: 2,
            cost: 2.0,
            path_admitted: Vec::new(),
            path_completed: Vec::new(),
        };
        assert!((w.shed_rate() - 0.1).abs() < 1e-12);
        w.completed = 0;
        w.shed = 0;
        w.dropped = 0;
        assert_eq!(w.shed_rate(), 0.0); // idle window resolves nothing
    }

    #[test]
    fn slo_spec_bounds_shed_rate_as_well_as_tail() {
        let heavy_shed = WindowStats {
            start: 0.0,
            end: 1.0,
            arrivals: 100,
            completed: 60,
            shed: 40,
            dropped: 0,
            timed_out: 0,
            p99_s: 0.005, // p99 looks great — protected by shedding
            mean_queue_depth: 0.5,
            utilization: 0.4,
            live_replicas: 2,
            cost: 2.0,
            path_admitted: Vec::new(),
            path_completed: Vec::new(),
        };
        // Default tolerance (zero): any shed violates — the old rule.
        assert!(heavy_shed.violates(0.025));
        // A brown-out SLO tolerating 50% loss passes this window...
        let lenient = SloSpec::p99(0.025).with_shed_tolerance(0.5);
        assert!(!heavy_shed.violates_slo(&lenient));
        // ...but a 25% tolerance flags the 40% shed rate even though
        // the p99 bound holds.
        let strict = SloSpec::p99(0.025).with_shed_tolerance(0.25);
        assert!(heavy_shed.violates_slo(&strict));
        // The p99 clause still applies independently of shed tolerance.
        let slow = WindowStats {
            shed: 0,
            completed: 100,
            p99_s: 0.050,
            ..heavy_shed
        };
        assert!(slow.violates_slo(&lenient));
    }

    #[test]
    #[should_panic(expected = "shed tolerance")]
    fn shed_tolerance_above_one_is_rejected() {
        let _ = SloSpec::p99(0.025).with_shed_tolerance(1.5);
    }

    #[test]
    fn degrade_is_not_a_revival_and_validates_speed() {
        let e = LifecycleEvent::degrade(1.0, 0, 0.25);
        assert!(!e.revives());
        assert_eq!(e.action, LifecycleAction::Degrade { speed: 0.25 });
        // Full-profile "degradation" is allowed (a no-op limp).
        let _ = LifecycleEvent::degrade(0.0, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "degraded speed")]
    fn degrade_to_zero_speed_is_rejected() {
        // speed == 0 would be a stopped replica masquerading as live;
        // that's a fail-stop, not a limp.
        LifecycleEvent::degrade(1.0, 0, 0.0);
    }

    #[test]
    #[should_panic(expected = "degraded speed")]
    fn degrade_above_profile_speed_is_rejected() {
        LifecycleEvent::degrade(1.0, 0, 1.5);
    }

    #[test]
    #[should_panic(expected = "degraded speed")]
    fn schedule_revalidates_struct_literal_degrades() {
        LifecycleSchedule::new(vec![LifecycleEvent {
            time: 0.0,
            replica: 0,
            action: LifecycleAction::Degrade { speed: f64::NAN },
        }]);
    }

    #[test]
    fn timeout_rate_bounds_the_resilience_loss_channel() {
        let timing_out = WindowStats {
            start: 0.0,
            end: 1.0,
            arrivals: 100,
            completed: 90,
            shed: 0,
            dropped: 0,
            timed_out: 10,
            p99_s: 0.005, // tail looks great — protected by abandoning
            mean_queue_depth: 0.5,
            utilization: 0.4,
            live_replicas: 2,
            cost: 2.0,
            path_admitted: Vec::new(),
            path_completed: Vec::new(),
        };
        assert!((timing_out.timeout_rate() - 0.1).abs() < 1e-12);
        // Timeouts do not inflate the shed channel...
        assert!((timing_out.shed_rate() - 0.0).abs() < 1e-12);
        // ...but the default zero tolerance flags any final timeout,
        // mirroring the shed-rate rule.
        assert!(timing_out.violates(0.025));
        // A resilience SLO tolerating 15% timeouts passes the window...
        let lenient = SloSpec::p99(0.025).with_timeout_tolerance(0.15);
        assert!(!timing_out.violates_slo(&lenient));
        // ...while a 5% tolerance flags the 10% rate even though both
        // the p99 and shed bounds hold.
        let strict = SloSpec::p99(0.025).with_timeout_tolerance(0.05);
        assert!(timing_out.violates_slo(&strict));
        // An idle window resolves nothing and cannot violate on rate.
        let idle = WindowStats {
            arrivals: 0,
            completed: 0,
            timed_out: 0,
            p99_s: 0.0,
            mean_queue_depth: 0.0,
            ..timing_out
        };
        assert!((idle.timeout_rate() - 0.0).abs() < 1e-12);
        assert!(!idle.violates(0.025));
    }

    #[test]
    #[should_panic(expected = "timeout tolerance")]
    fn timeout_tolerance_above_one_is_rejected() {
        let _ = SloSpec::p99(0.025).with_timeout_tolerance(1.01);
    }

    #[test]
    #[should_panic(expected = "floor exceeds ceiling")]
    fn autoscale_band_must_be_ordered() {
        AutoscaleConfig::new(0, 4, 2, 1.0);
    }

    #[test]
    #[should_panic(expected = "outside the autoscale band")]
    fn initial_replicas_must_sit_in_band() {
        let _ = AutoscaleConfig::new(0, 2, 4, 1.0).with_initial_replicas(5);
    }

    #[test]
    #[should_panic(expected = "in (0, 1]")]
    fn warmup_speed_above_profile_is_rejected() {
        let _ = LifecycleConfig::new().with_warmup_speed(1.5);
    }
}
