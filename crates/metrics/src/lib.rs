//! Quality, accuracy, and performance metrics for RecPipe.
//!
//! The RecPipe paper optimizes three application-level targets:
//!
//! * **Quality** — normalized discounted cumulative gain ([`ndcg_at_k`]) of
//!   the ordered list of served items, not just pointwise model accuracy.
//! * **Tail latency** — 99th-percentile query latency ([`LatencyStats`]).
//! * **Throughput** — queries served per second ([`ThroughputMeter`]).
//!
//! The crate also provides binary-classification [`accuracy`](binary_error)
//! helpers (the per-item metric the paper contrasts with quality) and the
//! shared Pareto machinery — [`pareto_front`] and the typed
//! [`ParetoFront`] — that the scheduler and the `Engine`'s `sweep` use as
//! their one dominance path.
//!
//! # Examples
//!
//! ```
//! use recpipe_metrics::ndcg_at_k;
//!
//! // The model ranked the best item (gain 3.0) second.
//! let ranked = [1.0, 3.0, 0.0];
//! let ideal = [3.0, 1.0, 0.0];
//! let q = ndcg_at_k(&ranked, &ideal, 3);
//! assert!(q > 0.75 && q < 1.0);
//! ```

mod accuracy;
mod ndcg;
mod pareto;
mod percentile;
mod throughput;

pub use accuracy::{auc, binary_error, BinaryConfusion};
pub use ndcg::{dcg, ideal_sorted, ndcg, ndcg_at_k};
pub use pareto::{pareto_front, Dominance, ParetoFront, ParetoPoint};
pub use percentile::LatencyStats;
pub use throughput::ThroughputMeter;
