use serde::{Deserialize, Serialize};

/// Confusion-matrix counts for a binary click-through-rate classifier.
///
/// The paper's "model error" (Table 1: 21.36% / 21.26% / 21.13%) is the
/// fraction of single user-item interactions the model misclassifies —
/// the *accuracy* metric that quality (NDCG) subsumes.
///
/// # Examples
///
/// ```
/// use recpipe_metrics::BinaryConfusion;
///
/// let mut cm = BinaryConfusion::new();
/// cm.observe(0.9, true);  // correct positive
/// cm.observe(0.2, true);  // missed positive
/// cm.observe(0.1, false); // correct negative
/// assert!((cm.error() - 1.0 / 3.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinaryConfusion {
    /// Predicted positive, actually positive.
    pub true_positives: u64,
    /// Predicted positive, actually negative.
    pub false_positives: u64,
    /// Predicted negative, actually negative.
    pub true_negatives: u64,
    /// Predicted negative, actually positive.
    pub false_negatives: u64,
}

impl BinaryConfusion {
    /// Decision threshold applied to scores: `score > 0.5` predicts a click.
    pub const THRESHOLD: f64 = 0.5;

    /// Creates an empty confusion matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one prediction (`score` in `[0, 1]`) against the label.
    pub fn observe(&mut self, score: f64, clicked: bool) {
        let predicted = score > Self::THRESHOLD;
        match (predicted, clicked) {
            (true, true) => self.true_positives += 1,
            (true, false) => self.false_positives += 1,
            (false, false) => self.true_negatives += 1,
            (false, true) => self.false_negatives += 1,
        }
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// Misclassification rate in `[0, 1]`; `0` when empty.
    pub fn error(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.false_positives + self.false_negatives) as f64 / total as f64
    }

    /// Classification accuracy (`1 - error`).
    pub fn accuracy(&self) -> f64 {
        1.0 - self.error()
    }
}

/// Misclassification rate of `scores` against `labels` at threshold 0.5.
///
/// # Panics
///
/// Panics if the slice lengths differ.
///
/// # Examples
///
/// ```
/// let err = recpipe_metrics::binary_error(&[0.9, 0.1], &[true, true]);
/// assert!((err - 0.5).abs() < 1e-9);
/// ```
pub fn binary_error(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let mut cm = BinaryConfusion::new();
    for (&s, &l) in scores.iter().zip(labels.iter()) {
        cm.observe(s, l);
    }
    cm.error()
}

/// Area under the ROC curve via the rank-sum (Mann–Whitney U) statistic.
///
/// Returns `0.5` when either class is absent (no ranking information).
///
/// # Panics
///
/// Panics if the slice lengths differ.
///
/// # Examples
///
/// ```
/// // Perfectly separated scores give AUC 1.0.
/// let auc = recpipe_metrics::auc(&[0.9, 0.8, 0.1], &[true, true, false]);
/// assert!((auc - 1.0).abs() < 1e-9);
/// ```
pub fn auc(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let mut indexed: Vec<(f64, bool)> =
        scores.iter().copied().zip(labels.iter().copied()).collect();
    indexed.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

    let positives = labels.iter().filter(|&&l| l).count() as f64;
    let negatives = labels.len() as f64 - positives;
    if positives == 0.0 || negatives == 0.0 {
        return 0.5;
    }

    // Average ranks over tied scores, then apply the rank-sum formula.
    let mut rank_sum_pos = 0.0;
    let mut i = 0;
    let n = indexed.len();
    while i < n {
        let mut j = i;
        while j + 1 < n && indexed[j + 1].0 == indexed[i].0 {
            j += 1;
        }
        // Ranks are 1-based; ties share the average rank of the run.
        let avg_rank = ((i + 1 + j + 1) as f64) / 2.0;
        for item in indexed.iter().take(j + 1).skip(i) {
            if item.1 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    (rank_sum_pos - positives * (positives + 1.0) / 2.0) / (positives * negatives)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts_all_quadrants() {
        let mut cm = BinaryConfusion::new();
        cm.observe(0.9, true);
        cm.observe(0.9, false);
        cm.observe(0.1, true);
        cm.observe(0.1, false);
        assert_eq!(cm.true_positives, 1);
        assert_eq!(cm.false_positives, 1);
        assert_eq!(cm.false_negatives, 1);
        assert_eq!(cm.true_negatives, 1);
        assert!((cm.error() - 0.5).abs() < 1e-12);
        assert!((cm.accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_confusion_has_zero_error() {
        assert_eq!(BinaryConfusion::new().error(), 0.0);
    }

    #[test]
    fn binary_error_perfect_predictions() {
        assert_eq!(binary_error(&[0.9, 0.1], &[true, false]), 0.0);
    }

    #[test]
    fn binary_error_inverted_predictions() {
        assert_eq!(binary_error(&[0.1, 0.9], &[true, false]), 1.0);
    }

    #[test]
    fn auc_perfect_separation() {
        let scores = [0.9, 0.8, 0.7, 0.2, 0.1];
        let labels = [true, true, true, false, false];
        assert!((auc(&scores, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auc_inverted_separation_is_zero() {
        let scores = [0.1, 0.2, 0.9];
        let labels = [true, true, false];
        assert!(auc(&scores, &labels) < 1e-12);
    }

    #[test]
    fn auc_with_ties_is_half() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [true, false, true, false];
        assert!((auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_single_class_returns_half() {
        assert_eq!(auc(&[0.3, 0.7], &[true, true]), 0.5);
        assert_eq!(auc(&[0.3, 0.7], &[false, false]), 0.5);
    }

    #[test]
    fn auc_is_threshold_free() {
        // Scaling scores monotonically must not change AUC.
        let scores = [0.2, 0.4, 0.6, 0.8];
        let scaled: Vec<f64> = scores.iter().map(|s| s * 0.5).collect();
        let labels = [false, true, false, true];
        assert!((auc(&scores, &labels) - auc(&scaled, &labels)).abs() < 1e-12);
    }
}
