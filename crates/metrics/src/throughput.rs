use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Measures achieved system throughput in queries per second (QPS).
///
/// The meter records query completion timestamps (simulation time) and
/// reports the completion rate over the observed span. The paper's
/// throughput axis is "queries processed per second" under a Poisson
/// arrival process.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use recpipe_metrics::ThroughputMeter;
///
/// let mut meter = ThroughputMeter::new();
/// for i in 0..100 {
///     meter.record_completion(Duration::from_millis(10 * i));
/// }
/// // 100 completions over 0.99 s ≈ 101 QPS.
/// assert!((meter.qps() - 100.0).abs() < 5.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ThroughputMeter {
    completions: u64,
    first: Option<Duration>,
    last: Option<Duration>,
}

impl ThroughputMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a query completion at simulation time `at`.
    pub fn record_completion(&mut self, at: Duration) {
        self.completions += 1;
        if self.first.is_none() || Some(at) < self.first {
            self.first = Some(at);
        }
        if self.last.is_none() || Some(at) > self.last {
            self.last = Some(at);
        }
    }

    /// Number of completions observed.
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// Time span between first and last completion.
    pub fn span(&self) -> Duration {
        match (self.first, self.last) {
            (Some(f), Some(l)) => l.saturating_sub(f),
            _ => Duration::ZERO,
        }
    }

    /// Achieved queries per second over the observed span.
    ///
    /// Returns `0.0` with fewer than two completions (rate undefined).
    pub fn qps(&self) -> f64 {
        let span = self.span().as_secs_f64();
        if span <= 0.0 || self.completions < 2 {
            return 0.0;
        }
        // (n - 1) inter-completion intervals over the span.
        (self.completions - 1) as f64 / span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_meter_reports_zero() {
        let m = ThroughputMeter::new();
        assert_eq!(m.qps(), 0.0);
        assert_eq!(m.completions(), 0);
        assert_eq!(m.span(), Duration::ZERO);
    }

    #[test]
    fn single_completion_has_no_rate() {
        let mut m = ThroughputMeter::new();
        m.record_completion(Duration::from_secs(1));
        assert_eq!(m.qps(), 0.0);
    }

    #[test]
    fn uniform_completions_give_exact_rate() {
        let mut m = ThroughputMeter::new();
        // 11 completions, one every 100 ms → exactly 10 QPS.
        for i in 0..11 {
            m.record_completion(Duration::from_millis(100 * i));
        }
        assert!((m.qps() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_order_recording_is_handled() {
        let mut m = ThroughputMeter::new();
        m.record_completion(Duration::from_secs(2));
        m.record_completion(Duration::from_secs(0));
        m.record_completion(Duration::from_secs(1));
        assert_eq!(m.span(), Duration::from_secs(2));
        assert!((m.qps() - 1.0).abs() < 1e-9);
    }
}
