use serde::{Deserialize, Serialize};

/// Direction of optimization for one objective axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dominance {
    /// Smaller values are better (e.g. tail latency).
    Minimize,
    /// Larger values are better (e.g. quality, throughput).
    Maximize,
}

impl Dominance {
    /// Whether value `a` is at least as good as `b` on this axis.
    fn at_least_as_good(self, a: f64, b: f64) -> bool {
        match self {
            Dominance::Minimize => a <= b,
            Dominance::Maximize => a >= b,
        }
    }

    /// Whether value `a` is strictly better than `b` on this axis.
    fn strictly_better(self, a: f64, b: f64) -> bool {
        match self {
            Dominance::Minimize => a < b,
            Dominance::Maximize => a > b,
        }
    }
}

/// A candidate design point: an arbitrary payload tagged with objective
/// values (one per axis).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint<T> {
    /// The design this point describes (pipeline config, mapping, ...).
    pub payload: T,
    /// Objective values, in the same order as the `axes` passed to
    /// [`pareto_front`].
    pub objectives: Vec<f64>,
}

impl<T> ParetoPoint<T> {
    /// Creates a point from a payload and its objective values.
    pub fn new(payload: T, objectives: Vec<f64>) -> Self {
        Self {
            payload,
            objectives,
        }
    }
}

/// Returns `true` if `a` dominates `b`: at least as good on every axis and
/// strictly better on at least one.
fn dominates(a: &[f64], b: &[f64], axes: &[Dominance]) -> bool {
    debug_assert_eq!(a.len(), axes.len());
    debug_assert_eq!(b.len(), axes.len());
    let mut strictly = false;
    for ((&av, &bv), &axis) in a.iter().zip(b.iter()).zip(axes.iter()) {
        if !axis.at_least_as_good(av, bv) {
            return false;
        }
        if axis.strictly_better(av, bv) {
            strictly = true;
        }
    }
    strictly
}

/// Extracts the Pareto-optimal subset of `points` under the given axis
/// directions.
///
/// The scheduler uses this to reduce an exhaustive design-space sweep to
/// its quality/latency/throughput frontier (Figures 7, 8, 12 of the
/// paper). Dominated points are dropped; the survivors keep their input
/// order.
///
/// # Panics
///
/// Panics if any point's objective count differs from `axes.len()`.
///
/// # Examples
///
/// ```
/// use recpipe_metrics::{pareto_front, Dominance, ParetoPoint};
///
/// let points = vec![
///     ParetoPoint::new("fast-low-quality", vec![1.0, 0.80]),
///     ParetoPoint::new("slow-high-quality", vec![9.0, 0.95]),
///     ParetoPoint::new("dominated", vec![9.5, 0.80]),
/// ];
/// let front = pareto_front(points, &[Dominance::Minimize, Dominance::Maximize]);
/// assert_eq!(front.len(), 2);
/// ```
pub fn pareto_front<T>(points: Vec<ParetoPoint<T>>, axes: &[Dominance]) -> Vec<ParetoPoint<T>> {
    for p in &points {
        assert_eq!(
            p.objectives.len(),
            axes.len(),
            "objective arity must match axes"
        );
    }
    let mut keep = vec![true; points.len()];
    for i in 0..points.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..points.len() {
            if i == j || !keep[j] {
                continue;
            }
            if dominates(&points[j].objectives, &points[i].objectives, axes) {
                keep[i] = false;
                break;
            }
        }
    }
    points
        .into_iter()
        .zip(keep)
        .filter_map(|(p, k)| k.then_some(p))
        .collect()
}

/// A Pareto-optimal subset of design points, extracted with a caller-
/// supplied objective projection.
///
/// This is the one shared dominance path for every frontier the system
/// produces — the scheduler's quality/latency sweeps, the `Engine`'s
/// [`sweep`] results, and ad-hoc analyses — so "Pareto-optimal" means
/// the same thing everywhere.
///
/// [`sweep`]: https://docs.rs/recpipe-core
///
/// # Examples
///
/// ```
/// use recpipe_metrics::{Dominance, ParetoFront};
///
/// // (latency, quality) candidates; minimize the first, maximize the second.
/// let candidates = vec![(1.0, 0.80), (9.0, 0.95), (9.5, 0.80)];
/// let front = ParetoFront::extract(
///     candidates,
///     &[Dominance::Minimize, Dominance::Maximize],
///     |&(lat, q)| vec![lat, q],
/// );
/// assert_eq!(front.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoFront<T> {
    points: Vec<T>,
}

impl<T> ParetoFront<T> {
    /// Extracts the Pareto-optimal subset of `points`, projecting each
    /// point onto objective values with `objectives` (one value per
    /// axis, in axis order).
    ///
    /// # Panics
    ///
    /// Panics if a projection's arity differs from `axes.len()`.
    pub fn extract(
        points: Vec<T>,
        axes: &[Dominance],
        objectives: impl Fn(&T) -> Vec<f64>,
    ) -> Self {
        let tagged: Vec<ParetoPoint<T>> = points
            .into_iter()
            .map(|p| {
                let obj = objectives(&p);
                ParetoPoint::new(p, obj)
            })
            .collect();
        Self {
            points: pareto_front(tagged, axes)
                .into_iter()
                .map(|p| p.payload)
                .collect(),
        }
    }

    /// The surviving points, in input order.
    pub fn points(&self) -> &[T] {
        &self.points
    }

    /// Consumes the front, yielding its points.
    pub fn into_vec(self) -> Vec<T> {
        self.points
    }

    /// Number of non-dominated points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the front is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterates over the points.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.points.iter()
    }
}

impl<T> IntoIterator for ParetoFront<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.into_iter()
    }
}

impl<'a, T> IntoIterator for &'a ParetoFront<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIN_MAX: &[Dominance] = &[Dominance::Minimize, Dominance::Maximize];

    #[test]
    fn dominated_point_is_removed() {
        let pts = vec![
            ParetoPoint::new("a", vec![1.0, 1.0]),
            ParetoPoint::new("b", vec![2.0, 0.5]),
        ];
        let front = pareto_front(pts, MIN_MAX);
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].payload, "a");
    }

    #[test]
    fn incomparable_points_both_survive() {
        let pts = vec![
            ParetoPoint::new("cheap", vec![1.0, 0.5]),
            ParetoPoint::new("good", vec![5.0, 0.9]),
        ];
        let front = pareto_front(pts, MIN_MAX);
        assert_eq!(front.len(), 2);
    }

    #[test]
    fn duplicate_points_survive_together() {
        // Equal points do not strictly dominate each other.
        let pts = vec![
            ParetoPoint::new(1, vec![1.0, 1.0]),
            ParetoPoint::new(2, vec![1.0, 1.0]),
        ];
        let front = pareto_front(pts, MIN_MAX);
        assert_eq!(front.len(), 2);
    }

    #[test]
    fn empty_input_gives_empty_front() {
        let front: Vec<ParetoPoint<()>> = pareto_front(vec![], MIN_MAX);
        assert!(front.is_empty());
    }

    #[test]
    fn maximize_axis_direction_respected() {
        let pts = vec![
            ParetoPoint::new("hi", vec![0.9]),
            ParetoPoint::new("lo", vec![0.1]),
        ];
        let front = pareto_front(pts, &[Dominance::Maximize]);
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].payload, "hi");
    }

    #[test]
    fn three_axis_dominance() {
        let axes = &[
            Dominance::Minimize,
            Dominance::Maximize,
            Dominance::Maximize,
        ];
        let pts = vec![
            ParetoPoint::new("balanced", vec![2.0, 0.9, 500.0]),
            ParetoPoint::new("dominated", vec![3.0, 0.8, 400.0]),
            ParetoPoint::new("fast", vec![1.0, 0.7, 300.0]),
        ];
        let front = pareto_front(pts, axes);
        let names: Vec<_> = front.iter().map(|p| p.payload).collect();
        assert!(names.contains(&"balanced"));
        assert!(names.contains(&"fast"));
        assert!(!names.contains(&"dominated"));
    }

    #[test]
    #[should_panic(expected = "objective arity")]
    fn arity_mismatch_panics() {
        let pts = vec![ParetoPoint::new((), vec![1.0])];
        pareto_front(pts, MIN_MAX);
    }

    #[test]
    fn front_type_extracts_and_iterates() {
        let candidates = vec![("a", 1.0, 0.9), ("b", 2.0, 0.95), ("c", 2.5, 0.9)];
        let front = ParetoFront::extract(candidates, MIN_MAX, |&(_, lat, q)| vec![lat, q]);
        assert_eq!(front.len(), 2);
        assert!(!front.is_empty());
        let names: Vec<&str> = front.iter().map(|&(n, _, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(front.points().len(), front.clone().into_vec().len());
        let collected: Vec<_> = front.into_iter().collect();
        assert_eq!(collected.len(), 2);
    }
}
