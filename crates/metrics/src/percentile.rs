use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Sample count above which a collector folds its exact sample vector
/// into the fixed log-spaced histogram (see [`LatencyStats`]).
///
/// Below this threshold every accessor is computed from the sorted
/// sample vector exactly as in earlier revisions — bit-for-bit — so the
/// 10k-query runs that all existing pins and baselines exercise are
/// unaffected. Above it, memory stays bounded at the fixed bin array
/// regardless of how many samples are recorded.
const FOLD_THRESHOLD: usize = 1 << 17;

/// Sub-bin resolution: each power-of-two octave is split into
/// `2^SUB_BITS` equal-width bins, bounding relative quantile error by
/// `2^-SUB_BITS` (~1.6%).
const SUB_BITS: u32 = 6;

/// Bins per octave.
const SUBS: usize = 1 << SUB_BITS;

/// Total bin count: `SUBS` exact unit bins for values below `SUBS`,
/// then `SUBS` bins per octave for exponents `SUB_BITS..=63`.
const NUM_BINS: usize = SUBS + (64 - SUB_BITS as usize) * SUBS;

/// Histogram bin index for a nanosecond value.
///
/// Values below `SUBS` map to their own exact bin; larger values map to
/// the octave given by their leading bit, subdivided by the next
/// `SUB_BITS` bits of the mantissa.
fn bin_index(ns: u64) -> usize {
    if ns < SUBS as u64 {
        return ns as usize;
    }
    let exp = 63 - ns.leading_zeros();
    let sub = ((ns >> (exp - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    SUBS + ((exp - SUB_BITS) as usize) * SUBS + sub
}

/// Inclusive lower bound (in nanoseconds) of histogram bin `idx`.
fn bin_lower(idx: usize) -> u64 {
    if idx < SUBS {
        return idx as u64;
    }
    let block = (idx - SUBS) / SUBS;
    let sub = (idx - SUBS) % SUBS;
    ((SUBS + sub) as u64) << block
}

/// Collects per-query latencies and reports tail statistics.
///
/// The RecPipe paper's SLA metric is the 99th-percentile (p99) latency
/// over tens of thousands of simulated queries; this type is the sink the
/// queueing simulator drains into.
///
/// # Exact vs histogram representation
///
/// Up to [`LatencyStats::fold_threshold`] samples, the collector keeps
/// the raw sample vector and percentiles use the *nearest-rank* method
/// on the sorted sample — exact (no interpolation) and monotone in the
/// requested rank, identical to earlier revisions of this type.
///
/// Beyond that threshold the samples fold permanently into a fixed
/// log-spaced histogram (64 sub-bins per power-of-two octave), so a
/// 10M-query run holds a constant-size bin array instead of an O(N)
/// vector. Histogram percentiles return the lower bound of the bin
/// containing the nearest-rank sample, clamped to the observed
/// `[min, max]` — within one bin width (relative error ≤ 2⁻⁶ ≈ 1.6%) of
/// the exact answer, still monotone in rank, and never above the true
/// maximum. The folded state is a pure multiset summary: recording or
/// merge order cannot change any reported statistic.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use recpipe_metrics::LatencyStats;
///
/// let mut stats = LatencyStats::new();
/// for ms in 1..=100 {
///     stats.record(Duration::from_millis(ms));
/// }
/// assert_eq!(stats.p99(), Duration::from_millis(99));
/// assert_eq!(stats.p50(), Duration::from_millis(50));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Raw samples while in exact mode; empty once folded.
    samples_ns: Vec<u64>,
    sorted: bool,
    /// Log-spaced bin counts; empty while in exact mode.
    bins: Vec<u64>,
    /// Folded-sample count (exact mode keeps this at zero).
    count: u64,
    /// Folded-sample sum; u128 so a u64::MAX-nanosecond outlier cannot
    /// overflow the mean of billions of samples.
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl LatencyStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty collector with capacity for `n` samples.
    ///
    /// Capacity is capped at the fold threshold: a collector never
    /// holds more raw samples than that, so pre-allocating for a
    /// 10M-query run would waste the very memory folding bounds.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            samples_ns: Vec::with_capacity(n.min(FOLD_THRESHOLD + 1)),
            sorted: true,
            ..Self::default()
        }
    }

    /// Sample count at which the collector switches from the exact
    /// sample vector to the fixed log-spaced histogram.
    pub fn fold_threshold() -> usize {
        FOLD_THRESHOLD
    }

    /// Whether this collector has folded into histogram form.
    pub fn is_folded(&self) -> bool {
        !self.bins.is_empty()
    }

    /// Width (in nanoseconds) of the histogram bin containing `ns`:
    /// the guaranteed worst-case percentile error once folded.
    pub fn bin_width_at(ns: u64) -> u64 {
        if ns < SUBS as u64 {
            1
        } else {
            1u64 << (63 - ns.leading_zeros() - SUB_BITS)
        }
    }

    /// Adds one value to the folded histogram state.
    fn fold_one(&mut self, ns: u64) {
        self.bins[bin_index(ns)] += 1;
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.sum_ns += ns as u128;
    }

    /// Irreversibly converts the exact sample vector into histogram
    /// form. No-op when already folded.
    fn fold(&mut self) {
        if self.is_folded() {
            return;
        }
        self.bins = vec![0u64; NUM_BINS];
        let samples = std::mem::take(&mut self.samples_ns);
        for ns in samples {
            self.fold_one(ns);
        }
        self.sorted = true;
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let ns = latency.as_nanos() as u64;
        if self.is_folded() {
            self.fold_one(ns);
            return;
        }
        self.samples_ns.push(ns);
        self.sorted = false;
        if self.samples_ns.len() > FOLD_THRESHOLD {
            self.fold();
        }
    }

    /// Records a latency expressed in seconds.
    ///
    /// Negative or non-finite values are clamped to zero.
    pub fn record_secs(&mut self, seconds: f64) {
        let s = if seconds.is_finite() {
            seconds.max(0.0)
        } else {
            0.0
        };
        self.record(Duration::from_secs_f64(s));
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        if self.is_folded() {
            self.count as usize
        } else {
            self.samples_ns.len()
        }
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn sort(&mut self) {
        if !self.sorted {
            self.samples_ns.sort_unstable();
            self.sorted = true;
        }
    }

    /// Latency at percentile `p` (in `[0, 100]`) by nearest rank.
    ///
    /// Exact below the fold threshold; once folded, returns the lower
    /// bound of the bin holding the nearest-rank sample clamped to the
    /// observed `[min, max]` (within one bin width of exact).
    ///
    /// Returns [`Duration::ZERO`] when no samples are recorded.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]` or not finite.
    pub fn percentile(&mut self, p: f64) -> Duration {
        assert!(
            p.is_finite() && (0.0..=100.0).contains(&p),
            "percentile must be in [0, 100]"
        );
        if self.is_empty() {
            return Duration::ZERO;
        }
        if self.is_folded() {
            let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
            let rank = rank.clamp(1, self.count);
            let mut cum = 0u64;
            for (idx, &c) in self.bins.iter().enumerate() {
                cum += c;
                if cum >= rank {
                    let ns = bin_lower(idx).clamp(self.min_ns, self.max_ns);
                    return Duration::from_nanos(ns);
                }
            }
            return Duration::from_nanos(self.max_ns);
        }
        self.sort();
        let n = self.samples_ns.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        let idx = rank.clamp(1, n) - 1;
        Duration::from_nanos(self.samples_ns[idx])
    }

    /// Median latency.
    pub fn p50(&mut self) -> Duration {
        self.percentile(50.0)
    }

    /// 95th-percentile latency.
    pub fn p95(&mut self) -> Duration {
        self.percentile(95.0)
    }

    /// 99th-percentile tail latency — the paper's SLA metric.
    pub fn p99(&mut self) -> Duration {
        self.percentile(99.0)
    }

    /// Arithmetic mean latency, or zero if empty.
    ///
    /// Exact in both representations: the fold keeps the true sum.
    pub fn mean(&self) -> Duration {
        if self.is_folded() {
            if self.count == 0 {
                return Duration::ZERO;
            }
            return Duration::from_nanos((self.sum_ns / self.count as u128) as u64);
        }
        if self.samples_ns.is_empty() {
            return Duration::ZERO;
        }
        let sum: u128 = self.samples_ns.iter().map(|&x| x as u128).sum();
        Duration::from_nanos((sum / self.samples_ns.len() as u128) as u64)
    }

    /// Maximum observed latency, or zero if empty.
    ///
    /// Exact in both representations: the fold keeps the true maximum.
    pub fn max(&self) -> Duration {
        if self.is_folded() {
            if self.count == 0 {
                return Duration::ZERO;
            }
            return Duration::from_nanos(self.max_ns);
        }
        self.samples_ns
            .iter()
            .max()
            .map(|&ns| Duration::from_nanos(ns))
            .unwrap_or(Duration::ZERO)
    }

    /// Merges another collector's samples into this one.
    ///
    /// Stays in exact mode when both sides are exact and the combined
    /// count fits under the fold threshold; otherwise the result is
    /// folded. Folded merges are commutative and associative, so shard
    /// merge order cannot change any reported statistic.
    pub fn merge(&mut self, other: &LatencyStats) {
        if !self.is_folded()
            && !other.is_folded()
            && self.samples_ns.len() + other.samples_ns.len() <= FOLD_THRESHOLD
        {
            self.samples_ns.extend_from_slice(&other.samples_ns);
            self.sorted = false;
            return;
        }
        self.fold();
        if other.is_folded() {
            for (b, &c) in self.bins.iter_mut().zip(other.bins.iter()) {
                *b += c;
            }
            if other.count > 0 {
                if self.count == 0 {
                    self.min_ns = other.min_ns;
                    self.max_ns = other.max_ns;
                } else {
                    self.min_ns = self.min_ns.min(other.min_ns);
                    self.max_ns = self.max_ns.max(other.max_ns);
                }
                self.count += other.count;
                self.sum_ns += other.sum_ns;
            }
        } else {
            for &ns in &other.samples_ns {
                self.fold_one(ns);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(n: u64) -> LatencyStats {
        let mut s = LatencyStats::new();
        for ms in 1..=n {
            s.record(Duration::from_millis(ms));
        }
        s
    }

    #[test]
    fn empty_stats_return_zero() {
        let mut s = LatencyStats::new();
        assert_eq!(s.p99(), Duration::ZERO);
        assert_eq!(s.mean(), Duration::ZERO);
        assert_eq!(s.max(), Duration::ZERO);
        assert!(s.is_empty());
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut s = LatencyStats::new();
        s.record(Duration::from_millis(7));
        assert_eq!(s.percentile(0.0), Duration::from_millis(7));
        assert_eq!(s.p50(), Duration::from_millis(7));
        assert_eq!(s.p99(), Duration::from_millis(7));
        assert_eq!(s.percentile(100.0), Duration::from_millis(7));
    }

    #[test]
    fn nearest_rank_on_uniform_grid() {
        let mut s = filled(100);
        assert_eq!(s.p50(), Duration::from_millis(50));
        assert_eq!(s.p95(), Duration::from_millis(95));
        assert_eq!(s.p99(), Duration::from_millis(99));
        assert_eq!(s.percentile(100.0), Duration::from_millis(100));
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut s = filled(1000);
        let p50 = s.p50();
        let p95 = s.p95();
        let p99 = s.p99();
        assert!(p50 <= p95);
        assert!(p95 <= p99);
        assert!(p99 <= s.max());
    }

    #[test]
    fn mean_of_uniform_grid() {
        let s = filled(100);
        let mean_ms = s.mean().as_secs_f64() * 1e3;
        assert!((mean_ms - 50.5).abs() < 0.01);
    }

    #[test]
    fn order_of_recording_does_not_matter() {
        let mut a = LatencyStats::new();
        let mut b = LatencyStats::new();
        for ms in [5u64, 1, 9, 3, 7] {
            a.record(Duration::from_millis(ms));
        }
        for ms in [9u64, 7, 5, 3, 1] {
            b.record(Duration::from_millis(ms));
        }
        assert_eq!(a.p50(), b.p50());
        assert_eq!(a.p99(), b.p99());
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = filled(50);
        let b = filled(100);
        a.merge(&b);
        assert_eq!(a.len(), 150);
        assert!(a.p99() >= Duration::from_millis(98));
    }

    #[test]
    fn record_secs_clamps_pathological_input() {
        let mut s = LatencyStats::new();
        s.record_secs(-1.0);
        s.record_secs(f64::NAN);
        assert_eq!(s.max(), Duration::ZERO);
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn out_of_range_percentile_panics() {
        let mut s = filled(10);
        s.percentile(101.0);
    }

    #[test]
    fn bin_index_and_lower_bound_are_consistent() {
        // Every probed value lands in a bin whose [lower, lower+width)
        // range contains it, and bin indices are monotone in the value.
        let mut last_idx = 0usize;
        for shift in 0..60 {
            for off in [0u64, 1, 63, 64, 65] {
                let v = (1u64 << shift).saturating_add(off);
                let idx = bin_index(v);
                let lo = bin_lower(idx);
                let width = LatencyStats::bin_width_at(v);
                assert!(lo <= v, "lower {lo} > value {v}");
                assert!(v < lo + width, "value {v} outside bin [{lo}, {lo}+{width})");
                assert!(idx >= last_idx || v < bin_lower(last_idx));
                last_idx = idx.max(last_idx);
            }
        }
        assert!(bin_index(u64::MAX) < NUM_BINS);
        assert_eq!(bin_index(0), 0);
        assert_eq!(bin_lower(0), 0);
    }

    #[test]
    fn folding_kicks_in_above_the_threshold_and_bounds_memory() {
        let mut s = LatencyStats::new();
        for i in 0..=FOLD_THRESHOLD as u64 {
            s.record(Duration::from_nanos(i * 1000 + 1));
        }
        assert!(s.is_folded());
        assert_eq!(s.len(), FOLD_THRESHOLD + 1);
        assert!(s.samples_ns.is_empty(), "raw samples dropped after fold");
        assert_eq!(s.bins.len(), NUM_BINS);
    }

    #[test]
    fn folded_percentiles_track_exact_within_one_bin_width() {
        // Same stream into an exact collector (merged under threshold
        // stays exact) and a folded one.
        let n = FOLD_THRESHOLD as u64 + 4096;
        let mut folded = LatencyStats::new();
        let mut exact_samples: Vec<u64> = Vec::new();
        let mut z = 0x1234_5678u64;
        for _ in 0..n {
            z = z
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let ns = 1_000 + (z >> 33) % 50_000_000; // 1us..50ms spread
            folded.record(Duration::from_nanos(ns));
            exact_samples.push(ns);
        }
        assert!(folded.is_folded());
        exact_samples.sort_unstable();
        for p in [50.0, 95.0, 99.0, 99.9] {
            let rank = ((p / 100.0) * n as f64).ceil() as usize;
            let exact = exact_samples[rank.clamp(1, n as usize) - 1];
            let approx = folded.percentile(p).as_nanos() as u64;
            let tol = LatencyStats::bin_width_at(exact);
            assert!(
                approx.abs_diff(exact) <= tol,
                "p{p}: approx {approx} vs exact {exact} (tol {tol})"
            );
        }
        let true_max = *exact_samples.last().unwrap();
        let p100 = folded.percentile(100.0).as_nanos() as u64;
        assert!(p100 <= true_max);
        assert!(true_max - p100 <= LatencyStats::bin_width_at(true_max));
        assert_eq!(folded.max().as_nanos() as u64, true_max);
    }

    #[test]
    fn folded_mean_and_max_stay_exact() {
        let mut s = LatencyStats::new();
        let n = FOLD_THRESHOLD as u64 + 10;
        for i in 1..=n {
            s.record(Duration::from_nanos(i));
        }
        assert!(s.is_folded());
        assert_eq!(s.mean(), Duration::from_nanos(n.div_ceil(2)));
        assert_eq!(s.max(), Duration::from_nanos(n));
    }

    #[test]
    fn merge_folds_when_combined_count_crosses_threshold() {
        let mut a = LatencyStats::new();
        let mut b = LatencyStats::new();
        for i in 0..(FOLD_THRESHOLD as u64 / 2 + 10) {
            a.record(Duration::from_nanos(i + 1));
            b.record(Duration::from_nanos(i + 1));
        }
        assert!(!a.is_folded() && !b.is_folded());
        a.merge(&b);
        assert!(a.is_folded());
        assert_eq!(a.len(), 2 * (FOLD_THRESHOLD / 2 + 10));
    }

    #[test]
    fn folded_merge_is_order_independent() {
        let mut mixed: Vec<u64> = (1..=8192u64).map(|i| i * 977 + 13).collect();
        let build = |chunks: &[&[u64]]| {
            let mut acc = LatencyStats::new();
            acc.fold();
            for chunk in chunks {
                let mut part = LatencyStats::new();
                for &v in *chunk {
                    part.record(Duration::from_nanos(v));
                }
                acc.merge(&part);
            }
            acc
        };
        let (lo, hi) = mixed.split_at(4096);
        let mut fwd = build(&[lo, hi]);
        let mut rev = build(&[hi, lo]);
        assert_eq!(fwd, rev);
        assert_eq!(fwd.p99(), rev.p99());
        mixed.reverse();
        let (lo2, hi2) = mixed.split_at(1000);
        let mut shuffled = build(&[lo2, hi2]);
        assert_eq!(fwd.p50(), shuffled.p50());
        assert_eq!(fwd.mean(), shuffled.mean());
    }

    #[test]
    fn with_capacity_never_preallocates_past_the_fold_threshold() {
        let s = LatencyStats::with_capacity(10_000_000);
        assert!(s.samples_ns.capacity() <= FOLD_THRESHOLD + 1);
    }
}
