use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Collects per-query latencies and reports tail statistics.
///
/// The RecPipe paper's SLA metric is the 99th-percentile (p99) latency
/// over tens of thousands of simulated queries; this type is the sink the
/// queueing simulator drains into.
///
/// Percentiles use the *nearest-rank* method on the sorted sample, which
/// is exact (no interpolation) and monotone in the requested rank.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use recpipe_metrics::LatencyStats;
///
/// let mut stats = LatencyStats::new();
/// for ms in 1..=100 {
///     stats.record(Duration::from_millis(ms));
/// }
/// assert_eq!(stats.p99(), Duration::from_millis(99));
/// assert_eq!(stats.p50(), Duration::from_millis(50));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    samples_ns: Vec<u64>,
    sorted: bool,
}

impl LatencyStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty collector with capacity for `n` samples.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            samples_ns: Vec::with_capacity(n),
            sorted: true,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        self.samples_ns.push(latency.as_nanos() as u64);
        self.sorted = false;
    }

    /// Records a latency expressed in seconds.
    ///
    /// Negative or non-finite values are clamped to zero.
    pub fn record_secs(&mut self, seconds: f64) {
        let s = if seconds.is_finite() {
            seconds.max(0.0)
        } else {
            0.0
        };
        self.record(Duration::from_secs_f64(s));
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples_ns.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_ns.is_empty()
    }

    fn sort(&mut self) {
        if !self.sorted {
            self.samples_ns.sort_unstable();
            self.sorted = true;
        }
    }

    /// Latency at percentile `p` (in `[0, 100]`) by nearest rank.
    ///
    /// Returns [`Duration::ZERO`] when no samples are recorded.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]` or not finite.
    pub fn percentile(&mut self, p: f64) -> Duration {
        assert!(
            p.is_finite() && (0.0..=100.0).contains(&p),
            "percentile must be in [0, 100]"
        );
        if self.samples_ns.is_empty() {
            return Duration::ZERO;
        }
        self.sort();
        let n = self.samples_ns.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        let idx = rank.clamp(1, n) - 1;
        Duration::from_nanos(self.samples_ns[idx])
    }

    /// Median latency.
    pub fn p50(&mut self) -> Duration {
        self.percentile(50.0)
    }

    /// 95th-percentile latency.
    pub fn p95(&mut self) -> Duration {
        self.percentile(95.0)
    }

    /// 99th-percentile tail latency — the paper's SLA metric.
    pub fn p99(&mut self) -> Duration {
        self.percentile(99.0)
    }

    /// Arithmetic mean latency, or zero if empty.
    pub fn mean(&self) -> Duration {
        if self.samples_ns.is_empty() {
            return Duration::ZERO;
        }
        let sum: u128 = self.samples_ns.iter().map(|&x| x as u128).sum();
        Duration::from_nanos((sum / self.samples_ns.len() as u128) as u64)
    }

    /// Maximum observed latency, or zero if empty.
    pub fn max(&self) -> Duration {
        self.samples_ns
            .iter()
            .max()
            .map(|&ns| Duration::from_nanos(ns))
            .unwrap_or(Duration::ZERO)
    }

    /// Merges another collector's samples into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.samples_ns.extend_from_slice(&other.samples_ns);
        self.sorted = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(n: u64) -> LatencyStats {
        let mut s = LatencyStats::new();
        for ms in 1..=n {
            s.record(Duration::from_millis(ms));
        }
        s
    }

    #[test]
    fn empty_stats_return_zero() {
        let mut s = LatencyStats::new();
        assert_eq!(s.p99(), Duration::ZERO);
        assert_eq!(s.mean(), Duration::ZERO);
        assert_eq!(s.max(), Duration::ZERO);
        assert!(s.is_empty());
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut s = LatencyStats::new();
        s.record(Duration::from_millis(7));
        assert_eq!(s.percentile(0.0), Duration::from_millis(7));
        assert_eq!(s.p50(), Duration::from_millis(7));
        assert_eq!(s.p99(), Duration::from_millis(7));
        assert_eq!(s.percentile(100.0), Duration::from_millis(7));
    }

    #[test]
    fn nearest_rank_on_uniform_grid() {
        let mut s = filled(100);
        assert_eq!(s.p50(), Duration::from_millis(50));
        assert_eq!(s.p95(), Duration::from_millis(95));
        assert_eq!(s.p99(), Duration::from_millis(99));
        assert_eq!(s.percentile(100.0), Duration::from_millis(100));
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut s = filled(1000);
        let p50 = s.p50();
        let p95 = s.p95();
        let p99 = s.p99();
        assert!(p50 <= p95);
        assert!(p95 <= p99);
        assert!(p99 <= s.max());
    }

    #[test]
    fn mean_of_uniform_grid() {
        let s = filled(100);
        let mean_ms = s.mean().as_secs_f64() * 1e3;
        assert!((mean_ms - 50.5).abs() < 0.01);
    }

    #[test]
    fn order_of_recording_does_not_matter() {
        let mut a = LatencyStats::new();
        let mut b = LatencyStats::new();
        for ms in [5u64, 1, 9, 3, 7] {
            a.record(Duration::from_millis(ms));
        }
        for ms in [9u64, 7, 5, 3, 1] {
            b.record(Duration::from_millis(ms));
        }
        assert_eq!(a.p50(), b.p50());
        assert_eq!(a.p99(), b.p99());
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = filled(50);
        let b = filled(100);
        a.merge(&b);
        assert_eq!(a.len(), 150);
        assert!(a.p99() >= Duration::from_millis(98));
    }

    #[test]
    fn record_secs_clamps_pathological_input() {
        let mut s = LatencyStats::new();
        s.record_secs(-1.0);
        s.record_secs(f64::NAN);
        assert_eq!(s.max(), Duration::ZERO);
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn out_of_range_percentile_panics() {
        let mut s = filled(10);
        s.percentile(101.0);
    }
}
