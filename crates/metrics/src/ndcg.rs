//! Discounted cumulative gain and its normalized form.
//!
//! Following Järvelin & Kekäläinen (and the RecPipe paper, Section 2.2),
//! for a ranked list of `N` items with gains `rel_i`:
//!
//! ```text
//! DCG = Σ_{i=1..N} rel_i / log2(i + 1)
//! NDCG = DCG(measured ordering) / DCG(ideal ordering)
//! ```
//!
//! The paper reports NDCG of the top **64** items served, scaled to
//! percent (e.g. the Criteo maximum-quality target is NDCG 92.25).

/// Discounted cumulative gain of `gains` listed in ranked order
/// (position 0 is the top-ranked item).
///
/// # Examples
///
/// ```
/// use recpipe_metrics::dcg;
/// // Gain 3 at rank 1 is worth 3/log2(2) = 3.
/// assert!((dcg(&[3.0]) - 3.0).abs() < 1e-9);
/// ```
pub fn dcg(gains: &[f64]) -> f64 {
    gains
        .iter()
        .enumerate()
        .map(|(i, &g)| g / ((i + 2) as f64).log2())
        .sum()
}

/// Returns `gains` sorted descending — the ideal ordering used as the
/// NDCG normalizer.
pub fn ideal_sorted(gains: &[f64]) -> Vec<f64> {
    let mut sorted = gains.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    sorted
}

/// Normalized DCG over full lists.
///
/// `ranked` holds the gains of the items in the order the system served
/// them; `ideal` holds the gains of the best-possible ordering (usually
/// [`ideal_sorted`] of the full candidate pool). Returns a value in
/// `[0, 1]`; returns `1.0` when the ideal DCG is zero (nothing to gain,
/// nothing lost).
pub fn ndcg(ranked: &[f64], ideal: &[f64]) -> f64 {
    let ideal_dcg = dcg(ideal);
    if ideal_dcg <= 0.0 {
        return 1.0;
    }
    (dcg(ranked) / ideal_dcg).clamp(0.0, 1.0)
}

/// NDCG of the top `k` positions.
///
/// This is the paper's quality metric with `k = 64`: the measured DCG of
/// the first `k` served items against the DCG of the `k` best candidates.
///
/// # Examples
///
/// ```
/// use recpipe_metrics::ndcg_at_k;
/// let perfect = ndcg_at_k(&[3.0, 2.0, 1.0], &[3.0, 2.0, 1.0], 3);
/// assert!((perfect - 1.0).abs() < 1e-9);
/// ```
pub fn ndcg_at_k(ranked: &[f64], ideal: &[f64], k: usize) -> f64 {
    let rk = ranked.len().min(k);
    let ik = ideal.len().min(k);
    ndcg(&ranked[..rk], &ideal[..ik])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcg_discounts_by_position() {
        // Same gain is worth more at a higher rank.
        let front = dcg(&[1.0, 0.0]);
        let back = dcg(&[0.0, 1.0]);
        assert!(front > back);
    }

    #[test]
    fn dcg_of_empty_is_zero() {
        assert_eq!(dcg(&[]), 0.0);
    }

    #[test]
    fn ndcg_perfect_ranking_is_one() {
        let gains = [5.0, 3.0, 1.0, 0.5];
        let ideal = ideal_sorted(&gains);
        assert!((ndcg(&ideal, &ideal) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_reversed_ranking_is_less_than_one() {
        let ideal = [4.0, 3.0, 2.0, 1.0];
        let reversed = [1.0, 2.0, 3.0, 4.0];
        let q = ndcg(&reversed, &ideal);
        assert!(q < 1.0);
        assert!(q > 0.0);
    }

    #[test]
    fn ndcg_all_zero_gains_is_one() {
        assert_eq!(ndcg(&[0.0, 0.0], &[0.0, 0.0]), 1.0);
    }

    #[test]
    fn ndcg_at_k_ignores_tail() {
        let ideal = [3.0, 2.0, 1.0, 0.0];
        // Top-2 correct, tail scrambled: NDCG@2 is perfect.
        let ranked = [3.0, 2.0, 0.0, 1.0];
        assert!((ndcg_at_k(&ranked, &ideal, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_at_k_with_k_larger_than_lists() {
        let q = ndcg_at_k(&[1.0], &[1.0], 100);
        assert!((q - 1.0).abs() < 1e-12);
    }

    #[test]
    fn missing_good_item_lowers_ndcg() {
        // Serving mediocre items when a great one existed hurts quality —
        // this is exactly why ranking more candidates raises quality.
        let ideal = [10.0, 1.0, 1.0];
        let served_without_best = [1.0, 1.0, 0.0];
        assert!(ndcg_at_k(&served_without_best, &ideal, 3) < 0.5);
    }

    #[test]
    fn ideal_sorted_is_descending() {
        let s = ideal_sorted(&[1.0, 3.0, 2.0]);
        assert_eq!(s, vec![3.0, 2.0, 1.0]);
    }
}
