//! Property-based tests for metric invariants.

use proptest::prelude::*;
use recpipe_metrics::{
    auc, dcg, ideal_sorted, ndcg, ndcg_at_k, pareto_front, Dominance, LatencyStats, ParetoPoint,
};
use std::time::Duration;

proptest! {
    #[test]
    fn ndcg_is_bounded(gains in proptest::collection::vec(0.0f64..100.0, 1..64)) {
        let ideal = ideal_sorted(&gains);
        let q = ndcg(&gains, &ideal);
        prop_assert!((0.0..=1.0).contains(&q));
    }

    #[test]
    fn ndcg_of_ideal_is_one(gains in proptest::collection::vec(0.0f64..100.0, 1..64)) {
        let ideal = ideal_sorted(&gains);
        let q = ndcg(&ideal, &ideal);
        prop_assert!((q - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dcg_is_monotone_in_gains(
        gains in proptest::collection::vec(0.0f64..10.0, 1..32),
        bump in 0.0f64..5.0,
        idx in 0usize..32,
    ) {
        let idx = idx % gains.len();
        let mut bumped = gains.clone();
        bumped[idx] += bump;
        prop_assert!(dcg(&bumped) >= dcg(&gains) - 1e-12);
    }

    #[test]
    fn ndcg_at_k_truncation_consistency(
        gains in proptest::collection::vec(0.0f64..10.0, 8..40),
        k in 1usize..8,
    ) {
        // NDCG@k on full lists equals NDCG over explicitly truncated lists.
        let ideal = ideal_sorted(&gains);
        let direct = ndcg_at_k(&gains, &ideal, k);
        let truncated = ndcg(&gains[..k], &ideal[..k]);
        prop_assert!((direct - truncated).abs() < 1e-12);
    }

    #[test]
    fn auc_stays_in_unit_interval(
        scores in proptest::collection::vec(0.0f64..1.0, 2..64),
        labels in proptest::collection::vec(any::<bool>(), 2..64),
    ) {
        let n = scores.len().min(labels.len());
        let a = auc(&scores[..n], &labels[..n]);
        prop_assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn percentiles_never_decrease_with_rank(
        samples in proptest::collection::vec(1u64..1_000_000, 1..256),
        p_lo in 0.0f64..50.0,
        p_hi in 50.0f64..100.0,
    ) {
        let mut stats = LatencyStats::new();
        for &ns in &samples {
            stats.record(Duration::from_nanos(ns));
        }
        prop_assert!(stats.percentile(p_lo) <= stats.percentile(p_hi));
    }

    #[test]
    fn pareto_front_is_subset_and_nonempty(
        objectives in proptest::collection::vec((0.0f64..10.0, 0.0f64..1.0), 1..40),
    ) {
        let points: Vec<ParetoPoint<usize>> = objectives
            .iter()
            .enumerate()
            .map(|(i, &(lat, q))| ParetoPoint::new(i, vec![lat, q]))
            .collect();
        let n = points.len();
        let front = pareto_front(points, &[Dominance::Minimize, Dominance::Maximize]);
        prop_assert!(!front.is_empty());
        prop_assert!(front.len() <= n);
        // No point on the front dominates another point on the front.
        for a in &front {
            for b in &front {
                let strictly_better_everywhere = a.objectives[0] < b.objectives[0]
                    && a.objectives[1] > b.objectives[1];
                prop_assert!(!(strictly_better_everywhere && a.payload != b.payload)
                    || front.len() == 1,
                    "front member {} dominated by {}", b.payload, a.payload);
            }
        }
    }
}
