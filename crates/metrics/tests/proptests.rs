//! Property-based tests for metric invariants.

use proptest::prelude::*;
use recpipe_metrics::{
    auc, dcg, ideal_sorted, ndcg, ndcg_at_k, pareto_front, Dominance, LatencyStats, ParetoPoint,
};
use std::time::Duration;

proptest! {
    #[test]
    fn ndcg_is_bounded(gains in proptest::collection::vec(0.0f64..100.0, 1..64)) {
        let ideal = ideal_sorted(&gains);
        let q = ndcg(&gains, &ideal);
        prop_assert!((0.0..=1.0).contains(&q));
    }

    #[test]
    fn ndcg_of_ideal_is_one(gains in proptest::collection::vec(0.0f64..100.0, 1..64)) {
        let ideal = ideal_sorted(&gains);
        let q = ndcg(&ideal, &ideal);
        prop_assert!((q - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dcg_is_monotone_in_gains(
        gains in proptest::collection::vec(0.0f64..10.0, 1..32),
        bump in 0.0f64..5.0,
        idx in 0usize..32,
    ) {
        let idx = idx % gains.len();
        let mut bumped = gains.clone();
        bumped[idx] += bump;
        prop_assert!(dcg(&bumped) >= dcg(&gains) - 1e-12);
    }

    #[test]
    fn ndcg_at_k_truncation_consistency(
        gains in proptest::collection::vec(0.0f64..10.0, 8..40),
        k in 1usize..8,
    ) {
        // NDCG@k on full lists equals NDCG over explicitly truncated lists.
        let ideal = ideal_sorted(&gains);
        let direct = ndcg_at_k(&gains, &ideal, k);
        let truncated = ndcg(&gains[..k], &ideal[..k]);
        prop_assert!((direct - truncated).abs() < 1e-12);
    }

    #[test]
    fn auc_stays_in_unit_interval(
        scores in proptest::collection::vec(0.0f64..1.0, 2..64),
        labels in proptest::collection::vec(any::<bool>(), 2..64),
    ) {
        let n = scores.len().min(labels.len());
        let a = auc(&scores[..n], &labels[..n]);
        prop_assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn percentiles_never_decrease_with_rank(
        samples in proptest::collection::vec(1u64..1_000_000, 1..256),
        p_lo in 0.0f64..50.0,
        p_hi in 50.0f64..100.0,
    ) {
        let mut stats = LatencyStats::new();
        for &ns in &samples {
            stats.record(Duration::from_nanos(ns));
        }
        prop_assert!(stats.percentile(p_lo) <= stats.percentile(p_hi));
    }

    #[test]
    fn below_the_fold_threshold_percentiles_are_exact(
        samples in proptest::collection::vec(1u64..1_000_000_000, 1..512),
        p in 0.0f64..100.0,
    ) {
        // Small collectors never fold, and their percentiles equal the
        // nearest-rank value computed from the sorted sample directly —
        // the frozen pre-histogram behavior, bit for bit.
        let mut stats = LatencyStats::new();
        for &ns in &samples {
            stats.record(Duration::from_nanos(ns));
        }
        prop_assert!(!stats.is_folded());
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        let exact = sorted[rank.clamp(1, sorted.len()) - 1];
        prop_assert_eq!(stats.percentile(p).as_nanos() as u64, exact);
    }

    #[test]
    fn pareto_front_is_subset_and_nonempty(
        objectives in proptest::collection::vec((0.0f64..10.0, 0.0f64..1.0), 1..40),
    ) {
        let points: Vec<ParetoPoint<usize>> = objectives
            .iter()
            .enumerate()
            .map(|(i, &(lat, q))| ParetoPoint::new(i, vec![lat, q]))
            .collect();
        let n = points.len();
        let front = pareto_front(points, &[Dominance::Minimize, Dominance::Maximize]);
        prop_assert!(!front.is_empty());
        prop_assert!(front.len() <= n);
        // No point on the front dominates another point on the front.
        for a in &front {
            for b in &front {
                let strictly_better_everywhere = a.objectives[0] < b.objectives[0]
                    && a.objectives[1] > b.objectives[1];
                prop_assert!(!(strictly_better_everywhere && a.payload != b.payload)
                    || front.len() == 1,
                    "front member {} dominated by {}", b.payload, a.payload);
            }
        }
    }
}

proptest! {
    // Each case records >2^17 samples, so run fewer of them.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn folded_percentiles_stay_within_one_bin_width_of_exact(
        seed in 1u64..1_000_000,
        spread_shift in 12u32..40,
        extra in 0usize..4096,
    ) {
        // Past the fold threshold the collector answers from the
        // log-spaced histogram. Whatever the sample magnitude range
        // (here spanning ~4 ns to ~10^12 ns across cases), p50/p95/p99
        // land within one bin width of the true nearest-rank value, and
        // p100 never exceeds the true maximum.
        let n = LatencyStats::fold_threshold() + 1 + extra;
        let mut folded = LatencyStats::new();
        let mut exact: Vec<u64> = Vec::with_capacity(n);
        let mut z = seed;
        for _ in 0..n {
            z = z
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let ns = 1 + ((z >> 16) & ((1u64 << spread_shift) - 1));
            folded.record(Duration::from_nanos(ns));
            exact.push(ns);
        }
        prop_assert!(folded.is_folded());
        exact.sort_unstable();
        for p in [50.0, 95.0, 99.0] {
            let rank = ((p / 100.0) * n as f64).ceil() as usize;
            let truth = exact[rank.clamp(1, n) - 1];
            let approx = folded.percentile(p).as_nanos() as u64;
            let tol = LatencyStats::bin_width_at(truth);
            prop_assert!(
                approx.abs_diff(truth) <= tol,
                "p{}: approx {} vs exact {} (tol {})", p, approx, truth, tol
            );
        }
        let true_max = *exact.last().unwrap();
        let p100 = folded.percentile(100.0).as_nanos() as u64;
        prop_assert!(p100 <= true_max);
        prop_assert!(true_max - p100 <= LatencyStats::bin_width_at(true_max));
    }
}
