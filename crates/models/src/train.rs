use recpipe_data::{ClickGenerator, ClickSample, DatasetSpec};
use serde::{Deserialize, Serialize};

use crate::Dlrm;

/// Outcome of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean BCE loss per epoch, in order.
    pub epoch_losses: Vec<f64>,
    /// Misclassification rate on the held-out set after training.
    pub holdout_error: f64,
    /// Number of training samples seen per epoch.
    pub samples_per_epoch: usize,
}

impl TrainReport {
    /// Whether the loss decreased from the first to the last epoch.
    pub fn improved(&self) -> bool {
        match (self.epoch_losses.first(), self.epoch_losses.last()) {
            (Some(first), Some(last)) => last < first,
            _ => false,
        }
    }
}

/// Trains a [`Dlrm`] on synthetic click data and evaluates holdout error —
/// the machinery behind the Figure 2 hyperparameter sweep.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use recpipe_data::{DatasetKind, DatasetSpec};
/// use recpipe_models::{Dlrm, ModelConfig, ModelKind, Trainer};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let cfg = ModelConfig::for_kind(ModelKind::RmSmall, DatasetKind::CriteoKaggle);
/// let mut model = Dlrm::new(&cfg, 200, &mut rng);
///
/// let spec = DatasetSpec::criteo_kaggle();
/// let trainer = Trainer::new(&spec, 200).samples_per_epoch(500).epochs(2);
/// let report = trainer.run(&mut model, 7);
/// assert_eq!(report.epoch_losses.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Trainer {
    spec: DatasetSpec,
    vocab: u32,
    epochs: usize,
    samples_per_epoch: usize,
    holdout_samples: usize,
    learning_rate: f32,
}

impl Trainer {
    /// Creates a trainer for the given dataset spec; `vocab` must match
    /// the model's embedding-table row count.
    pub fn new(spec: &DatasetSpec, vocab: u32) -> Self {
        Self {
            spec: spec.clone(),
            vocab,
            epochs: 3,
            samples_per_epoch: 2000,
            holdout_samples: 1000,
            learning_rate: 0.05,
        }
    }

    /// Sets the number of epochs.
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Sets the number of samples per epoch.
    pub fn samples_per_epoch(mut self, n: usize) -> Self {
        self.samples_per_epoch = n;
        self
    }

    /// Sets the holdout evaluation size.
    pub fn holdout_samples(mut self, n: usize) -> Self {
        self.holdout_samples = n;
        self
    }

    /// Sets the SGD learning rate.
    pub fn learning_rate(mut self, lr: f32) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Runs training and holdout evaluation with the given seed.
    pub fn run(&self, model: &mut Dlrm, seed: u64) -> TrainReport {
        let mut gen = ClickGenerator::new(&self.spec, self.vocab, seed);
        let train: Vec<ClickSample> = gen.take_samples(self.samples_per_epoch);
        let holdout: Vec<ClickSample> = gen.take_samples(self.holdout_samples);

        let mut epoch_losses = Vec::with_capacity(self.epochs);
        for _ in 0..self.epochs {
            let mut total = 0.0f64;
            for s in &train {
                total +=
                    model.train_step(&s.dense, &s.sparse, s.clicked, self.learning_rate) as f64;
            }
            epoch_losses.push(total / train.len().max(1) as f64);
        }

        let mut wrong = 0usize;
        for s in &holdout {
            let p = model.predict(&s.dense, &s.sparse);
            let predicted = p > 0.5;
            if predicted != s.clicked {
                wrong += 1;
            }
        }
        TrainReport {
            epoch_losses,
            holdout_error: wrong as f64 / holdout.len().max(1) as f64,
            samples_per_epoch: train.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelConfig, ModelKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use recpipe_data::DatasetKind;

    fn quick_report(kind: ModelKind, seed: u64) -> TrainReport {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = ModelConfig::for_kind(kind, DatasetKind::CriteoKaggle);
        let mut model = Dlrm::new(&cfg, 300, &mut rng);
        let spec = DatasetSpec::criteo_kaggle();
        Trainer::new(&spec, 300)
            .epochs(3)
            .samples_per_epoch(1500)
            .holdout_samples(600)
            .run(&mut model, seed)
    }

    #[test]
    fn training_reduces_loss() {
        let report = quick_report(ModelKind::RmSmall, 1);
        assert!(report.improved(), "losses: {:?}", report.epoch_losses);
    }

    #[test]
    fn holdout_error_beats_chance() {
        // The latent-factor data has learnable structure: a trained model
        // must beat the ~50% base rate comfortably.
        let report = quick_report(ModelKind::RmSmall, 2);
        assert!(
            report.holdout_error < 0.45,
            "holdout error {}",
            report.holdout_error
        );
    }

    #[test]
    fn report_counts_samples() {
        let report = quick_report(ModelKind::RmSmall, 3);
        assert_eq!(report.samples_per_epoch, 1500);
        assert_eq!(report.epoch_losses.len(), 3);
    }

    #[test]
    fn empty_report_is_not_improved() {
        let report = TrainReport {
            epoch_losses: vec![],
            holdout_error: 0.0,
            samples_per_epoch: 0,
        };
        assert!(!report.improved());
    }
}
