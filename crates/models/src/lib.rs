//! Recommendation models for RecPipe: DLRM, neural matrix factorization,
//! and the Pareto-optimal model zoo of the paper's Table 1.
//!
//! Two parallel representations serve different purposes:
//!
//! * **Functional models** ([`Dlrm`], [`NeuMf`], [`Mlp`]) — real forward
//!   passes and SGD training with manual backpropagation, used to
//!   demonstrate the accuracy-vs-complexity tradeoff (Figure 2) on the
//!   synthetic click data.
//! * **Cost models** ([`ModelConfig`], [`ModelCost`]) — FLOPs, embedding
//!   lookups, and byte footprints used by the hardware simulators. These
//!   reproduce Table 1 exactly: RMsmall/RMmed/RMlarge at 1.1K/1.9K/181K
//!   FLOPs and 1/4/8 GB.
//!
//! The calibrated [`AccuracyModel`] maps model complexity to
//! CTR-prediction error and to the score-noise level used by the
//! statistical quality evaluator in `recpipe-core`.
//!
//! # Examples
//!
//! ```
//! use recpipe_models::{ModelKind, ModelConfig};
//! use recpipe_data::DatasetKind;
//!
//! let cfg = ModelConfig::for_kind(ModelKind::RmLarge, DatasetKind::CriteoKaggle);
//! let cost = cfg.cost();
//! assert!(cost.flops_per_item > 100_000); // Table 1: 180K FLOPs
//! ```

mod accuracy;
mod cost;
mod dlrm;
mod embedding;
mod mlp;
mod neumf;
mod train;
mod zoo;

pub use accuracy::{error_percent_from_flops, AccuracyModel};
pub use cost::ModelCost;
pub use dlrm::Dlrm;
pub use embedding::{EmbeddingTable, VirtualTable};
pub use mlp::{DenseLayer, Mlp};
pub use neumf::NeuMf;
pub use train::{TrainReport, Trainer};
pub use zoo::{ArchKind, ModelConfig, ModelKind};
