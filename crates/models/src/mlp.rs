use rand::Rng;
use recpipe_tensor::{add_bias_inplace, Activation, Initializer, Matrix};
use serde::{Deserialize, Serialize};

/// One fully-connected layer: `Y = act(X W + b)`.
///
/// Weights are `in_dim x out_dim` so activations stay row-major batches
/// (`batch x dim`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseLayer {
    weights: Matrix,
    bias: Vec<f32>,
    activation: Activation,
}

impl DenseLayer {
    /// Creates a layer with He-uniform weights and zero bias.
    pub fn new<R: Rng + ?Sized>(
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        Self {
            weights: Initializer::HeUniform.init(rng, in_dim, out_dim),
            bias: vec![0.0; out_dim],
            activation,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weights.cols()
    }

    /// The layer's nonlinearity.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Forward pass for a batch (`batch x in_dim`) → (`batch x out_dim`).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_dim`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = x
            .matmul(&self.weights)
            .expect("layer input dimension mismatch");
        add_bias_inplace(&mut y, &self.bias);
        self.activation.apply_inplace(&mut y);
        y
    }

    /// Backward pass.
    ///
    /// Given the layer input `x`, its output `y`, and the gradient of the
    /// loss with respect to `y`, applies an SGD step to the weights/bias
    /// and returns the gradient with respect to `x`.
    pub fn backward_sgd(&mut self, x: &Matrix, y: &Matrix, grad_y: &Matrix, lr: f32) -> Matrix {
        // dZ = dY ⊙ act'(Y), where Z is the pre-activation.
        let mut grad_z = grad_y.clone();
        for (gz, &out) in grad_z.as_mut_slice().iter_mut().zip(y.as_slice().iter()) {
            *gz *= self.activation.grad_from_output(out);
        }
        // dW = Xᵀ dZ ; db = column sums of dZ ; dX = dZ Wᵀ.
        let grad_w = x
            .transpose()
            .matmul(&grad_z)
            .expect("backward shape mismatch");
        let grad_x = grad_z
            .matmul(&self.weights.transpose())
            .expect("backward shape mismatch");

        for r in 0..self.weights.rows() {
            for c in 0..self.weights.cols() {
                let w = self.weights.get(r, c) - lr * grad_w.get(r, c);
                self.weights.set(r, c, w);
            }
        }
        for c in 0..self.bias.len() {
            let db: f32 = (0..grad_z.rows()).map(|r| grad_z.get(r, c)).sum();
            self.bias[c] -= lr * db;
        }
        grad_x
    }

    /// Number of multiply-accumulate operations per input row.
    pub fn macs_per_row(&self) -> u64 {
        (self.in_dim() as u64) * (self.out_dim() as u64)
    }

    /// Parameter count (weights + bias).
    pub fn num_params(&self) -> u64 {
        self.macs_per_row() + self.out_dim() as u64
    }
}

/// A multi-layer perceptron: the building block of both DLRM towers and
/// the NeuMF predictor.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use recpipe_models::Mlp;
/// use recpipe_tensor::{Activation, Matrix};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// // The paper's RMsmall bottom tower: 13-64-4.
/// let mlp = Mlp::new(&[13, 64, 4], Activation::Relu, Activation::Linear, &mut rng);
/// let x = Matrix::zeros(2, 13);
/// assert_eq!(mlp.forward(&x).shape(), (2, 4));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<DenseLayer>,
}

impl Mlp {
    /// Creates an MLP from a full dimension chain (`dims[0]` is the input
    /// size). Hidden layers use `hidden`, the final layer uses `output`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dims are given.
    pub fn new<R: Rng + ?Sized>(
        dims: &[usize],
        hidden: Activation,
        output: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output dims"
        );
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let act = if i + 2 == dims.len() { output } else { hidden };
                DenseLayer::new(w[0], w[1], act, rng)
            })
            .collect();
        Self { layers }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Borrows the layers.
    pub fn layers(&self) -> &[DenseLayer] {
        &self.layers
    }

    /// Forward pass for a batch.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for layer in &self.layers {
            h = layer.forward(&h);
        }
        h
    }

    /// Forward pass that also returns every intermediate activation
    /// (`outputs[0]` is the input, `outputs[i+1]` the output of layer `i`),
    /// as needed by [`backward_sgd`](Self::backward_sgd).
    pub fn forward_cached(&self, x: &Matrix) -> Vec<Matrix> {
        let mut outputs = Vec::with_capacity(self.layers.len() + 1);
        outputs.push(x.clone());
        for layer in &self.layers {
            let next = layer.forward(outputs.last().expect("non-empty"));
            outputs.push(next);
        }
        outputs
    }

    /// Backpropagates `grad_out` through the network, applying SGD updates,
    /// and returns the gradient with respect to the input.
    ///
    /// `cached` must come from [`forward_cached`](Self::forward_cached) on
    /// the same input.
    pub fn backward_sgd(&mut self, cached: &[Matrix], grad_out: &Matrix, lr: f32) -> Matrix {
        assert_eq!(
            cached.len(),
            self.layers.len() + 1,
            "cached activations do not match layer count"
        );
        let mut grad = grad_out.clone();
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            grad = layer.backward_sgd(&cached[i], &cached[i + 1], &grad, lr);
        }
        grad
    }

    /// Multiply-accumulates per input row across all layers.
    pub fn macs_per_row(&self) -> u64 {
        self.layers.iter().map(DenseLayer::macs_per_row).sum()
    }

    /// Total parameter count.
    pub fn num_params(&self) -> u64 {
        self.layers.iter().map(DenseLayer::num_params).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn forward_shape_follows_dims() {
        let mlp = Mlp::new(
            &[13, 64, 4],
            Activation::Relu,
            Activation::Linear,
            &mut rng(),
        );
        let x = Matrix::zeros(3, 13);
        assert_eq!(mlp.forward(&x).shape(), (3, 4));
        assert_eq!(mlp.in_dim(), 13);
        assert_eq!(mlp.out_dim(), 4);
    }

    #[test]
    fn macs_match_table1_small_bottom() {
        // 13-64-4 → 13*64 + 64*4 = 1088 MACs, the dominant term of
        // Table 1's 1.1K FLOPs for RMsmall.
        let mlp = Mlp::new(
            &[13, 64, 4],
            Activation::Relu,
            Activation::Linear,
            &mut rng(),
        );
        assert_eq!(mlp.macs_per_row(), 13 * 64 + 64 * 4);
    }

    #[test]
    fn sigmoid_output_is_probability() {
        let mlp = Mlp::new(
            &[4, 8, 1],
            Activation::Relu,
            Activation::Sigmoid,
            &mut rng(),
        );
        let x = Matrix::filled(5, 4, 0.3);
        let y = mlp.forward(&x);
        for r in 0..5 {
            let p = y.get(r, 0);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn forward_cached_last_equals_forward() {
        let mlp = Mlp::new(
            &[6, 12, 3],
            Activation::Relu,
            Activation::Linear,
            &mut rng(),
        );
        let x = Matrix::filled(2, 6, 0.5);
        let cached = mlp.forward_cached(&x);
        assert_eq!(cached.len(), 3);
        assert_eq!(cached.last().unwrap(), &mlp.forward(&x));
    }

    #[test]
    fn sgd_reduces_regression_loss() {
        // Fit y = mean(x) with a tiny MLP; loss must drop substantially.
        let mut mlp = Mlp::new(
            &[4, 16, 1],
            Activation::Relu,
            Activation::Linear,
            &mut rng(),
        );
        let mut data_rng = StdRng::seed_from_u64(7);
        let loss = |mlp: &Mlp, xs: &Matrix, ys: &[f32]| -> f32 {
            let pred = mlp.forward(xs);
            ys.iter()
                .enumerate()
                .map(|(i, &t)| (pred.get(i, 0) - t).powi(2))
                .sum::<f32>()
                / ys.len() as f32
        };

        let xs = Initializer::Uniform { scale: 1.0 }.init(&mut data_rng, 64, 4);
        let ys: Vec<f32> = (0..64)
            .map(|r| xs.row(r).iter().sum::<f32>() / 4.0)
            .collect();

        let initial = loss(&mlp, &xs, &ys);
        for _ in 0..300 {
            let cached = mlp.forward_cached(&xs);
            let pred = cached.last().unwrap();
            let mut grad = Matrix::zeros(64, 1);
            for (i, &target) in ys.iter().enumerate() {
                grad.set(i, 0, 2.0 * (pred.get(i, 0) - target) / 64.0);
            }
            mlp.backward_sgd(&cached, &grad, 0.1);
        }
        let trained = loss(&mlp, &xs, &ys);
        assert!(
            trained < initial * 0.2,
            "loss {initial} -> {trained} did not improve enough"
        );
    }

    #[test]
    fn gradient_matches_finite_difference() {
        // Check dX from backward against numeric differentiation of a
        // scalar loss L = sum(forward(x)).
        let mlp = Mlp::new(&[3, 5, 2], Activation::Relu, Activation::Linear, &mut rng());
        let x = Matrix::from_rows(&[&[0.3, -0.2, 0.9]]);

        let cached = mlp.forward_cached(&x);
        let grad_out = Matrix::filled(1, 2, 1.0); // dL/dY for L = sum(Y)
        let mut probe = mlp.clone();
        let grad_x = probe.backward_sgd(&cached, &grad_out, 0.0); // lr=0: no update

        let f = |m: &Mlp, x: &Matrix| -> f32 { m.forward(x).as_slice().iter().sum() };
        let eps = 1e-3;
        for c in 0..3 {
            let mut xp = x.clone();
            xp.set(0, c, x.get(0, c) + eps);
            let mut xm = x.clone();
            xm.set(0, c, x.get(0, c) - eps);
            let numeric = (f(&mlp, &xp) - f(&mlp, &xm)) / (2.0 * eps);
            let analytic = grad_x.get(0, c);
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "col {c}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn zero_lr_backward_does_not_change_weights() {
        let mut mlp = Mlp::new(
            &[2, 3, 1],
            Activation::Relu,
            Activation::Sigmoid,
            &mut rng(),
        );
        let reference = mlp.clone();
        let x = Matrix::filled(1, 2, 0.7);
        let cached = mlp.forward_cached(&x);
        let grad = Matrix::filled(1, 1, 0.5);
        mlp.backward_sgd(&cached, &grad, 0.0);
        assert_eq!(mlp, reference);
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn single_dim_mlp_panics() {
        Mlp::new(&[4], Activation::Relu, Activation::Linear, &mut rng());
    }
}
