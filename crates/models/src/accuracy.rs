use serde::{Deserialize, Serialize};

use crate::{ModelCost, ModelKind};

/// CTR-prediction error (percent) as a function of pure-MLP FLOPs, fitted
/// to the paper's Table 1.
///
/// The fit `error% = 21.128 + 180 * flops^-0.95` passes through all three
/// published points:
///
/// | model   | MLP FLOPs | paper error | fit    |
/// |---------|-----------|-------------|--------|
/// | RMsmall | ~1.1K     | 21.36%      | 21.36% |
/// | RMmed   | ~2.0K     | 21.26%      | 21.26% |
/// | RMlarge | ~180K     | 21.13%      | 21.13% |
///
/// It also provides the smooth accuracy-vs-complexity curve of the
/// Figure 2 hyperparameter sweep, saturating toward the 21.128% error
/// floor inherent to the dataset's label noise.
///
/// # Examples
///
/// ```
/// let err = recpipe_models::error_percent_from_flops(1_150);
/// assert!((err - 21.36).abs() < 0.05);
/// ```
pub fn error_percent_from_flops(flops: u64) -> f64 {
    const FLOOR: f64 = 21.128;
    const SCALE: f64 = 180.0;
    const EXPONENT: f64 = -0.95;
    FLOOR + SCALE * (flops.max(1) as f64).powf(EXPONENT)
}

/// Calibrated statistical accuracy model linking a model tier to (a) its
/// CTR error and (b) the score-noise level used by the quality evaluator.
///
/// The statistical quality path scores item `i` as
/// `utility_i + Normal(0, sigma)`; larger sigma means a less accurate
/// model. The sigma values below were calibrated (see
/// `recpipe-bench/src/bin/calibrate.rs`) so that single-stage NDCG@64 on
/// the Criteo-like workload reproduces the paper:
///
/// * RMlarge ranking 4096 items → NDCG ≈ 92.25 (the paper's max-quality
///   target),
/// * RMsmall ranking 4096 items → NDCG ≈ 91.3 (Figure 3),
/// * RMsmall→RMlarge two-stage at 4096→256 → NDCG ≈ 92.25 (iso-quality,
///   Section 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyModel {
    sigma_small: f64,
    sigma_med: f64,
    sigma_large: f64,
}

impl AccuracyModel {
    /// Calibrated constants for the Criteo-like workload (see the
    /// `calibrate` binary): single-stage NDCG@64 at 4096 items lands at
    /// 91.3 / 91.8 / 92.25 for the three tiers.
    pub fn criteo() -> Self {
        Self {
            sigma_small: 0.750,
            sigma_med: 0.730,
            sigma_large: 0.705,
        }
    }

    /// Calibrated constants for the MovieLens-like workloads (NeuMF's
    /// smaller corpora leave less headroom between tiers).
    pub fn movielens() -> Self {
        Self {
            sigma_small: 0.68,
            sigma_med: 0.64,
            sigma_large: 0.60,
        }
    }

    /// Score-noise standard deviation for a model tier.
    pub fn sigma(&self, kind: ModelKind) -> f64 {
        match kind {
            ModelKind::RmSmall => self.sigma_small,
            ModelKind::RmMed => self.sigma_med,
            ModelKind::RmLarge => self.sigma_large,
        }
    }

    /// Overrides one tier's sigma (used by the calibration harness).
    pub fn with_sigma(mut self, kind: ModelKind, sigma: f64) -> Self {
        match kind {
            ModelKind::RmSmall => self.sigma_small = sigma,
            ModelKind::RmMed => self.sigma_med = sigma,
            ModelKind::RmLarge => self.sigma_large = sigma,
        }
        self
    }

    /// CTR error percent for a model tier, via the Table 1 fit applied to
    /// the tier's MLP FLOPs.
    pub fn error_percent(&self, cost: &ModelCost) -> f64 {
        error_percent_from_flops(cost.mlp_flops_per_item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelConfig;
    use recpipe_data::DatasetKind;

    #[test]
    fn fit_reproduces_table1_errors() {
        // MLP FLOPs of the three tiers (bottom + top towers).
        let cases = [
            (ModelKind::RmSmall, 21.36),
            (ModelKind::RmMed, 21.26),
            (ModelKind::RmLarge, 21.13),
        ];
        for (kind, expected) in cases {
            let cost = ModelConfig::for_kind(kind, DatasetKind::CriteoKaggle).cost();
            let err = error_percent_from_flops(cost.mlp_flops_per_item);
            assert!(
                (err - expected).abs() < 0.05,
                "{kind}: fit {err} vs paper {expected}"
            );
        }
    }

    #[test]
    fn error_is_monotone_decreasing_in_flops() {
        let mut prev = f64::INFINITY;
        for flops in [500u64, 1_000, 5_000, 50_000, 500_000] {
            let err = error_percent_from_flops(flops);
            assert!(err < prev);
            prev = err;
        }
    }

    #[test]
    fn error_approaches_floor() {
        let err = error_percent_from_flops(100_000_000);
        assert!((err - 21.128).abs() < 0.01);
    }

    #[test]
    fn sigma_ordering_matches_accuracy_ordering() {
        for model in [AccuracyModel::criteo(), AccuracyModel::movielens()] {
            assert!(model.sigma(ModelKind::RmSmall) > model.sigma(ModelKind::RmMed));
            assert!(model.sigma(ModelKind::RmMed) > model.sigma(ModelKind::RmLarge));
        }
    }

    #[test]
    fn with_sigma_overrides_one_tier() {
        let m = AccuracyModel::criteo().with_sigma(ModelKind::RmMed, 0.123);
        assert_eq!(m.sigma(ModelKind::RmMed), 0.123);
        assert_eq!(
            m.sigma(ModelKind::RmSmall),
            AccuracyModel::criteo().sigma(ModelKind::RmSmall)
        );
    }

    #[test]
    fn error_percent_uses_mlp_flops() {
        let m = AccuracyModel::criteo();
        let cost = ModelConfig::for_kind(ModelKind::RmSmall, DatasetKind::CriteoKaggle).cost();
        assert!((m.error_percent(&cost) - 21.36).abs() < 0.05);
    }
}
