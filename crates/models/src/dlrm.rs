use rand::Rng;
use recpipe_tensor::{sigmoid, Activation, Matrix};

use crate::{EmbeddingTable, Mlp, ModelConfig};

/// A functional Deep Learning Recommendation Model (Naumov et al.).
///
/// Architecture (paper Figure 2, top):
///
/// 1. a **bottom MLP** processes the dense features into a `dim`-vector;
/// 2. each sparse feature indexes an **embedding table**, yielding one
///    `dim`-vector per table;
/// 3. **feature interaction** takes pairwise dot products among all
///    vectors (bottom output + embeddings), concatenated after the bottom
///    output and fitted (truncate / zero-pad) to the top MLP's input width;
/// 4. a **top MLP** produces the CTR logit; the model applies a sigmoid.
///
/// Training uses per-batch SGD on binary cross-entropy with manual
/// backpropagation through all four blocks.
///
/// The table row count is a constructor argument (`vocab`) rather than the
/// production-scale `ModelConfig::rows_per_table`, so trained models stay
/// laptop-sized; capacity effects are modeled by
/// [`VirtualTable`](crate::VirtualTable).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use recpipe_data::DatasetKind;
/// use recpipe_models::{Dlrm, ModelConfig, ModelKind};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let cfg = ModelConfig::for_kind(ModelKind::RmSmall, DatasetKind::CriteoKaggle);
/// let model = Dlrm::new(&cfg, 1000, &mut rng);
/// let ctr = model.predict(&[0.0; 13], &vec![3u32; 26]);
/// assert!((0.0..=1.0).contains(&ctr));
/// ```
#[derive(Debug, Clone)]
pub struct Dlrm {
    bottom: Mlp,
    tables: Vec<EmbeddingTable>,
    top: Mlp,
    embedding_dim: usize,
    top_input_dim: usize,
}

impl Dlrm {
    /// Builds a DLRM from a model configuration with `vocab` rows per
    /// embedding table.
    ///
    /// # Panics
    ///
    /// Panics if the config has an empty bottom or top MLP, or `vocab`
    /// is zero.
    pub fn new<R: Rng + ?Sized>(config: &ModelConfig, vocab: usize, rng: &mut R) -> Self {
        assert!(
            config.mlp_bottom.len() >= 2,
            "DLRM requires a bottom MLP (got {:?})",
            config.mlp_bottom
        );
        assert!(config.mlp_top.len() >= 2, "DLRM requires a top MLP");
        let bottom = Mlp::new(
            &config.mlp_bottom,
            Activation::Relu,
            Activation::Linear,
            rng,
        );
        let tables = (0..config.num_tables)
            .map(|_| EmbeddingTable::new(vocab, config.embedding_dim, rng))
            .collect();
        // Top MLP emits a logit; sigmoid is fused into the loss.
        let top = Mlp::new(&config.mlp_top, Activation::Relu, Activation::Linear, rng);
        Self {
            bottom,
            tables,
            top,
            embedding_dim: config.embedding_dim,
            top_input_dim: config.top_input_dim(),
        }
    }

    /// Number of embedding tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Embedding dimensionality.
    pub fn embedding_dim(&self) -> usize {
        self.embedding_dim
    }

    /// Builds the interaction feature vector from the bottom output and
    /// embedding vectors: `[bottom ; pairwise dots]`, truncated or
    /// zero-padded to the top MLP's input width.
    fn interact(&self, bottom_out: &[f32], embeddings: &[Vec<f32>]) -> Vec<f32> {
        let mut features = Vec::with_capacity(self.top_input_dim);
        features.extend_from_slice(bottom_out);
        let mut vectors: Vec<&[f32]> = Vec::with_capacity(embeddings.len() + 1);
        vectors.push(bottom_out);
        for e in embeddings {
            vectors.push(e);
        }
        'outer: for i in 0..vectors.len() {
            for j in (i + 1)..vectors.len() {
                if features.len() >= self.top_input_dim {
                    break 'outer;
                }
                features.push(recpipe_tensor::dot(vectors[i], vectors[j]));
            }
        }
        features.resize(self.top_input_dim, 0.0);
        features
    }

    /// Predicted click-through rate for one item.
    ///
    /// # Panics
    ///
    /// Panics if `dense` or `sparse` lengths disagree with the config, or
    /// a sparse id exceeds the vocabulary.
    pub fn predict(&self, dense: &[f32], sparse: &[u32]) -> f32 {
        assert_eq!(sparse.len(), self.tables.len(), "sparse feature count");
        let bottom_out = self
            .bottom
            .forward(&Matrix::from_vec(1, dense.len(), dense.to_vec()));
        let embeddings: Vec<Vec<f32>> = sparse
            .iter()
            .zip(self.tables.iter())
            .map(|(&id, t)| t.lookup(id as usize).to_vec())
            .collect();
        let features = self.interact(bottom_out.row(0), &embeddings);
        let logit = self
            .top
            .forward(&Matrix::from_vec(1, features.len(), features));
        sigmoid(logit.get(0, 0))
    }

    /// One SGD step on a single labeled example; returns the BCE loss
    /// before the update.
    pub fn train_step(&mut self, dense: &[f32], sparse: &[u32], clicked: bool, lr: f32) -> f32 {
        assert_eq!(sparse.len(), self.tables.len(), "sparse feature count");
        let x = Matrix::from_vec(1, dense.len(), dense.to_vec());
        let bottom_cache = self.bottom.forward_cached(&x);
        let bottom_out = bottom_cache.last().expect("non-empty").row(0).to_vec();

        let embeddings: Vec<Vec<f32>> = sparse
            .iter()
            .zip(self.tables.iter())
            .map(|(&id, t)| t.lookup(id as usize).to_vec())
            .collect();

        let features = self.interact(&bottom_out, &embeddings);
        let fx = Matrix::from_vec(1, features.len(), features.clone());
        let top_cache = self.top.forward_cached(&fx);
        let logit = top_cache.last().expect("non-empty").get(0, 0);
        let p = sigmoid(logit);
        let y = if clicked { 1.0 } else { 0.0 };

        let eps = 1e-7f32;
        let loss = -(y * (p + eps).ln() + (1.0 - y) * (1.0 - p + eps).ln());

        // Fused sigmoid + BCE derivative: dL/dlogit = p - y.
        let grad_logit = Matrix::from_vec(1, 1, vec![p - y]);
        let grad_features = self.top.backward_sgd(&top_cache, &grad_logit, lr);

        // Route the feature gradient back through the interaction.
        let d = self.embedding_dim;
        let mut grad_bottom = vec![0.0f32; bottom_out.len()];
        let mut grad_embeddings = vec![vec![0.0f32; d]; embeddings.len()];

        // First `bottom_out.len()` features are the bottom output itself.
        for (g, &gf) in grad_bottom.iter_mut().zip(grad_features.as_slice().iter()) {
            *g += gf;
        }

        // Remaining features are pairwise dots in deterministic order.
        let num_vectors = embeddings.len() + 1;
        let mut fidx = bottom_out.len();
        'outer: for i in 0..num_vectors {
            for j in (i + 1)..num_vectors {
                if fidx >= self.top_input_dim {
                    break 'outer;
                }
                let g = grad_features.as_slice()[fidx];
                fidx += 1;
                if g == 0.0 {
                    continue;
                }
                // d(v_i . v_j)/dv_i = v_j and vice versa; vector 0 is the
                // bottom output.
                let vi: &[f32] = if i == 0 {
                    &bottom_out
                } else {
                    &embeddings[i - 1]
                };
                let vj: &[f32] = &embeddings[j - 1]; // j >= 1 always
                if i == 0 {
                    for (gb, &w) in grad_bottom.iter_mut().zip(vj.iter()) {
                        *gb += g * w;
                    }
                } else {
                    for (ge, &w) in grad_embeddings[i - 1].iter_mut().zip(vj.iter()) {
                        *ge += g * w;
                    }
                }
                for (ge, &w) in grad_embeddings[j - 1].iter_mut().zip(vi.iter()) {
                    *ge += g * w;
                }
            }
        }

        // Update embeddings and bottom MLP.
        for ((table, &id), grad) in self
            .tables
            .iter_mut()
            .zip(sparse.iter())
            .zip(grad_embeddings.iter())
        {
            table.sgd_update(id as usize, grad, lr);
        }
        let gb = Matrix::from_vec(1, grad_bottom.len(), grad_bottom);
        self.bottom.backward_sgd(&bottom_cache, &gb, lr);
        loss
    }

    /// Total parameter count (MLPs + embedding tables).
    pub fn num_params(&self) -> u64 {
        let table_params: u64 = self
            .tables
            .iter()
            .map(|t| (t.rows() * t.dim()) as u64)
            .sum();
        self.bottom.num_params() + self.top.num_params() + table_params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use recpipe_data::DatasetKind;

    fn small_dlrm(seed: u64) -> Dlrm {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = ModelConfig::for_kind(ModelKind::RmSmall, DatasetKind::CriteoKaggle);
        Dlrm::new(&cfg, 50, &mut rng)
    }

    #[test]
    fn predict_is_probability() {
        let model = small_dlrm(1);
        let ctr = model.predict(&[0.5; 13], &[7u32; 26]);
        assert!((0.0..=1.0).contains(&ctr));
    }

    #[test]
    fn predict_is_deterministic() {
        let model = small_dlrm(2);
        let a = model.predict(&[0.1; 13], &[3u32; 26]);
        let b = model.predict(&[0.1; 13], &[3u32; 26]);
        assert_eq!(a, b);
    }

    #[test]
    fn different_sparse_ids_change_prediction() {
        let model = small_dlrm(3);
        let a = model.predict(&[0.1; 13], &[3u32; 26]);
        let b = model.predict(&[0.1; 13], &[40u32; 26]);
        assert_ne!(a, b);
    }

    #[test]
    fn train_step_reduces_loss_on_repeated_example() {
        let mut model = small_dlrm(4);
        let dense = [0.3; 13];
        let sparse = vec![5u32; 26];
        let first = model.train_step(&dense, &sparse, true, 0.05);
        for _ in 0..50 {
            model.train_step(&dense, &sparse, true, 0.05);
        }
        let last = model.train_step(&dense, &sparse, true, 0.05);
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn training_separates_two_classes() {
        let mut model = small_dlrm(5);
        let pos_sparse: Vec<u32> = (0..26).map(|_| 1).collect();
        let neg_sparse: Vec<u32> = (0..26).map(|_| 2).collect();
        for _ in 0..150 {
            model.train_step(&[1.0; 13], &pos_sparse, true, 0.05);
            model.train_step(&[-1.0; 13], &neg_sparse, false, 0.05);
        }
        let p_pos = model.predict(&[1.0; 13], &pos_sparse);
        let p_neg = model.predict(&[-1.0; 13], &neg_sparse);
        assert!(
            p_pos > 0.7 && p_neg < 0.3,
            "failed to separate: pos {p_pos}, neg {p_neg}"
        );
    }

    #[test]
    fn rmlarge_config_builds_and_predicts() {
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = ModelConfig::for_kind(ModelKind::RmLarge, DatasetKind::CriteoKaggle);
        let model = Dlrm::new(&cfg, 20, &mut rng);
        assert_eq!(model.embedding_dim(), 32);
        let ctr = model.predict(&[0.0; 13], &[1u32; 26]);
        assert!((0.0..=1.0).contains(&ctr));
    }

    #[test]
    fn param_count_includes_tables() {
        let model = small_dlrm(7);
        // 26 tables * 50 rows * dim 4 = 5200 embedding params at minimum.
        assert!(model.num_params() > 5200);
    }

    #[test]
    #[should_panic(expected = "sparse feature count")]
    fn wrong_sparse_arity_panics() {
        let model = small_dlrm(8);
        model.predict(&[0.0; 13], &[1, 2, 3]);
    }
}
