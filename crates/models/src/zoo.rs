use recpipe_data::DatasetKind;
use serde::{Deserialize, Serialize};

use crate::ModelCost;

/// The Pareto-optimal model tiers of the paper's Table 1.
///
/// For Criteo these are DLRM configurations; for the MovieLens datasets
/// they map onto proportionally-sized neural matrix factorization models
/// (the paper trains NeuMF for MovieLens, Section 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Lightweight frontend filter (Table 1: RMsmall — 1.1K FLOPs, 1 GB).
    RmSmall,
    /// Mid-tier model (Table 1: RMmed — 2.0K FLOPs, 4 GB).
    RmMed,
    /// Heavyweight backend ranker (Table 1: RMlarge — 180K FLOPs, 8 GB).
    RmLarge,
}

impl ModelKind {
    /// All tiers in increasing complexity order.
    pub const ALL: [ModelKind; 3] = [ModelKind::RmSmall, ModelKind::RmMed, ModelKind::RmLarge];

    /// The degradation ladder of multi-path serving: all tiers in
    /// *decreasing* complexity order — best quality first, the order
    /// admission policies walk when browning out (path sets expect
    /// paths appended best-quality first).
    pub const LADDER: [ModelKind; 3] = [ModelKind::RmLarge, ModelKind::RmMed, ModelKind::RmSmall];

    /// The next-lighter tier an overloaded server degrades to, or
    /// `None` at the bottom of the ladder.
    pub fn lighter(self) -> Option<ModelKind> {
        match self {
            ModelKind::RmLarge => Some(ModelKind::RmMed),
            ModelKind::RmMed => Some(ModelKind::RmSmall),
            ModelKind::RmSmall => None,
        }
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::RmSmall => "RMsmall",
            ModelKind::RmMed => "RMmed",
            ModelKind::RmLarge => "RMlarge",
        }
    }

    /// Convenience: the model configuration for a dataset.
    pub fn config(self, dataset: DatasetKind) -> ModelConfig {
        ModelConfig::for_kind(self, dataset)
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Network architecture family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArchKind {
    /// Facebook's Deep Learning Recommendation Model: bottom MLP over
    /// dense features, embedding lookups, feature interaction, top MLP.
    Dlrm,
    /// Neural matrix factorization (He et al.): GMF + MLP towers over
    /// user/item embeddings.
    NeuMf,
}

/// A concrete recommendation-model architecture: the red-highlighted
/// hyperparameters of the paper's Figure 2 (embedding dimension, MLP
/// depth/width) plus table geometry.
///
/// # Examples
///
/// ```
/// use recpipe_data::DatasetKind;
/// use recpipe_models::{ModelConfig, ModelKind};
///
/// let cfg = ModelConfig::for_kind(ModelKind::RmSmall, DatasetKind::CriteoKaggle);
/// assert_eq!(cfg.embedding_dim, 4);
/// assert_eq!(cfg.mlp_bottom, vec![13, 64, 4]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Which tier this config realizes.
    pub kind: ModelKind,
    /// Architecture family.
    pub arch: ArchKind,
    /// Embedding latent-vector dimension.
    pub embedding_dim: usize,
    /// Bottom-MLP dimension chain (first entry = dense-feature count).
    /// Empty for NeuMF (no dense features).
    pub mlp_bottom: Vec<usize>,
    /// Top-MLP dimension chain (last entry = 1, the CTR output).
    pub mlp_top: Vec<usize>,
    /// Number of embedding tables (sparse features).
    pub num_tables: usize,
    /// Rows per embedding table.
    pub rows_per_table: u64,
}

impl ModelConfig {
    /// Builds the Table 1 (Criteo/DLRM) or MovieLens (NeuMF) configuration
    /// for a model tier.
    pub fn for_kind(kind: ModelKind, dataset: DatasetKind) -> Self {
        match dataset {
            DatasetKind::CriteoKaggle => Self::criteo(kind),
            DatasetKind::MovieLens1M => Self::movielens(kind, 6040),
            DatasetKind::MovieLens20M => Self::movielens(kind, 138_000),
        }
    }

    /// Table 1 DLRM configurations, verbatim.
    fn criteo(kind: ModelKind) -> Self {
        let (dim, bottom, top) = match kind {
            ModelKind::RmSmall => (4, vec![13, 64, 4], vec![64, 1]),
            ModelKind::RmMed => (16, vec![13, 64, 16], vec![64, 1]),
            ModelKind::RmLarge => (32, vec![13, 512, 256, 128, 64, 32], vec![96, 1]),
        };
        Self {
            kind,
            arch: ArchKind::Dlrm,
            embedding_dim: dim,
            mlp_bottom: bottom,
            mlp_top: top,
            num_tables: 26,
            rows_per_table: 2_600_000,
        }
    }

    /// NeuMF configurations scaled to match the paper's MLP-dominated
    /// MovieLens profile; tiers preserve the complexity ordering.
    fn movielens(kind: ModelKind, rows: u64) -> Self {
        let (dim, top) = match kind {
            ModelKind::RmSmall => (8, vec![16, 16, 1]),
            ModelKind::RmMed => (16, vec![32, 32, 16, 1]),
            ModelKind::RmLarge => (64, vec![128, 128, 64, 32, 1]),
        };
        Self {
            kind,
            arch: ArchKind::NeuMf,
            embedding_dim: dim,
            mlp_bottom: Vec::new(),
            mlp_top: top,
            num_tables: 2,
            rows_per_table: rows,
        }
    }

    /// Cost footprint (FLOPs, lookups, bytes) of this architecture.
    pub fn cost(&self) -> ModelCost {
        ModelCost::of(self)
    }

    /// Input dimensionality of the top MLP.
    pub fn top_input_dim(&self) -> usize {
        self.mlp_top.first().copied().unwrap_or(0)
    }

    /// Number of dense features consumed (0 for NeuMF).
    pub fn num_dense_features(&self) -> usize {
        self.mlp_bottom.first().copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_dimensions_are_verbatim() {
        let small = ModelConfig::for_kind(ModelKind::RmSmall, DatasetKind::CriteoKaggle);
        assert_eq!(small.embedding_dim, 4);
        assert_eq!(small.mlp_bottom, vec![13, 64, 4]);
        assert_eq!(small.mlp_top, vec![64, 1]);

        let med = ModelConfig::for_kind(ModelKind::RmMed, DatasetKind::CriteoKaggle);
        assert_eq!(med.embedding_dim, 16);
        assert_eq!(med.mlp_bottom, vec![13, 64, 16]);

        let large = ModelConfig::for_kind(ModelKind::RmLarge, DatasetKind::CriteoKaggle);
        assert_eq!(large.embedding_dim, 32);
        assert_eq!(large.mlp_bottom, vec![13, 512, 256, 128, 64, 32]);
        assert_eq!(large.mlp_top, vec![96, 1]);
    }

    #[test]
    fn tiers_are_ordered_by_complexity() {
        for dataset in DatasetKind::ALL {
            let flops: Vec<u64> = ModelKind::ALL
                .iter()
                .map(|&k| ModelConfig::for_kind(k, dataset).cost().flops_per_item)
                .collect();
            assert!(
                flops[0] < flops[1] && flops[1] < flops[2],
                "{dataset}: {flops:?}"
            );
        }
    }

    #[test]
    fn movielens_is_neumf() {
        let cfg = ModelConfig::for_kind(ModelKind::RmMed, DatasetKind::MovieLens1M);
        assert_eq!(cfg.arch, ArchKind::NeuMf);
        assert_eq!(cfg.num_tables, 2);
        assert!(cfg.mlp_bottom.is_empty());
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(ModelKind::RmSmall.to_string(), "RMsmall");
        assert_eq!(ModelKind::RmLarge.to_string(), "RMlarge");
    }

    #[test]
    fn ladder_reverses_all_and_lighter_walks_it() {
        let mut reversed = ModelKind::ALL;
        reversed.reverse();
        assert_eq!(ModelKind::LADDER, reversed);
        for pair in ModelKind::LADDER.windows(2) {
            assert_eq!(pair[0].lighter(), Some(pair[1]));
        }
        assert_eq!(ModelKind::RmSmall.lighter(), None);
    }

    #[test]
    fn kind_config_shortcut_agrees() {
        let a = ModelKind::RmMed.config(DatasetKind::CriteoKaggle);
        let b = ModelConfig::for_kind(ModelKind::RmMed, DatasetKind::CriteoKaggle);
        assert_eq!(a, b);
    }
}
