use rand::Rng;
use recpipe_tensor::{Initializer, Matrix};
use serde::{Deserialize, Serialize};

/// A trainable embedding table: `rows x dim` dense storage with per-row
/// lookup and SGD update.
///
/// Used by the functional model path. Production-scale tables (Table 1:
/// up to 8 GB) are represented by [`VirtualTable`] instead, which tracks
/// capacity without materializing values.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use recpipe_models::EmbeddingTable;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let table = EmbeddingTable::new(100, 8, &mut rng);
/// assert_eq!(table.lookup(42).len(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingTable {
    weights: Matrix,
}

impl EmbeddingTable {
    /// Creates a table with `rows` rows of dimension `dim`, initialized
    /// uniformly in `[-1/sqrt(dim), 1/sqrt(dim)]`.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `dim == 0`.
    pub fn new<R: Rng + ?Sized>(rows: usize, dim: usize, rng: &mut R) -> Self {
        assert!(rows > 0 && dim > 0, "table must be non-empty");
        let scale = 1.0 / (dim as f32).sqrt();
        Self {
            weights: Initializer::Uniform { scale }.init(rng, rows, dim),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.weights.rows()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.weights.cols()
    }

    /// Storage footprint in bytes (`rows * dim * 4`).
    pub fn bytes(&self) -> u64 {
        (self.rows() as u64) * (self.dim() as u64) * 4
    }

    /// Borrows the embedding vector for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id >= rows`.
    pub fn lookup(&self, id: usize) -> &[f32] {
        self.weights.row(id)
    }

    /// Sum-pools the vectors for `ids` (multi-hot lookup).
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn lookup_pooled(&self, ids: &[usize]) -> Vec<f32> {
        let mut out = vec![0.0; self.dim()];
        for &id in ids {
            for (o, &w) in out.iter_mut().zip(self.lookup(id)) {
                *o += w;
            }
        }
        out
    }

    /// Applies an SGD update `row -= lr * grad` to the row for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or `grad.len() != dim`.
    pub fn sgd_update(&mut self, id: usize, grad: &[f32], lr: f32) {
        assert_eq!(grad.len(), self.dim(), "gradient dimension mismatch");
        for (w, &g) in self.weights.row_mut(id).iter_mut().zip(grad.iter()) {
            *w -= lr * g;
        }
    }
}

/// A capacity-only embedding table for production-scale models.
///
/// Table 1 models span 1–8 GB of embeddings, which we must reason about
/// (cache sizing, SSD spill, lookup bytes) without allocating. A
/// `VirtualTable` records geometry and synthesizes deterministic values on
/// demand via hashing, so functional code paths (e.g. examples that "run"
/// RMlarge) still produce stable numbers.
///
/// # Examples
///
/// ```
/// use recpipe_models::VirtualTable;
///
/// let table = VirtualTable::new(2_600_000, 32);
/// assert_eq!(table.bytes(), 2_600_000 * 32 * 4);
/// let v = table.value(12345, 3);
/// assert_eq!(v, table.value(12345, 3)); // deterministic
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VirtualTable {
    rows: u64,
    dim: usize,
}

impl VirtualTable {
    /// Creates a virtual table with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `dim == 0`.
    pub fn new(rows: u64, dim: usize) -> Self {
        assert!(rows > 0 && dim > 0, "table must be non-empty");
        Self { rows, dim }
    }

    /// Number of rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Virtual storage footprint in bytes.
    pub fn bytes(&self) -> u64 {
        self.rows * self.dim as u64 * 4
    }

    /// Bytes transferred by one row lookup.
    pub fn bytes_per_lookup(&self) -> u64 {
        self.dim as u64 * 4
    }

    /// Deterministic pseudo-random value of element `(row, d)` in
    /// `[-0.05, 0.05]`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows` or `d >= dim`.
    pub fn value(&self, row: u64, d: usize) -> f32 {
        assert!(row < self.rows && d < self.dim, "index out of bounds");
        let mut h = row ^ ((d as u64) << 48) ^ 0x9e37_79b9_7f4a_7c15;
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        ((h as f64 / u64::MAX as f64) as f32 - 0.5) * 0.1
    }

    /// Synthesizes the full row for `row`.
    pub fn row(&self, row: u64) -> Vec<f32> {
        (0..self.dim).map(|d| self.value(row, d)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lookup_returns_requested_row() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut table = EmbeddingTable::new(10, 4, &mut rng);
        table.sgd_update(3, &[-1.0, -1.0, -1.0, -1.0], 1.0);
        let before_other = table.lookup(2).to_vec();
        // Row 3 moved by +1 in every coordinate; others untouched.
        assert!(table.lookup(3).iter().all(|&x| x > 0.4));
        assert_eq!(table.lookup(2), &before_other[..]);
    }

    #[test]
    fn pooled_lookup_sums_rows() {
        let mut rng = StdRng::seed_from_u64(2);
        let table = EmbeddingTable::new(5, 3, &mut rng);
        let a = table.lookup(0).to_vec();
        let b = table.lookup(1).to_vec();
        let pooled = table.lookup_pooled(&[0, 1]);
        for i in 0..3 {
            assert!((pooled[i] - (a[i] + b[i])).abs() < 1e-6);
        }
    }

    #[test]
    fn pooled_lookup_of_empty_is_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        let table = EmbeddingTable::new(5, 3, &mut rng);
        assert_eq!(table.lookup_pooled(&[]), vec![0.0; 3]);
    }

    #[test]
    fn bytes_accounts_full_table() {
        let mut rng = StdRng::seed_from_u64(4);
        let table = EmbeddingTable::new(100, 16, &mut rng);
        assert_eq!(table.bytes(), 100 * 16 * 4);
    }

    #[test]
    fn sgd_update_moves_against_gradient() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut table = EmbeddingTable::new(4, 2, &mut rng);
        let before = table.lookup(1).to_vec();
        table.sgd_update(1, &[1.0, -2.0], 0.1);
        let after = table.lookup(1);
        assert!((after[0] - (before[0] - 0.1)).abs() < 1e-6);
        assert!((after[1] - (before[1] + 0.2)).abs() < 1e-6);
    }

    #[test]
    fn virtual_table_matches_table1_sizes() {
        // 26 tables x 2.6M rows at dims 4/16/32 → ~1/4/8 GB (Table 1).
        for (dim, gb) in [(4usize, 1.0f64), (16, 4.0), (32, 8.0)] {
            let total: u64 = (0..26)
                .map(|_| VirtualTable::new(2_600_000, dim).bytes())
                .sum();
            let total_gb = total as f64 / 1e9;
            assert!(
                (total_gb - gb).abs() / gb < 0.15,
                "dim {dim}: {total_gb} GB vs expected {gb}"
            );
        }
    }

    #[test]
    fn virtual_values_are_deterministic_and_bounded() {
        let t = VirtualTable::new(1000, 8);
        for row in [0u64, 1, 999] {
            for d in 0..8 {
                let v = t.value(row, d);
                assert_eq!(v, t.value(row, d));
                assert!(v.abs() <= 0.05 + 1e-6);
            }
        }
    }

    #[test]
    fn virtual_rows_differ() {
        let t = VirtualTable::new(1000, 8);
        assert_ne!(t.row(1), t.row(2));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn virtual_value_out_of_range_panics() {
        VirtualTable::new(10, 2).value(10, 0);
    }
}
