use serde::{Deserialize, Serialize};

use crate::{ArchKind, ModelConfig};

/// Static cost footprint of one model — the quantities every hardware
/// model in the framework consumes.
///
/// FLOP counts follow the paper's convention (Table 1 counts one FLOP per
/// multiply-accumulate): RMsmall ≈ 1.1K, RMmed ≈ 1.9K, RMlarge ≈ 181K per
/// item.
///
/// # Examples
///
/// ```
/// use recpipe_data::DatasetKind;
/// use recpipe_models::{ModelConfig, ModelKind};
///
/// let cost = ModelConfig::for_kind(ModelKind::RmSmall, DatasetKind::CriteoKaggle).cost();
/// assert_eq!(cost.sparse_lookups_per_item, 26);
/// assert!((cost.model_bytes as f64 / 1e9 - 1.08).abs() < 0.1); // ~1 GB
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelCost {
    /// Multiply-accumulates per ranked item (MLP towers + interaction).
    pub flops_per_item: u64,
    /// Pure-MLP multiply-accumulates per item, Table 1's FLOP convention
    /// (excludes the feature-interaction dots).
    pub mlp_flops_per_item: u64,
    /// Embedding-table lookups per ranked item (one per table).
    pub sparse_lookups_per_item: u64,
    /// Bytes fetched per embedding lookup (`dim * 4`).
    pub bytes_per_lookup: u64,
    /// Total embedding storage in bytes (Table 1 "Model Size").
    pub model_bytes: u64,
    /// MLP parameter bytes (weights held on-chip / in cache).
    pub mlp_param_bytes: u64,
    /// Bytes of dense input per item.
    pub dense_input_bytes: u64,
}

impl ModelCost {
    /// Computes the footprint of a [`ModelConfig`].
    pub fn of(config: &ModelConfig) -> Self {
        let chain_macs =
            |dims: &[usize]| -> u64 { dims.windows(2).map(|w| (w[0] * w[1]) as u64).sum() };
        let chain_params =
            |dims: &[usize]| -> u64 { dims.windows(2).map(|w| (w[0] * w[1] + w[1]) as u64).sum() };

        let bottom_macs = chain_macs(&config.mlp_bottom);
        let top_macs = chain_macs(&config.mlp_top);
        // Feature interaction: pairwise dot products among the embedding
        // vectors (and bottom output for DLRM), each dot costing `dim`
        // MACs. NeuMF's GMF path is one elementwise product (dim MACs).
        let interaction_macs = match config.arch {
            ArchKind::Dlrm => {
                let vectors = config.num_tables as u64 + 1;
                vectors * (vectors - 1) / 2 * config.embedding_dim as u64
            }
            ArchKind::NeuMf => config.embedding_dim as u64,
        };

        let model_bytes =
            config.num_tables as u64 * config.rows_per_table * config.embedding_dim as u64 * 4;

        Self {
            flops_per_item: bottom_macs + top_macs + interaction_macs,
            mlp_flops_per_item: bottom_macs + top_macs,
            sparse_lookups_per_item: config.num_tables as u64,
            bytes_per_lookup: config.embedding_dim as u64 * 4,
            model_bytes,
            mlp_param_bytes: (chain_params(&config.mlp_bottom) + chain_params(&config.mlp_top)) * 4,
            dense_input_bytes: config.num_dense_features() as u64 * 4,
        }
    }

    /// Embedding bytes touched per ranked item.
    pub fn embedding_bytes_per_item(&self) -> u64 {
        self.sparse_lookups_per_item * self.bytes_per_lookup
    }

    /// Total compute for ranking `items` candidates.
    pub fn flops_for_items(&self, items: u64) -> u64 {
        self.flops_per_item * items
    }

    /// Total embedding traffic for ranking `items` candidates.
    pub fn embedding_bytes_for_items(&self, items: u64) -> u64 {
        self.embedding_bytes_per_item() * items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelKind;
    use recpipe_data::DatasetKind;

    fn criteo(kind: ModelKind) -> ModelCost {
        ModelConfig::for_kind(kind, DatasetKind::CriteoKaggle).cost()
    }

    #[test]
    fn table1_flops_within_tolerance() {
        // Table 1: 1.1K / 2.0K / 180K FLOPs. The interaction term adds the
        // pairwise dots on top of the pure-MLP MACs; stay within 2.5x of
        // the quoted numbers and preserve exact MLP MACs separately.
        let small = criteo(ModelKind::RmSmall);
        let med = criteo(ModelKind::RmMed);
        let large = criteo(ModelKind::RmLarge);
        assert!(small.flops_per_item >= 1_100 && small.flops_per_item < 4_000);
        assert!(med.flops_per_item >= 1_900 && med.flops_per_item < 8_000);
        assert!(large.flops_per_item >= 180_000 && large.flops_per_item < 200_000);
        // Pure-MLP MACs reproduce the Table 1 column exactly.
        assert_eq!(small.mlp_flops_per_item, 13 * 64 + 64 * 4 + 64);
        assert_eq!(med.mlp_flops_per_item, 13 * 64 + 64 * 16 + 64);
        assert_eq!(
            large.mlp_flops_per_item,
            13 * 512 + 512 * 256 + 256 * 128 + 128 * 64 + 64 * 32 + 96
        );
    }

    #[test]
    fn table1_model_sizes() {
        // Table 1: 1 GB / 4 GB / 8 GB.
        let gb = |c: ModelCost| c.model_bytes as f64 / 1e9;
        assert!((gb(criteo(ModelKind::RmSmall)) - 1.0).abs() < 0.15);
        assert!((gb(criteo(ModelKind::RmMed)) - 4.0).abs() < 0.4);
        assert!((gb(criteo(ModelKind::RmLarge)) - 8.0).abs() < 0.7);
    }

    #[test]
    fn figure1c_multistage_savings() {
        // Figure 1(c): at iso-quality, two-stage (RMsmall@4096 →
        // RMlarge@512) vs one-stage RMlarge@4096 cuts compute ~7.5x and
        // embedding traffic ~4x.
        let small = criteo(ModelKind::RmSmall);
        let large = criteo(ModelKind::RmLarge);

        let single_flops = large.flops_for_items(4096);
        let multi_flops = small.flops_for_items(4096) + large.flops_for_items(512);
        let compute_saving = single_flops as f64 / multi_flops as f64;

        let single_mem = large.embedding_bytes_for_items(4096);
        let multi_mem =
            small.embedding_bytes_for_items(4096) + large.embedding_bytes_for_items(512);
        let memory_saving = single_mem as f64 / multi_mem as f64;

        assert!(
            compute_saving > 4.0 && compute_saving < 12.0,
            "compute saving {compute_saving}"
        );
        assert!(
            memory_saving > 2.5 && memory_saving < 6.0,
            "memory saving {memory_saving}"
        );
    }

    #[test]
    fn lookup_bytes_track_dimension() {
        assert_eq!(criteo(ModelKind::RmSmall).bytes_per_lookup, 16);
        assert_eq!(criteo(ModelKind::RmLarge).bytes_per_lookup, 128);
    }

    #[test]
    fn per_item_scaling_is_linear() {
        let c = criteo(ModelKind::RmMed);
        assert_eq!(c.flops_for_items(10), c.flops_per_item * 10);
        assert_eq!(
            c.embedding_bytes_for_items(7),
            c.embedding_bytes_per_item() * 7
        );
    }

    #[test]
    fn neumf_cost_is_mlp_dominated() {
        let cfg = ModelConfig::for_kind(ModelKind::RmLarge, DatasetKind::MovieLens1M);
        let cost = cfg.cost();
        // Embedding traffic per item is small relative to MLP compute.
        assert!(cost.flops_per_item > 10 * cost.embedding_bytes_per_item());
    }

    #[test]
    fn dense_input_bytes_for_criteo() {
        assert_eq!(criteo(ModelKind::RmSmall).dense_input_bytes, 13 * 4);
    }
}
