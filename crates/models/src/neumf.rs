use rand::Rng;
use recpipe_tensor::{sigmoid, Activation, Matrix};

use crate::{EmbeddingTable, Mlp, ModelConfig};

/// Neural matrix factorization (He et al., WWW '17) — the model the paper
/// trains for both MovieLens datasets.
///
/// Two towers share nothing:
///
/// * **GMF** — generalized matrix factorization: the elementwise product
///   of user and item embeddings, linearly weighted;
/// * **MLP** — a tower over the concatenation of a *separate* pair of
///   user/item embeddings.
///
/// The final score is `sigmoid(w_gmf . (p ⊙ q) + tower(concat(p', q')))`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use recpipe_data::DatasetKind;
/// use recpipe_models::{ModelConfig, ModelKind, NeuMf};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let cfg = ModelConfig::for_kind(ModelKind::RmSmall, DatasetKind::MovieLens1M);
/// let model = NeuMf::new(&cfg, 100, 200, &mut rng);
/// let score = model.predict(42, 17);
/// assert!((0.0..=1.0).contains(&score));
/// ```
#[derive(Debug, Clone)]
pub struct NeuMf {
    gmf_user: EmbeddingTable,
    gmf_item: EmbeddingTable,
    mlp_user: EmbeddingTable,
    mlp_item: EmbeddingTable,
    gmf_weights: Vec<f32>,
    tower: Mlp,
    dim: usize,
}

impl NeuMf {
    /// Builds a NeuMF model for `num_users` users and `num_items` items
    /// from a MovieLens-profile [`ModelConfig`].
    ///
    /// # Panics
    ///
    /// Panics if the config's top MLP is shorter than two dims or its
    /// input width differs from `2 * embedding_dim`.
    pub fn new<R: Rng + ?Sized>(
        config: &ModelConfig,
        num_users: usize,
        num_items: usize,
        rng: &mut R,
    ) -> Self {
        assert!(config.mlp_top.len() >= 2, "NeuMF requires a predictor MLP");
        assert_eq!(
            config.mlp_top[0],
            2 * config.embedding_dim,
            "tower input must be twice the embedding dim"
        );
        let dim = config.embedding_dim;
        Self {
            gmf_user: EmbeddingTable::new(num_users, dim, rng),
            gmf_item: EmbeddingTable::new(num_items, dim, rng),
            mlp_user: EmbeddingTable::new(num_users, dim, rng),
            mlp_item: EmbeddingTable::new(num_items, dim, rng),
            gmf_weights: vec![1.0 / dim as f32; dim],
            tower: Mlp::new(&config.mlp_top, Activation::Relu, Activation::Linear, rng),
            dim,
        }
    }

    /// Embedding dimensionality of both towers.
    pub fn embedding_dim(&self) -> usize {
        self.dim
    }

    fn tower_input(&self, user: usize, item: usize) -> Vec<f32> {
        let mut x = Vec::with_capacity(2 * self.dim);
        x.extend_from_slice(self.mlp_user.lookup(user));
        x.extend_from_slice(self.mlp_item.lookup(item));
        x
    }

    fn logit(&self, user: usize, item: usize) -> f32 {
        let p = self.gmf_user.lookup(user);
        let q = self.gmf_item.lookup(item);
        let gmf: f32 = p
            .iter()
            .zip(q.iter())
            .zip(self.gmf_weights.iter())
            .map(|((&a, &b), &w)| w * a * b)
            .sum();
        let xin = self.tower_input(user, item);
        let tower_out = self
            .tower
            .forward(&Matrix::from_vec(1, xin.len(), xin))
            .get(0, 0);
        gmf + tower_out
    }

    /// Predicted interaction probability for a user-item pair.
    ///
    /// # Panics
    ///
    /// Panics if `user` or `item` is out of range.
    pub fn predict(&self, user: usize, item: usize) -> f32 {
        sigmoid(self.logit(user, item))
    }

    /// One SGD step on a labeled pair; returns the BCE loss before the
    /// update.
    pub fn train_step(&mut self, user: usize, item: usize, liked: bool, lr: f32) -> f32 {
        let p = self.gmf_user.lookup(user).to_vec();
        let q = self.gmf_item.lookup(item).to_vec();

        let xin = self.tower_input(user, item);
        let x = Matrix::from_vec(1, xin.len(), xin);
        let tower_cache = self.tower.forward_cached(&x);
        let tower_out = tower_cache.last().expect("non-empty").get(0, 0);

        let gmf: f32 = p
            .iter()
            .zip(q.iter())
            .zip(self.gmf_weights.iter())
            .map(|((&a, &b), &w)| w * a * b)
            .sum();
        let prob = sigmoid(gmf + tower_out);
        let y = if liked { 1.0 } else { 0.0 };
        let eps = 1e-7f32;
        let loss = -(y * (prob + eps).ln() + (1.0 - y) * (1.0 - prob + eps).ln());

        let dlogit = prob - y;

        // GMF path gradients.
        let mut gp = vec![0.0f32; self.dim];
        let mut gq = vec![0.0f32; self.dim];
        for i in 0..self.dim {
            gp[i] = dlogit * self.gmf_weights[i] * q[i];
            gq[i] = dlogit * self.gmf_weights[i] * p[i];
            self.gmf_weights[i] -= lr * dlogit * p[i] * q[i];
        }
        self.gmf_user.sgd_update(user, &gp, lr);
        self.gmf_item.sgd_update(item, &gq, lr);

        // Tower gradients down to the concatenated embedding input.
        let grad_out = Matrix::from_vec(1, 1, vec![dlogit]);
        let grad_in = self.tower.backward_sgd(&tower_cache, &grad_out, lr);
        let gi = grad_in.as_slice();
        self.mlp_user.sgd_update(user, &gi[..self.dim], lr);
        self.mlp_item.sgd_update(item, &gi[self.dim..], lr);
        loss
    }

    /// Scores every item in `items` for one user; the NeuMF serving path
    /// used by the MovieLens examples.
    pub fn score_items(&self, user: usize, items: &[usize]) -> Vec<f32> {
        items.iter().map(|&i| self.predict(user, i)).collect()
    }

    /// Total parameter count.
    pub fn num_params(&self) -> u64 {
        let table = |t: &EmbeddingTable| (t.rows() * t.dim()) as u64;
        table(&self.gmf_user)
            + table(&self.gmf_item)
            + table(&self.mlp_user)
            + table(&self.mlp_item)
            + self.gmf_weights.len() as u64
            + self.tower.num_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use recpipe_data::DatasetKind;

    fn model(seed: u64) -> NeuMf {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = ModelConfig::for_kind(ModelKind::RmSmall, DatasetKind::MovieLens1M);
        NeuMf::new(&cfg, 50, 80, &mut rng)
    }

    #[test]
    fn predictions_are_probabilities() {
        let m = model(1);
        for (u, i) in [(0, 0), (49, 79), (25, 40)] {
            let p = m.predict(u, i);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn training_memorizes_a_pair() {
        let mut m = model(2);
        let before = m.predict(3, 4);
        for _ in 0..200 {
            m.train_step(3, 4, true, 0.1);
        }
        let after = m.predict(3, 4);
        assert!(after > before);
        assert!(after > 0.9, "after training: {after}");
    }

    #[test]
    fn training_separates_likes_from_dislikes() {
        let mut m = model(3);
        for _ in 0..300 {
            m.train_step(1, 2, true, 0.1);
            m.train_step(1, 3, false, 0.1);
        }
        assert!(m.predict(1, 2) > 0.8);
        assert!(m.predict(1, 3) < 0.2);
    }

    #[test]
    fn score_items_ranks_trained_preference_first() {
        let mut m = model(4);
        for _ in 0..300 {
            m.train_step(0, 10, true, 0.1);
            m.train_step(0, 11, false, 0.1);
            m.train_step(0, 12, false, 0.1);
        }
        let scores = m.score_items(0, &[10, 11, 12]);
        assert!(scores[0] > scores[1] && scores[0] > scores[2]);
    }

    #[test]
    fn loss_decreases_over_training() {
        let mut m = model(5);
        let first = m.train_step(7, 8, true, 0.05);
        let mut last = first;
        for _ in 0..100 {
            last = m.train_step(7, 8, true, 0.05);
        }
        assert!(last < first);
    }

    #[test]
    fn larger_configs_have_more_params() {
        let mut rng = StdRng::seed_from_u64(6);
        let small = NeuMf::new(
            &ModelConfig::for_kind(ModelKind::RmSmall, DatasetKind::MovieLens1M),
            50,
            50,
            &mut rng,
        );
        let large = NeuMf::new(
            &ModelConfig::for_kind(ModelKind::RmLarge, DatasetKind::MovieLens1M),
            50,
            50,
            &mut rng,
        );
        assert!(large.num_params() > small.num_params());
    }

    #[test]
    #[should_panic(expected = "twice the embedding dim")]
    fn mismatched_tower_input_panics() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut cfg = ModelConfig::for_kind(ModelKind::RmSmall, DatasetKind::MovieLens1M);
        cfg.mlp_top[0] = 7;
        NeuMf::new(&cfg, 10, 10, &mut rng);
    }
}
