//! Criterion bench: the blocked GEMM kernel at recommendation-MLP sizes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use recpipe_tensor::Matrix;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for &(m, k, n) in &[(64usize, 13usize, 64usize), (256, 64, 64), (512, 512, 256)] {
        let a = Matrix::from_vec(m, k, (0..m * k).map(|i| (i % 13) as f32).collect());
        let b = Matrix::from_vec(k, n, (0..k * n).map(|i| (i % 7) as f32).collect());
        group.bench_function(format!("{m}x{k}x{n}"), |bench| {
            bench.iter(|| black_box(a.matmul(&b).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
