//! Criterion bench: NDCG computation at the paper's serving size
//! (top-64 of a 4096-candidate pool).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recpipe_metrics::{ideal_sorted, ndcg_at_k};

fn bench_ndcg(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let gains: Vec<f64> = (0..4096).map(|_| rng.gen::<f64>() * 10.0).collect();
    let ideal = ideal_sorted(&gains);
    let served: Vec<f64> = gains.iter().take(64).copied().collect();

    c.bench_function("ndcg_at_64_of_4096", |b| {
        b.iter(|| black_box(ndcg_at_k(black_box(&served), black_box(&ideal), 64)))
    });
    c.bench_function("ideal_sort_4096", |b| {
        b.iter(|| black_box(ideal_sorted(black_box(&gains))))
    });
}

criterion_group!(benches, bench_ndcg);
criterion_main!(benches);
