//! Criterion bench: embedding-cache models — analytic static hit rates
//! versus the exact LRU simulator on Zipfian traces.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use recpipe_data::{EmbeddingTrace, Zipf};
use recpipe_hwsim::{LruCache, StaticCacheModel};

fn bench_caches(c: &mut Criterion) {
    c.bench_function("static_cache_hit_rate", |b| {
        let zipf = Zipf::new(2_600_000, 0.9);
        b.iter(|| black_box(StaticCacheModel::new(zipf, black_box(100_000)).hit_rate()))
    });

    c.bench_function("lru_10k_accesses", |b| {
        b.iter(|| {
            let mut trace = EmbeddingTrace::new(100_000, 0.9, 3);
            let mut lru = LruCache::new(5_000);
            for _ in 0..10_000 {
                lru.access(trace.next_access());
            }
            black_box(lru.hit_rate())
        })
    });

    c.bench_function("zipf_sampling_10k", |b| {
        b.iter(|| {
            let mut trace = EmbeddingTrace::new(2_600_000, 0.9, 5);
            black_box(trace.take_accesses(10_000))
        })
    });
}

criterion_group!(benches, bench_caches);
criterion_main!(benches);
