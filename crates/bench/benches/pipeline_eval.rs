//! Criterion bench: end-to-end pipeline evaluation — the Monte-Carlo
//! quality evaluator and the accelerator latency model, as used by the
//! scheduler's design-space exploration.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use recpipe_accel::{Partition, RpAccel, RpAccelConfig};
use recpipe_core::{PipelineConfig, QualityEvaluator, StageConfig};
use recpipe_models::ModelKind;

fn two_stage() -> PipelineConfig {
    PipelineConfig::builder()
        .stage(StageConfig::new(ModelKind::RmSmall, 4096, 256))
        .stage(StageConfig::new(ModelKind::RmLarge, 256, 64))
        .build()
        .unwrap()
}

fn bench_pipeline_eval(c: &mut Criterion) {
    let pipeline = two_stage();

    c.bench_function("quality_eval_50_queries", |b| {
        let eval = QualityEvaluator::criteo_like(64).queries(50);
        b.iter(|| black_box(eval.evaluate(black_box(&pipeline))))
    });

    c.bench_function("rpaccel_query_latency", |b| {
        let accel = RpAccel::new(RpAccelConfig::paper_default(Partition::symmetric(8, 8)));
        let stages = pipeline.stage_works();
        b.iter(|| black_box(accel.query_latency(black_box(&stages))))
    });
}

criterion_group!(benches, bench_pipeline_eval);
criterion_main!(benches);
