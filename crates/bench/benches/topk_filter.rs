//! Criterion bench: the streaming bucketed top-k filter versus a full
//! sort — the comparison motivating the paper's hardware design.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recpipe_accel::TopKFilter;

fn scores(n: u64) -> Vec<(u64, f64)> {
    let mut rng = StdRng::seed_from_u64(9);
    (0..n).map(|i| (i, rng.gen::<f64>())).collect()
}

fn bench_topk(c: &mut Criterion) {
    let data = scores(4096);
    let filter = TopKFilter::paper_default(512);

    let mut group = c.benchmark_group("topk_4096_to_512");
    group.bench_function("bucketed_filter", |b| {
        b.iter(|| black_box(filter.filter(black_box(&data))))
    });
    group.bench_function("full_sort", |b| {
        b.iter(|| {
            let mut sorted = data.clone();
            sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            sorted.truncate(512);
            black_box(sorted)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_topk);
criterion_main!(benches);
