//! Criterion bench: the systolic-array cycle model (the inner loop of
//! every accelerator experiment).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use recpipe_accel::SystolicArray;
use recpipe_data::DatasetKind;
use recpipe_models::{ModelConfig, ModelKind};

fn bench_systolic(c: &mut Criterion) {
    let array = SystolicArray::paper_default();
    let mut group = c.benchmark_group("systolic_model_cycles");
    for kind in ModelKind::ALL {
        let model = ModelConfig::for_kind(kind, DatasetKind::CriteoKaggle);
        group.bench_function(kind.to_string(), |bench| {
            bench.iter(|| black_box(array.model_cycles(&model, black_box(4096))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_systolic);
criterion_main!(benches);
