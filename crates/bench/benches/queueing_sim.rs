//! Criterion bench: the discrete-event queueing simulator — the backbone
//! of every at-scale experiment — in its legacy per-query form, the
//! batching-aware v2 serving core, the v3 cluster-of-replicas loop, and
//! the scheduler's cluster sweep under full vs successive-halving
//! budgets.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use recpipe_core::{Backend, Scheduler, SchedulerSettings, SweepBudget};
use recpipe_data::{DiurnalArrivals, MmppArrivals, PoissonArrivals, TraceArrivals};
use recpipe_hwsim::{CpuModel, PcieModel};
use recpipe_qsim::{
    serve_multipath, BatchModel, BatchWindow, ExpectedWait, Fifo, HedgePolicy, JoinShortestQueue,
    LeastWorkLeft, LifecycleConfig, LifecycleEvent, LifecycleSchedule, LoadAdaptive, PathSet,
    PipelineSpec, PowerOfTwoChoices, ReplicaGroup, ReplicaProfile, ResilienceConfig, ResourceSpec,
    RetryBudget, RetryPolicy, RoundRobin, Router, StageSpec,
};

fn two_stage() -> PipelineSpec {
    PipelineSpec::new(vec![
        ResourceSpec::new("cpu", 64),
        ResourceSpec::new("gpu", 1),
    ])
    .with_stage(StageSpec::new("front", 1, 1, 0.0012))
    .unwrap()
    .with_stage(StageSpec::new("back", 0, 2, 0.008))
    .unwrap()
}

fn bench_qsim(c: &mut Criterion) {
    let spec = two_stage();
    let mut group = c.benchmark_group("qsim");
    for &queries in &[1_000usize, 10_000] {
        group.bench_function(format!("two_stage_{queries}q"), |b| {
            b.iter(|| black_box(spec.simulate(black_box(300.0), queries, 7)))
        });
    }
    group.finish();
}

fn bench_qsim_v2(c: &mut Criterion) {
    // The v2 serving core with everything turned on: batched stages,
    // bursty MMPP arrivals, and a batch-window policy (timer events,
    // priority queues, batch formation).
    let spec = PipelineSpec::new(vec![
        ResourceSpec::new("cpu", 64),
        ResourceSpec::new("gpu", 1),
    ])
    .with_stage(StageSpec::new("front", 1, 1, 0.0012).with_batch(BatchModel::new(16, 0.15)))
    .unwrap()
    .with_stage(StageSpec::new("back", 0, 2, 0.008).with_batch(BatchModel::new(8, 0.8)))
    .unwrap();
    let arrivals = MmppArrivals::new(100.0, 900.0, 0.4, 0.1);
    let policy = BatchWindow::new(0.002);

    let mut group = c.benchmark_group("qsim_v2");
    for &queries in &[1_000usize, 10_000] {
        group.bench_function(format!("batched_mmpp_window_{queries}q"), |b| {
            b.iter(|| black_box(spec.serve(&arrivals, &policy, queries, 7)))
        });
    }
    group.finish();
}

fn bench_qsim_cluster(c: &mut Criterion) {
    // The v3 cluster loop: a 4-replica mixed-job-size fleet at rho =
    // 0.9, one bench per router — the per-decision cost of oblivious
    // cycling vs full queue inspection vs two-probe sampling.
    let spec = PipelineSpec::new(vec![ReplicaGroup::replicated("worker", 1, 4)])
        .with_stage(StageSpec::new("front", 0, 1, 0.002))
        .unwrap()
        .with_stage(StageSpec::new("back", 0, 1, 0.010))
        .unwrap();
    let arrivals = PoissonArrivals::new(0.9 * spec.max_qps());

    let mut group = c.benchmark_group("qsim_cluster");
    let routers: [(&str, &dyn Router); 4] = [
        ("round_robin", &RoundRobin),
        ("jsq", &JoinShortestQueue),
        ("po2", &PowerOfTwoChoices),
        ("least_work", &LeastWorkLeft),
    ];
    for (name, router) in routers {
        group.bench_function(format!("routed_10000q/{name}"), |b| {
            b.iter(|| black_box(spec.serve_routed(&arrivals, &Fifo, router, 10_000, 7)))
        });
    }

    // The heterogeneous-fleet loop: a two-generation fleet (2 current
    // replicas + 2 at 40% speed) at rho = 0.9 of the weighted
    // capacity, routed by the speed-aware expected-wait estimator vs
    // JSQ — the per-decision cost of the remaining-work probe on top
    // of the per-replica speed bookkeeping.
    let two_gen = PipelineSpec::new(vec![ReplicaGroup::heterogeneous(
        "worker",
        vec![
            ReplicaProfile::baseline(1),
            ReplicaProfile::baseline(1),
            ReplicaProfile::new(1, 0.4),
            ReplicaProfile::new(1, 0.4),
        ],
    )])
    .with_stage(StageSpec::new("front", 0, 1, 0.002))
    .unwrap()
    .with_stage(StageSpec::new("back", 0, 1, 0.010))
    .unwrap();
    let hetero_arrivals = PoissonArrivals::new(0.9 * two_gen.max_qps());
    let hetero_routers: [(&str, &dyn Router); 2] = [
        ("jsq", &JoinShortestQueue),
        ("expected_wait", &ExpectedWait),
    ];
    for (name, router) in hetero_routers {
        group.bench_function(format!("two_gen_10000q/{name}"), |b| {
            b.iter(|| black_box(two_gen.serve_routed(&hetero_arrivals, &Fifo, router, 10_000, 7)))
        });
    }
    group.finish();
}

fn bench_qsim_scale(c: &mut Criterion) {
    // The v7 scale path: a 10M-query recorded-trace replay through a
    // two-backend pipeline, sharded one thread per stage — streamed
    // arrivals, gated estimator bookkeeping, completion-time recording
    // into the folded histogram. This is the headline number the
    // sharded loop exists for; bench_smoke holds it to a single-digit
    // machine-normalized second budget.
    let filter = ReplicaGroup::heterogeneous(
        "filter",
        vec![
            ReplicaProfile::baseline(1),
            ReplicaProfile::baseline(1),
            ReplicaProfile::new(1, 0.6),
            ReplicaProfile::new(1, 0.6),
        ],
    );
    let rank = ReplicaGroup::replicated("rank", 1, 4);
    let spec = PipelineSpec::new(vec![filter, rank])
        .with_stage(StageSpec::new("filter", 0, 1, 0.002).with_batch(BatchModel::new(8, 0.25)))
        .unwrap()
        .with_stage(StageSpec::new("rank", 1, 1, 0.001).with_batch(BatchModel::new(8, 0.25)))
        .unwrap();
    // A deterministic synthetic "recorded" day of traffic: 100k
    // arrivals with pseudo-random gaps, tiled by the replay.
    let mut z = 42u64;
    let mut t = 0.0f64;
    let times: Vec<f64> = (0..100_000)
        .map(|_| {
            z = z
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            t += ((z >> 33) as f64 / (1u64 << 31) as f64) * 2e-3;
            t
        })
        .collect();
    let trace = TraceArrivals::new(times).with_rate(0.7 * spec.max_qps_at_full_batch());

    let mut group = c.benchmark_group("qsim_scale");
    group.bench_function("trace_replay_10M", |b| {
        b.iter(|| {
            black_box(spec.serve_routed_sharded(&trace, &Fifo, &RoundRobin, 10_000_000, 7, 0))
        })
    });
    group.finish();
}

fn bench_qsim_lifecycle(c: &mut Criterion) {
    // The lifecycle-aware loop: a diurnal rate swing with a fail-stop
    // and recovery mid-climb, windowed telemetry on — the per-event
    // cost of availability masking, the generation counters, and the
    // window-boundary bookkeeping on top of the routed loop.
    let failures = LifecycleSchedule::empty()
        .with_event(LifecycleEvent::fail_stop(8.0, 0))
        .with_event(LifecycleEvent::recover(12.0, 0));
    let spec = PipelineSpec::new(vec![ReplicaGroup::replicated("worker", 4, 6)])
        .with_group_lifecycle(0, failures)
        .with_stage(StageSpec::new("rank", 0, 1, 0.02))
        .unwrap();
    let arrivals = DiurnalArrivals::new(100.0, 900.0, 60.0);
    let cfg = LifecycleConfig::new().with_window(2.0);

    let mut group = c.benchmark_group("qsim_lifecycle");
    group.bench_function("diurnal_failures_10000q", |b| {
        b.iter(|| {
            black_box(
                spec.serve_lifecycle(&arrivals, &Fifo, &JoinShortestQueue, 10_000, 7, &cfg)
                    .expect("replica 0 recovers, so the run cannot strand work"),
            )
        })
    });
    group.finish();
}

fn bench_qsim_multipath(c: &mut Criterion) {
    // The v8 multi-path admission loop under brown-out: a three-path
    // degradation ladder over one shared fleet, offered 1.5x the
    // primary path's capacity, with the load-adaptive policy walking
    // the ladder — the per-arrival cost of the admission probe, the
    // path-entry redirect, and the per-path accounting on top of the
    // routed loop.
    let paths = PathSet::new(vec![ReplicaGroup::replicated("worker", 8, 1)])
        .with_path("full", 1.00, vec![StageSpec::new("rm-large", 0, 1, 0.010)])
        .unwrap()
        .with_path("mid", 0.92, vec![StageSpec::new("rm-med", 0, 1, 0.004)])
        .unwrap()
        .with_path("lite", 0.80, vec![StageSpec::new("rm-small", 0, 1, 0.0015)])
        .unwrap();
    let arrivals = PoissonArrivals::new(1_200.0);
    let admission = LoadAdaptive::new(1.5, 0.75);
    let cfg = LifecycleConfig::new();

    let mut group = c.benchmark_group("qsim_multipath");
    group.bench_function("brownout_ladder3_10000q", |b| {
        b.iter(|| {
            black_box(
                serve_multipath(
                    &paths,
                    &arrivals,
                    &Fifo,
                    &JoinShortestQueue,
                    &admission,
                    10_000,
                    7,
                    &cfg,
                )
                .expect("no lifecycle schedule, so the run cannot strand work"),
            )
        })
    });
    group.finish();
}

fn bench_qsim_resilience(c: &mut Criterion) {
    // The v9 resilience loop on a gray-failing fleet: one of four
    // replicas limps at 25% speed from t = 0 while round-robin keeps
    // feeding it, with the full client-side defense stack armed — a
    // 250 ms timeout, budgeted 2-retry backoff, and a 30 ms hedge —
    // the per-event cost of timeout arming, lane bookkeeping, carcass
    // discard, and hedge dispatch on top of the routed loop.
    let spec = PipelineSpec::new(vec![ReplicaGroup::replicated("worker", 1, 4)])
        .with_group_lifecycle(
            0,
            LifecycleSchedule::empty().with_event(LifecycleEvent::degrade(0.0, 0, 0.25)),
        )
        .with_stage(StageSpec::new("rank", 0, 1, 0.010))
        .unwrap();
    let arrivals = PoissonArrivals::new(150.0);
    let cfg = LifecycleConfig::new();
    let resilience = ResilienceConfig::new()
        .with_timeout(0.250)
        .with_retry(RetryPolicy::new(3, 0.020, 2.0).with_budget(RetryBudget::new(50.0, 0.1)))
        .with_hedge(HedgePolicy::after(0.030));

    let mut group = c.benchmark_group("qsim_resilience");
    group.bench_function("hedged_limp_10000q", |b| {
        b.iter(|| {
            black_box(
                spec.serve_resilient(&arrivals, &Fifo, &RoundRobin, 10_000, 7, &cfg, &resilience)
                    .expect("degrades never strand work"),
            )
        })
    });
    group.finish();
}

fn bench_cluster_sweep(c: &mut Criterion) {
    // The scheduler's replica-grid sweep: the cross product that
    // motivated budget pruning. One worker isolates simulation work
    // from thread-pool scheduling; minimal quality sampling keeps the
    // focus on the queueing simulations the budgets control.
    let mut settings = SchedulerSettings::quick();
    settings.quality_queries = 5;
    settings.sim_queries = 6_000;
    settings.replica_options = vec![1, 2, 4];
    settings.workers = Some(1);
    let pool: Vec<Arc<dyn Backend>> = vec![Arc::new(CpuModel::cascade_lake())];
    let interconnect = PcieModel::measured();

    let mut group = c.benchmark_group("sweep");
    let full = Scheduler::new(settings.clone());
    group.bench_function("replica_grid/full", |b| {
        b.iter(|| {
            black_box(full.explore_pool_with_stats(
                black_box(2_000.0),
                2,
                &pool,
                1,
                None,
                &interconnect,
            ))
        })
    });
    settings.sweep_budget = SweepBudget::halving(settings.sim_queries);
    let halving = Scheduler::new(settings);
    group.bench_function("replica_grid/halving", |b| {
        b.iter(|| {
            black_box(halving.explore_pool_with_stats(
                black_box(2_000.0),
                2,
                &pool,
                1,
                None,
                &interconnect,
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_qsim,
    bench_qsim_v2,
    bench_qsim_cluster,
    bench_qsim_scale,
    bench_qsim_lifecycle,
    bench_qsim_multipath,
    bench_qsim_resilience,
    bench_cluster_sweep
);
criterion_main!(benches);
