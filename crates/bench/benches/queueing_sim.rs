//! Criterion bench: the discrete-event queueing simulator — the backbone
//! of every at-scale experiment — in both its legacy per-query form and
//! the batching-aware v2 serving core.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use recpipe_data::MmppArrivals;
use recpipe_qsim::{BatchModel, BatchWindow, PipelineSpec, ResourceSpec, StageSpec};

fn two_stage() -> PipelineSpec {
    PipelineSpec::new(vec![
        ResourceSpec::new("cpu", 64),
        ResourceSpec::new("gpu", 1),
    ])
    .with_stage(StageSpec::new("front", 1, 1, 0.0012))
    .unwrap()
    .with_stage(StageSpec::new("back", 0, 2, 0.008))
    .unwrap()
}

fn bench_qsim(c: &mut Criterion) {
    let spec = two_stage();
    let mut group = c.benchmark_group("qsim");
    for &queries in &[1_000usize, 10_000] {
        group.bench_function(format!("two_stage_{queries}q"), |b| {
            b.iter(|| black_box(spec.simulate(black_box(300.0), queries, 7)))
        });
    }
    group.finish();
}

fn bench_qsim_v2(c: &mut Criterion) {
    // The v2 serving core with everything turned on: batched stages,
    // bursty MMPP arrivals, and a batch-window policy (timer events,
    // priority queues, batch formation).
    let spec = PipelineSpec::new(vec![
        ResourceSpec::new("cpu", 64),
        ResourceSpec::new("gpu", 1),
    ])
    .with_stage(StageSpec::new("front", 1, 1, 0.0012).with_batch(BatchModel::new(16, 0.15)))
    .unwrap()
    .with_stage(StageSpec::new("back", 0, 2, 0.008).with_batch(BatchModel::new(8, 0.8)))
    .unwrap();
    let arrivals = MmppArrivals::new(100.0, 900.0, 0.4, 0.1);
    let policy = BatchWindow::new(0.002);

    let mut group = c.benchmark_group("qsim_v2");
    for &queries in &[1_000usize, 10_000] {
        group.bench_function(format!("batched_mmpp_window_{queries}q"), |b| {
            b.iter(|| black_box(spec.serve(&arrivals, &policy, queries, 7)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_qsim, bench_qsim_v2);
criterion_main!(benches);
