//! Criterion bench: the discrete-event queueing simulator — the backbone
//! of every at-scale experiment.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use recpipe_qsim::{PipelineSpec, ResourceSpec, StageSpec};

fn bench_qsim(c: &mut Criterion) {
    let two_stage = PipelineSpec::new(vec![
        ResourceSpec::new("cpu", 64),
        ResourceSpec::new("gpu", 1),
    ])
    .with_stage(StageSpec::new("front", 1, 1, 0.0012))
    .unwrap()
    .with_stage(StageSpec::new("back", 0, 2, 0.008))
    .unwrap();

    let mut group = c.benchmark_group("qsim");
    for &queries in &[1_000usize, 10_000] {
        group.bench_function(format!("two_stage_{queries}q"), |b| {
            b.iter(|| black_box(two_stage.simulate(black_box(300.0), queries, 7)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_qsim);
criterion_main!(benches);
