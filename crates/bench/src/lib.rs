//! Shared helpers for the RecPipe experiment binaries.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! regenerates it:
//!
//! ```text
//! cargo run --release -p recpipe-bench --bin tab01_models
//! cargo run --release -p recpipe-bench --bin fig03_quality
//! ...
//! ```
//!
//! This library crate holds the small utilities those binaries share.

use recpipe_core::{PipelineConfig, StageConfig};
use recpipe_models::ModelKind;

/// Builds the paper's canonical Criteo two-stage pipeline:
/// RMsmall@4096 → RMlarge@`mid` → 64 served.
///
/// # Examples
///
/// ```
/// let p = recpipe_bench::criteo_two_stage(256);
/// assert_eq!(p.num_stages(), 2);
/// ```
pub fn criteo_two_stage(mid: u64) -> PipelineConfig {
    PipelineConfig::builder()
        .stage(StageConfig::new(ModelKind::RmSmall, 4096, mid))
        .stage(StageConfig::new(ModelKind::RmLarge, mid, 64))
        .build()
        .expect("canonical two-stage pipeline is valid")
}

/// Builds the paper's canonical Criteo single-stage pipeline:
/// RMlarge@`items` → 64 served.
pub fn criteo_single_stage(items: u64) -> PipelineConfig {
    PipelineConfig::single_stage(ModelKind::RmLarge, items, 64)
        .expect("canonical single-stage pipeline is valid")
}

/// Builds the canonical Criteo three-stage pipeline:
/// RMsmall@4096 → RMmed@512 → RMlarge@128 → 64.
pub fn criteo_three_stage() -> PipelineConfig {
    PipelineConfig::builder()
        .stage(StageConfig::new(ModelKind::RmSmall, 4096, 512))
        .stage(StageConfig::new(ModelKind::RmMed, 512, 128))
        .stage(StageConfig::new(ModelKind::RmLarge, 128, 64))
        .build()
        .expect("canonical three-stage pipeline is valid")
}

/// Formats seconds as milliseconds with two decimals.
pub fn ms(seconds: f64) -> String {
    format!("{:.2}", seconds * 1e3)
}

/// Formats an NDCG fraction in the paper's percent convention.
pub fn ndcg_pct(ndcg: f64) -> String {
    format!("{:.2}", ndcg * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_pipelines_are_valid() {
        assert_eq!(criteo_two_stage(256).num_stages(), 2);
        assert_eq!(criteo_single_stage(4096).num_stages(), 1);
        assert_eq!(criteo_three_stage().num_stages(), 3);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(0.0123), "12.30");
        assert_eq!(ndcg_pct(0.9225), "92.25");
    }
}
