//! Regenerates **Table 1**: the Pareto-optimal recommendation models —
//! embedding dimension, MLP towers, model size, FLOPs, and error.
//!
//! Paper reference: RMsmall/RMmed/RMlarge at 1.1K/2.0K/180K FLOPs,
//! 1/4/8 GB, 21.36/21.26/21.13% error.

use recpipe_core::Table;
use recpipe_data::DatasetKind;
use recpipe_models::{error_percent_from_flops, ModelConfig, ModelKind};

fn dims(chain: &[usize]) -> String {
    chain
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("-")
}

fn main() {
    println!("Table 1: Pareto-optimal recommendation models (Criteo / DLRM)\n");
    let mut table = Table::new(vec![
        "model",
        "embedding dim",
        "MLP-bottom",
        "MLP-top",
        "model size (GB)",
        "MLP FLOPs",
        "model error (%)",
    ]);
    for kind in ModelKind::ALL {
        let cfg = ModelConfig::for_kind(kind, DatasetKind::CriteoKaggle);
        let cost = cfg.cost();
        table.row(vec![
            kind.to_string(),
            cfg.embedding_dim.to_string(),
            dims(&cfg.mlp_bottom),
            dims(&cfg.mlp_top),
            format!("{:.1}", cost.model_bytes as f64 / 1e9),
            cost.mlp_flops_per_item.to_string(),
            format!("{:.2}", error_percent_from_flops(cost.mlp_flops_per_item)),
        ]);
    }
    println!("{table}");
    println!("Paper: 1.1K/2.0K/180K FLOPs; 1/4/8 GB; 21.36/21.26/21.13% error.");
}
