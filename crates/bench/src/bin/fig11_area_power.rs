//! Regenerates **Figure 11**: area and power breakdown of RPAccel versus
//! the baseline TPU-like accelerator (+11% area, +36% power).

use recpipe_accel::AreaPowerModel;
use recpipe_core::Table;

fn main() {
    let model = AreaPowerModel::paper_default();
    let (base_area, base_power) = model.baseline_totals();
    let (rp_area, rp_power) = model.rpaccel_totals();

    println!("Figure 11: RPAccel area/power breakdown (12 nm-class model)\n");
    let mut table = Table::new(vec![
        "component",
        "area (mm^2)",
        "area share",
        "power (W)",
        "power share",
        "RPAccel-only",
    ]);
    for c in model.components() {
        table.row(vec![
            c.name.clone(),
            format!("{:.2}", c.area_mm2),
            format!("{:.1}%", c.area_mm2 / rp_area * 100.0),
            format!("{:.2}", c.power_w),
            format!("{:.1}%", c.power_w / rp_power * 100.0),
            if c.rpaccel_only { "yes" } else { "" }.to_string(),
        ]);
    }
    println!("{table}");

    let (area_ovh, power_ovh) = model.overheads();
    println!(
        "baseline: {base_area:.1} mm^2, {base_power:.1} W\nRPAccel:  {rp_area:.1} mm^2, {rp_power:.1} W"
    );
    println!(
        "overhead: +{:.1}% area (paper: +11%), +{:.1}% power (paper: +36%)",
        area_ovh * 100.0,
        power_ovh * 100.0
    );
}
