//! Regenerates **Figure 1(c)**: at iso-quality, decomposing the
//! monolithic model into a two-stage pipeline reduces compute demand
//! ~7.5x and embedding memory accesses ~4.0x.

use recpipe_bench::{criteo_single_stage, criteo_two_stage};
use recpipe_core::{QualityEvaluator, Table};

fn main() {
    let single = criteo_single_stage(4096);
    // Iso-quality two-stage: RMsmall@4096 -> RMlarge@512.
    let multi = criteo_two_stage(512);

    let quality = QualityEvaluator::criteo_like(64).queries(500);
    let q_single = quality.evaluate(&single);
    let q_multi = quality.evaluate(&multi);

    let mut table = Table::new(vec!["design", "NDCG", "GFLOPs/query", "embedding MB/query"]);
    for (p, q) in [(&single, &q_single), (&multi, &q_multi)] {
        table.row(vec![
            p.describe(),
            format!("{:.2}", q.ndcg_percent()),
            format!("{:.3}", p.total_flops() as f64 / 1e9),
            format!("{:.2}", p.total_embedding_bytes() as f64 / 1e6),
        ]);
    }
    println!("Figure 1(c): multi-stage resource savings at iso-quality\n");
    println!("{table}");
    println!(
        "compute reduction: {:.1}x (paper: 7.5x)\nmemory reduction:  {:.1}x (paper: 4.0x)",
        single.total_flops() as f64 / multi.total_flops() as f64,
        single.total_embedding_bytes() as f64 / multi.total_embedding_bytes() as f64,
    );
    println!(
        "quality delta: {:+.2} NDCG points (iso-quality)",
        q_multi.ndcg_percent() - q_single.ndcg_percent()
    );
}
