//! Regenerates **Figure 7**: multi-stage pipelines on CPUs.
//!
//! * Left: single-stage quality vs tail latency per model tier.
//! * Center: one/two/three-stage Pareto frontiers at QPS 500.
//! * Right: latency vs throughput at iso-quality (NDCG 92.25-class).

use recpipe_bench::{criteo_single_stage, criteo_three_stage, criteo_two_stage};
use recpipe_core::{Engine, PipelineConfig, Placement, Scheduler, SchedulerSettings, Table};
use recpipe_models::ModelKind;

fn main() {
    println!("Figure 7 (left): single-stage quality vs p99 on CPU, QPS 500\n");
    let mut left = Table::new(vec!["model", "items", "NDCG", "p99 (ms)"]);
    for kind in ModelKind::ALL {
        for items in [1024u64, 2048, 4096] {
            let pipeline = PipelineConfig::single_stage(kind, items, 64).unwrap();
            let engine = Engine::commodity(pipeline)
                .placement(Placement::cpu_only(1))
                .load(500.0)
                .sim_queries(4_000)
                .build()
                .expect("valid single-stage engine");
            let outcome = engine.evaluate();
            left.row(vec![
                kind.to_string(),
                items.to_string(),
                format!("{:.2}", outcome.ndcg_percent()),
                format!("{:.2}", outcome.p99_ms()),
            ]);
        }
    }
    println!("{left}");

    let settings = SchedulerSettings::paper_default();
    println!(
        "Figure 7 (center): Pareto frontier per stage count at QPS 500 \
         ({} sweep workers)\n",
        recpipe_core::worker_threads(settings.workers)
    );
    let scheduler = Scheduler::new(settings);
    let points = scheduler.explore_cpu(500.0, 3);
    let mut center = Table::new(vec!["stages", "pipeline", "mapping", "NDCG", "p99 (ms)"]);
    for stages in 1..=3usize {
        let subset: Vec<_> = points
            .iter()
            .filter(|p| p.pipeline.num_stages() == stages)
            .cloned()
            .collect();
        let mut frontier = Scheduler::pareto(subset).into_vec();
        frontier.sort_by(|a, b| b.ndcg.partial_cmp(&a.ndcg).unwrap());
        for p in frontier.iter().take(3) {
            center.row(vec![
                stages.to_string(),
                p.pipeline.describe(),
                p.mapping.clone(),
                format!("{:.2}", p.ndcg_percent()),
                format!("{:.2}", p.p99_ms()),
            ]);
        }
    }
    println!("{center}");

    println!("Figure 7 (right): iso-quality latency vs offered load\n");
    let designs = [
        ("1-stage", criteo_single_stage(4096), Placement::cpu_only(1)),
        ("2-stage", criteo_two_stage(256), Placement::cpu_only(2)),
        ("3-stage", criteo_three_stage(), Placement::cpu_only(3)),
    ];
    let engines: Vec<Engine> = designs
        .iter()
        .map(|(_, pipeline, placement)| {
            Engine::commodity(pipeline.clone())
                .placement(placement.clone())
                .sim_queries(4_000)
                .seed(7)
                .build()
                .expect("valid CPU engine")
        })
        .collect();
    let mut right = Table::new(vec!["QPS", "1-stage p99", "2-stage p99", "3-stage p99"]);
    for qps in [100.0, 250.0, 500.0, 1000.0, 2000.0] {
        let mut row = vec![format!("{qps:.0}")];
        for engine in &engines {
            if engine.max_qps() < qps {
                row.push("saturated".into());
            } else {
                // Latency-only table: serve() skips the (unused)
                // quality evaluation.
                let mut sim = engine.serve(qps, 4_000);
                row.push(format!("{:.2} ms", sim.p99_seconds() * 1e3));
            }
        }
        right.row(row);
    }
    println!("{right}");
    println!(
        "Paper shape: two-stage cuts tail latency ~4.4x vs single-stage at\n\
         QPS 500; three stages add queueing overhead between stages."
    );
}
