//! CI bench smoke check: re-times the hottest queueing-simulator
//! benches and fails (non-zero exit) if any regressed more than 2x
//! against the checked-in `BENCH_pr9.json` baseline, and holds the
//! 10M-query sharded trace replay to its single-digit-second
//! (machine-normalized) budget.
//!
//! Baselines were recorded on one developer machine, while CI runs on
//! shared runners with very different single-core throughput — so
//! comparing absolute wall-clock would gate on machine identity, not
//! on the code. To factor the machine out, the binary first times a
//! fixed CPU-bound *calibration* workload (pure integer mixing, no
//! simulator code) whose baseline is recorded alongside the bench
//! baselines; each bench's threshold is scaled by the
//! measured/baseline calibration ratio. A runner half as fast as the
//! recording machine is expected to take ~2x on calibration and
//! benches alike, leaving the regression ratio near 1. The 2x
//! threshold on top of that is deliberately generous — only a genuine
//! hot-loop regression (an accidental re-introduction of per-event
//! allocation, a heap blow-up) trips it. Run locally with:
//!
//! ```text
//! cargo run --release -p recpipe-bench --bin bench_smoke
//! ```

use std::time::{Duration, Instant};

use recpipe_data::{DiurnalArrivals, PoissonArrivals, TraceArrivals};
use recpipe_qsim::{
    serve_multipath, BatchModel, ExpectedWait, Fifo, HedgePolicy, JoinShortestQueue,
    LifecycleConfig, LifecycleEvent, LifecycleSchedule, LoadAdaptive, PathSet, PipelineSpec,
    ReplicaGroup, ReplicaProfile, ResilienceConfig, ResourceSpec, RetryBudget, RetryPolicy,
    RoundRobin, StageSpec,
};

/// Largest tolerated machine-normalized measured/baseline ratio.
const MAX_REGRESSION: f64 = 2.0;

/// Absolute machine-normalized wall-clock budget for the one-shot
/// 10M-query sharded trace replay: single-digit seconds on the
/// baseline-recording machine.
const SCALE_BUDGET_SECONDS: f64 = 10.0;

/// Bounds on the calibration-derived machine speed factor: scaling is
/// allowed to absorb up to a 4x-slower or 4x-faster machine, beyond
/// which something other than CPU speed is wrong and the raw ratio
/// should surface it.
const MACHINE_FACTOR_RANGE: (f64, f64) = (0.25, 4.0);

/// Absolute machine-normalized wall-clock budget for a full `simlint`
/// workspace scan: the analysis pass gates every CI run, so it must
/// stay sub-second (it is ~tens of milliseconds today).
const SIMLINT_BUDGET_SECONDS: f64 = 1.0;

/// Fixed CPU-bound calibration workload: a splitmix64 mixing loop that
/// exercises no simulator code, so its runtime tracks the machine, not
/// the repository. Must stay byte-for-byte stable across PRs or
/// recorded calibration baselines lose meaning.
fn calibration_workload() -> u64 {
    let mut z: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut acc: u64 = 0;
    for _ in 0..2_000_000u32 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut x = z;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        acc ^= x ^ (x >> 31);
    }
    acc
}

/// Times `f` the way the criterion shim does: a short warmup to size
/// the measurement window, then mean wall-clock over that window.
fn measure_ns_per_iter(mut f: impl FnMut()) -> f64 {
    let warmup = Duration::from_millis(50);
    let start = Instant::now();
    let mut warm_iters: u64 = 0;
    while start.elapsed() < warmup {
        f();
        warm_iters += 1;
    }
    let per_iter = start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

    let target = Duration::from_millis(400);
    let iters = ((target.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(10, 1_000_000);
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Extracts `benches.<name>.ns_per_iter` from the baseline JSON with a
/// dependency-free string scan (the offline serde shim cannot parse).
fn baseline_ns_per_iter(json: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\"");
    let at = json.find(&key)?;
    let tail = &json[at + key.len()..];
    let field = "\"ns_per_iter\":";
    let at = tail.find(field)?;
    let tail = tail[at + field.len()..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn two_stage() -> PipelineSpec {
    // Mirrors benches/queueing_sim.rs `qsim/two_stage_10000q`.
    PipelineSpec::new(vec![
        ResourceSpec::new("cpu", 64),
        ResourceSpec::new("gpu", 1),
    ])
    .with_stage(StageSpec::new("front", 1, 1, 0.0012))
    .expect("valid stage")
    .with_stage(StageSpec::new("back", 0, 2, 0.008))
    .expect("valid stage")
}

fn jsq_fleet() -> PipelineSpec {
    // Mirrors benches/queueing_sim.rs `qsim_cluster/routed_10000q/jsq`.
    PipelineSpec::new(vec![ReplicaGroup::replicated("worker", 1, 4)])
        .with_stage(StageSpec::new("front", 0, 1, 0.002))
        .expect("valid stage")
        .with_stage(StageSpec::new("back", 0, 1, 0.010))
        .expect("valid stage")
}

fn two_gen_fleet() -> PipelineSpec {
    // Mirrors benches/queueing_sim.rs
    // `qsim_cluster/two_gen_10000q/expected_wait`: the heterogeneous
    // path (per-replica speeds + the remaining-work estimator probe).
    PipelineSpec::new(vec![ReplicaGroup::heterogeneous(
        "worker",
        vec![
            ReplicaProfile::baseline(1),
            ReplicaProfile::baseline(1),
            ReplicaProfile::new(1, 0.4),
            ReplicaProfile::new(1, 0.4),
        ],
    )])
    .with_stage(StageSpec::new("front", 0, 1, 0.002))
    .expect("valid stage")
    .with_stage(StageSpec::new("back", 0, 1, 0.010))
    .expect("valid stage")
}

fn diurnal_failures_fleet() -> PipelineSpec {
    // Mirrors benches/queueing_sim.rs
    // `qsim_lifecycle/diurnal_failures_10000q`: the lifecycle-aware
    // loop (availability masking, fail-stop requeue, windowed
    // telemetry) under a diurnal rate swing.
    PipelineSpec::new(vec![ReplicaGroup::replicated("worker", 4, 6)])
        .with_group_lifecycle(
            0,
            LifecycleSchedule::empty()
                .with_event(LifecycleEvent::fail_stop(8.0, 0))
                .with_event(LifecycleEvent::recover(12.0, 0)),
        )
        .with_stage(StageSpec::new("rank", 0, 1, 0.02))
        .expect("valid stage")
}

fn brownout_ladder() -> PathSet {
    // Mirrors benches/queueing_sim.rs
    // `qsim_multipath/brownout_ladder3_10000q`: the multi-path
    // admission loop walking a three-path degradation ladder at 1.5x
    // the primary path's capacity.
    PathSet::new(vec![ReplicaGroup::replicated("worker", 8, 1)])
        .with_path("full", 1.00, vec![StageSpec::new("rm-large", 0, 1, 0.010)])
        .expect("full path fits the fleet")
        .with_path("mid", 0.92, vec![StageSpec::new("rm-med", 0, 1, 0.004)])
        .expect("mid path fits the fleet")
        .with_path("lite", 0.80, vec![StageSpec::new("rm-small", 0, 1, 0.0015)])
        .expect("lite path fits the fleet")
}

fn hedged_limp_fleet() -> PipelineSpec {
    // Mirrors benches/queueing_sim.rs
    // `qsim_resilience/hedged_limp_10000q`: the resilience loop on a
    // gray-failing fleet (one of four replicas limping at 25% speed)
    // with timeout, budgeted retry, and hedging all armed.
    PipelineSpec::new(vec![ReplicaGroup::replicated("worker", 1, 4)])
        .with_group_lifecycle(
            0,
            LifecycleSchedule::empty().with_event(LifecycleEvent::degrade(0.0, 0, 0.25)),
        )
        .with_stage(StageSpec::new("rank", 0, 1, 0.010))
        .expect("valid stage")
}

/// Mirrors benches/queueing_sim.rs `qsim_scale/trace_replay_10M`: the
/// sharded 10M-query recorded-trace replay.
fn scale_spec_and_trace() -> (PipelineSpec, TraceArrivals) {
    let filter = ReplicaGroup::heterogeneous(
        "filter",
        vec![
            ReplicaProfile::baseline(1),
            ReplicaProfile::baseline(1),
            ReplicaProfile::new(1, 0.6),
            ReplicaProfile::new(1, 0.6),
        ],
    );
    let rank = ReplicaGroup::replicated("rank", 1, 4);
    let spec = PipelineSpec::new(vec![filter, rank])
        .with_stage(StageSpec::new("filter", 0, 1, 0.002).with_batch(BatchModel::new(8, 0.25)))
        .expect("valid stage")
        .with_stage(StageSpec::new("rank", 1, 1, 0.001).with_batch(BatchModel::new(8, 0.25)))
        .expect("valid stage");
    let mut z = 42u64;
    let mut t = 0.0f64;
    let times: Vec<f64> = (0..100_000)
        .map(|_| {
            z = z
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            t += ((z >> 33) as f64 / (1u64 << 31) as f64) * 2e-3;
            t
        })
        .collect();
    let rate = 0.7 * spec.max_qps_at_full_batch();
    (spec, TraceArrivals::new(times).with_rate(rate))
}

fn main() {
    let baseline_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr9.json");
    let json = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));

    // Machine normalization: how much slower/faster this machine runs
    // the fixed calibration loop than the baseline recorder did.
    let cal_name = "bench_smoke/calibration";
    let cal_baseline = baseline_ns_per_iter(&json, cal_name)
        .unwrap_or_else(|| panic!("baseline for {cal_name} missing from {baseline_path}"));
    let cal_measured = measure_ns_per_iter(|| {
        std::hint::black_box(calibration_workload());
    });
    let machine_factor =
        (cal_measured / cal_baseline).clamp(MACHINE_FACTOR_RANGE.0, MACHINE_FACTOR_RANGE.1);
    println!(
        "{cal_name}: {cal_measured:.0} ns/iter vs baseline {cal_baseline:.0} \
         (machine factor x{machine_factor:.2})"
    );

    let spec = two_stage();
    let fleet = jsq_fleet();
    let arrivals = PoissonArrivals::new(0.9 * fleet.max_qps());
    let two_gen = two_gen_fleet();
    let two_gen_arrivals = PoissonArrivals::new(0.9 * two_gen.max_qps());
    let lifecycle_fleet = diurnal_failures_fleet();
    let lifecycle_arrivals = DiurnalArrivals::new(100.0, 900.0, 60.0);
    let lifecycle_cfg = LifecycleConfig::new().with_window(2.0);
    let ladder = brownout_ladder();
    let ladder_arrivals = PoissonArrivals::new(1_200.0);
    let ladder_admission = LoadAdaptive::new(1.5, 0.75);
    let ladder_cfg = LifecycleConfig::new();
    let limp_fleet = hedged_limp_fleet();
    let limp_arrivals = PoissonArrivals::new(150.0);
    let limp_cfg = LifecycleConfig::new();
    let limp_resilience = ResilienceConfig::new()
        .with_timeout(0.250)
        .with_retry(RetryPolicy::new(3, 0.020, 2.0).with_budget(RetryBudget::new(50.0, 0.1)))
        .with_hedge(HedgePolicy::after(0.030));
    type Check = (&'static str, Box<dyn FnMut()>);
    let checks: Vec<Check> = vec![
        (
            "qsim/two_stage_10000q",
            Box::new(move || {
                std::hint::black_box(spec.simulate(300.0, 10_000, 7));
            }),
        ),
        (
            "qsim_cluster/routed_10000q/jsq",
            Box::new(move || {
                std::hint::black_box(fleet.serve_routed(
                    &arrivals,
                    &Fifo,
                    &JoinShortestQueue,
                    10_000,
                    7,
                ));
            }),
        ),
        (
            "qsim_cluster/two_gen_10000q/expected_wait",
            Box::new(move || {
                std::hint::black_box(two_gen.serve_routed(
                    &two_gen_arrivals,
                    &Fifo,
                    &ExpectedWait,
                    10_000,
                    7,
                ));
            }),
        ),
        (
            "qsim_lifecycle/diurnal_failures_10000q",
            Box::new(move || {
                std::hint::black_box(
                    lifecycle_fleet
                        .serve_lifecycle(
                            &lifecycle_arrivals,
                            &Fifo,
                            &JoinShortestQueue,
                            10_000,
                            7,
                            &lifecycle_cfg,
                        )
                        .expect("replica 0 recovers, so the run cannot strand work"),
                );
            }),
        ),
        (
            "qsim_multipath/brownout_ladder3_10000q",
            Box::new(move || {
                std::hint::black_box(
                    serve_multipath(
                        &ladder,
                        &ladder_arrivals,
                        &Fifo,
                        &JoinShortestQueue,
                        &ladder_admission,
                        10_000,
                        7,
                        &ladder_cfg,
                    )
                    .expect("no lifecycle schedule, so the run cannot strand work"),
                );
            }),
        ),
        (
            "qsim_resilience/hedged_limp_10000q",
            Box::new(move || {
                std::hint::black_box(
                    limp_fleet
                        .serve_resilient(
                            &limp_arrivals,
                            &Fifo,
                            &RoundRobin,
                            10_000,
                            7,
                            &limp_cfg,
                            &limp_resilience,
                        )
                        .expect("degrades never strand work"),
                );
            }),
        ),
    ];

    let mut failed = false;
    for (name, f) in checks {
        let baseline = baseline_ns_per_iter(&json, name)
            .unwrap_or_else(|| panic!("baseline for {name} missing from {baseline_path}"));
        let measured = measure_ns_per_iter(f);
        let ratio = measured / (baseline * machine_factor);
        let verdict = if ratio > MAX_REGRESSION {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{name}: {measured:.0} ns/iter vs baseline {baseline:.0} \
             (normalized x{ratio:.2}) {verdict}"
        );
    }
    // Scale check, measured once (a full repetition loop would dwarf
    // the rest of the smoke): the 10M-query sharded replay must stay
    // within the regression envelope of its baseline AND inside the
    // absolute single-digit-second budget, both machine-normalized.
    let scale_name = "qsim_scale/trace_replay_10M";
    let scale_baseline = baseline_ns_per_iter(&json, scale_name)
        .unwrap_or_else(|| panic!("baseline for {scale_name} missing from {baseline_path}"));
    let (spec, trace) = scale_spec_and_trace();
    let start = Instant::now();
    std::hint::black_box(spec.serve_routed_sharded(&trace, &Fifo, &RoundRobin, 10_000_000, 7, 0));
    let measured = start.elapsed().as_nanos() as f64;
    let ratio = measured / (scale_baseline * machine_factor);
    let normalized_seconds = measured / machine_factor / 1e9;
    let over_budget = normalized_seconds >= SCALE_BUDGET_SECONDS;
    let verdict = if ratio > MAX_REGRESSION || over_budget {
        failed = true;
        "REGRESSED"
    } else {
        "ok"
    };
    println!(
        "{scale_name}: {measured:.0} ns vs baseline {scale_baseline:.0} \
         (normalized x{ratio:.2}, {normalized_seconds:.2}s of {SCALE_BUDGET_SECONDS}s budget) \
         {verdict}"
    );

    // simlint wall-clock: the static-analysis gate runs on every CI
    // build, so its full-workspace scan is held to an absolute
    // (machine-normalized) sub-second budget. No baseline ratio — the
    // scan grows with the tree, and the budget is the contract.
    let workspace_root = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let start = Instant::now();
    let report = recpipe_analysis::analyze_workspace(
        workspace_root,
        &recpipe_analysis::rules::Config::default(),
    )
    .expect("workspace sources readable");
    let simlint_seconds = start.elapsed().as_secs_f64();
    let simlint_normalized = simlint_seconds / machine_factor;
    let simlint_verdict = if simlint_normalized >= SIMLINT_BUDGET_SECONDS {
        failed = true;
        "REGRESSED"
    } else {
        "ok"
    };
    println!(
        "simlint/workspace_scan: {:.0} ms over {} files ({:.3}s normalized of \
         {SIMLINT_BUDGET_SECONDS}s budget, {} findings) {simlint_verdict}",
        simlint_seconds * 1e3,
        report.files,
        simlint_normalized,
        report.findings.len()
    );

    if failed {
        eprintln!(
            "bench smoke failed: a hot-loop bench regressed more than {MAX_REGRESSION}x \
             after machine normalization, or the 10M replay left its \
             {SCALE_BUDGET_SECONDS}s budget"
        );
        std::process::exit(1);
    }
}
