//! Regenerates the **Figure 5 (right)** ablation: RPAccel's five
//! optimizations applied cumulatively over the baseline accelerator.
//!
//! * O.1 multi-stage decomposition (paper: 2.5x latency)
//! * O.2 on-chip top-k filtering (1.5x latency)
//! * O.3 reconfigurable sub-arrays (2x throughput)
//! * O.4 dual embedding caches
//! * O.5 sub-batch pipelining (1.3x latency)
//! * overall: ~5x latency and ~10x throughput

use recpipe_accel::{
    BaselineAccel, EmbeddingCacheConfig, Partition, RpAccel, RpAccelConfig, SubBatchSchedule,
};
use recpipe_core::Table;
use recpipe_data::DatasetKind;
use recpipe_hwsim::StageWork;
use recpipe_models::{ModelConfig, ModelKind};

fn criteo(kind: ModelKind, items: u64) -> StageWork {
    StageWork::new(
        ModelConfig::for_kind(kind, DatasetKind::CriteoKaggle),
        items,
    )
}

fn main() {
    let single = criteo(ModelKind::RmLarge, 4096);
    let two_stage = vec![
        criteo(ModelKind::RmSmall, 4096),
        criteo(ModelKind::RmLarge, 512),
    ];

    let baseline = BaselineAccel::paper_default();
    let base_latency = baseline.query_latency(&single, 64);
    let base_profile = baseline.service_profile(&single, 64);

    // Ablation steps built by progressively enabling features.
    let no_cache = EmbeddingCacheConfig {
        lookahead_bytes: 0,
        prefetch_coverage: 0.0,
        ..EmbeddingCacheConfig::paper_default()
    };

    // O.1: multi-stage on the monolithic array, still no accel top-k
    // (host round trip), no dual cache, no pipelining.
    let mut o1_cfg = RpAccelConfig::paper_default(Partition::monolithic());
    o1_cfg.schedule = SubBatchSchedule::unpipelined();
    o1_cfg.cache = no_cache;
    o1_cfg.gather_efficiency = baseline.gather_efficiency;
    let o1 = RpAccel::new(o1_cfg.clone());
    let host_rt = baseline.host_filter_time(4096, 512);
    let o1_latency = o1.query_latency(&two_stage) + host_rt;

    // O.2: + on-chip top-k (drop the host round trip).
    let o2_latency = o1.query_latency(&two_stage);

    // O.3: + reconfigurable sub-arrays (concurrent stages & queries).
    let mut o3_cfg = o1_cfg.clone();
    o3_cfg.partition = Partition::symmetric(8, 2);
    let o3 = RpAccel::new(o3_cfg.clone());
    let o3_latency = o3.query_latency(&two_stage);

    // O.4: + dual embedding caches (static + look-ahead, better gathers).
    let mut o4_cfg = o3_cfg.clone();
    o4_cfg.cache = EmbeddingCacheConfig::paper_default();
    o4_cfg.gather_efficiency =
        RpAccelConfig::paper_default(Partition::monolithic()).gather_efficiency;
    let o4 = RpAccel::new(o4_cfg.clone());
    let o4_latency = o4.query_latency(&two_stage);

    // O.5: + sub-batch pipelining.
    let mut o5_cfg = o4_cfg.clone();
    o5_cfg.schedule = SubBatchSchedule::paper_default();
    let o5 = RpAccel::new(o5_cfg);
    let o5_latency = o5.query_latency(&two_stage);
    let o5_profile = o5.service_profile(&two_stage);

    let mut table = Table::new(vec!["step", "latency (us)", "cumulative speedup"]);
    let mut rows = vec![("baseline (single-stage + host filter)", base_latency)];
    rows.push(("O.1 + multi-stage models", o1_latency));
    rows.push(("O.2 + on-chip top-k filter", o2_latency));
    rows.push(("O.3 + reconfigurable sub-arrays", o3_latency));
    rows.push(("O.4 + dual embedding caches", o4_latency));
    rows.push(("O.5 + sub-batch pipelining", o5_latency));
    for (name, latency) in &rows {
        table.row(vec![
            name.to_string(),
            format!("{:.0}", latency * 1e6),
            format!("{:.2}x", base_latency / latency),
        ]);
    }
    println!("Figure 5 (right): RPAccel ablation, two-stage Criteo query\n");
    println!("{table}");
    println!(
        "overall latency gain: {:.1}x (paper: ~5x)\nthroughput gain:      {:.1}x (paper: ~10x; caps {:.0} -> {:.0} QPS)",
        base_latency / o5_latency,
        o5_profile.max_qps() / base_profile.max_qps(),
        base_profile.max_qps(),
        o5_profile.max_qps(),
    );
}
