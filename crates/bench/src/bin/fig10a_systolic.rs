//! Regenerates **Figure 10(a)**: systolic-array size vs utilization and
//! cycles per model, and the monolithic-vs-reconfigurable utilization
//! comparison (~30% -> ~60%).

use recpipe_accel::{Partition, SystolicArray};
use recpipe_core::Table;
use recpipe_data::DatasetKind;
use recpipe_models::{ModelConfig, ModelKind};

fn main() {
    println!("Figure 10(a): array geometry vs utilization and cycles\n");
    let mut table = Table::new(vec!["array", "model", "cycles", "utilization"]);
    for dim in [8usize, 16, 32, 64, 128] {
        let array = SystolicArray::new(dim, dim, 250_000_000);
        for kind in ModelKind::ALL {
            let model = ModelConfig::for_kind(kind, DatasetKind::CriteoKaggle);
            let items = match kind {
                ModelKind::RmSmall => 4096,
                ModelKind::RmMed => 1024,
                ModelKind::RmLarge => 512,
            };
            table.row(vec![
                format!("{dim}x{dim}"),
                format!("{kind}@{items}"),
                array.model_cycles(&model, items).to_string(),
                format!("{:.1}%", array.model_utilization(&model, items) * 100.0),
            ]);
        }
    }
    println!("{table}");

    // Monolithic vs fissioned utilization on the two-stage mix.
    let small = ModelConfig::for_kind(ModelKind::RmSmall, DatasetKind::CriteoKaggle);
    let large = ModelConfig::for_kind(ModelKind::RmLarge, DatasetKind::CriteoKaggle);
    let mono = SystolicArray::paper_default();
    let mono_cycles = mono.model_cycles(&small, 4096) + mono.model_cycles(&large, 512);
    let total_macs = small.cost().flops_per_item * 4096 + large.cost().flops_per_item * 512;
    let mono_util = total_macs as f64 / (mono_cycles as f64 * 16384.0);

    let p = Partition::symmetric(8, 8);
    let f_arr = p.frontend()[0].as_array(250_000_000);
    let b_arr = p.backend()[0].as_array(250_000_000);
    let f_util = (small.cost().flops_per_item * 4096) as f64
        / (f_arr.model_cycles(&small, 4096) as f64 * f_arr.macs() as f64);
    let b_util = (large.cost().flops_per_item * 512) as f64
        / (b_arr.model_cycles(&large, 512) as f64 * b_arr.macs() as f64);

    println!(
        "monolithic 128x128 on the two-stage mix: {:.1}% utilization (paper ~30%)",
        mono_util * 100.0
    );
    println!(
        "reconfigured 8+8 sub-arrays:             {:.1}% utilization (paper ~60%)",
        (f_util + b_util) / 2.0 * 100.0
    );
}
