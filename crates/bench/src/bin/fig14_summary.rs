//! Regenerates **Figure 14**: the cross-dataset summary — p99 tail
//! latency at iso-quality for three datasets x three system loads x
//! three platforms x one/two/three-stage pipelines.
//!
//! Cells are `saturated` when a configuration cannot meet the load
//! (greyed out in the paper).

use recpipe_accel::Partition;
use recpipe_core::{
    Mapping, PerformanceEvaluator, PipelineConfig, StageConfig, StagePlacement, Table,
};
use recpipe_data::DatasetKind;
use recpipe_models::ModelKind;

/// Canonical 1/2/3-stage pipelines per dataset, scaled to the dataset's
/// pool size and per-stage reduction factor.
fn pipelines(dataset: DatasetKind) -> Vec<PipelineConfig> {
    let pool: u64 = match dataset {
        DatasetKind::MovieLens1M => 1024,
        _ => 4096,
    };
    let reduction: u64 = match dataset {
        DatasetKind::CriteoKaggle => 5,
        DatasetKind::MovieLens1M => 2,
        DatasetKind::MovieLens20M => 4,
    };
    let mid = (pool / reduction).max(64);
    let mid2 = (mid / reduction).max(64);

    let one = PipelineConfig::builder()
        .dataset(dataset)
        .stage(StageConfig::new(ModelKind::RmLarge, pool, 64))
        .build()
        .unwrap();
    let two = PipelineConfig::builder()
        .dataset(dataset)
        .stage(StageConfig::new(ModelKind::RmSmall, pool, mid))
        .stage(StageConfig::new(ModelKind::RmLarge, mid, 64))
        .build()
        .unwrap();
    let three = PipelineConfig::builder()
        .dataset(dataset)
        .stage(StageConfig::new(ModelKind::RmSmall, pool, mid))
        .stage(StageConfig::new(ModelKind::RmMed, mid, mid2))
        .stage(StageConfig::new(ModelKind::RmLarge, mid2, 64))
        .build()
        .unwrap();
    vec![one, two, three]
}

fn commodity_mapping(platform: &str, stages: usize) -> Mapping {
    match (platform, stages) {
        ("gpu", 1) => Mapping::gpu_only(1),
        ("gpu", n) => {
            // GPU frontend + CPU backend(s) per the paper's Section 5.2.
            let mut placements = vec![StagePlacement::Gpu];
            placements.extend(vec![StagePlacement::Cpu { cores_per_query: 2 }; n - 1]);
            Mapping::new(placements)
        }
        (_, n) => Mapping::cpu_only(n),
    }
}

fn main() {
    let perf = PerformanceEvaluator::table2_defaults().sim_queries(3_000);
    let loads = [100.0, 500.0, 2000.0];

    println!("Figure 14: iso-quality tail latency summary (p99, ms)\n");
    for dataset in DatasetKind::ALL {
        println!("== {dataset} ==\n");
        let mut table = Table::new(vec!["platform", "stages", "100 QPS", "500 QPS", "2000 QPS"]);
        for platform in ["cpu", "gpu", "accel"] {
            for (i, pipeline) in pipelines(dataset).iter().enumerate() {
                let stages = i + 1;
                let mut row = vec![platform.to_string(), stages.to_string()];
                for &qps in &loads {
                    let result = match platform {
                        "accel" => {
                            let partition = if stages == 1 {
                                Partition::monolithic()
                            } else {
                                Partition::symmetric(8, 8)
                            };
                            let mut sim = perf.evaluate_accel(pipeline, partition, qps);
                            if sim.saturated {
                                "saturated".into()
                            } else {
                                format!("{:.2}", sim.p99_seconds() * 1e3)
                            }
                        }
                        _ => {
                            let mapping = commodity_mapping(platform, stages);
                            let spec = perf.commodity_spec(pipeline, &mapping);
                            if spec.max_qps() < qps {
                                "saturated".into()
                            } else {
                                let mut sim = spec.simulate(qps, 3_000, 21);
                                format!("{:.2}", sim.p99_seconds() * 1e3)
                            }
                        }
                    };
                    row.push(result);
                }
                table.row(row);
            }
        }
        println!("{table}");
    }
    println!(
        "Paper shape: the optimal stage count varies with load, platform,\n\
         and dataset; RPAccel dominates tail latency everywhere it fits;\n\
         GPU designs grey out at high loads."
    );
}
