//! Regenerates **Figure 14**: the cross-dataset summary — p99 tail
//! latency at iso-quality for three datasets x three system loads x
//! three platforms x one/two/three-stage pipelines.
//!
//! Cells are `saturated` when a configuration cannot meet the load
//! (greyed out in the paper).

use recpipe_accel::Partition;
use recpipe_core::{Engine, PipelineConfig, Placement, StageConfig, Table};
use recpipe_data::DatasetKind;
use recpipe_models::ModelKind;

/// Canonical 1/2/3-stage pipelines per dataset, scaled to the dataset's
/// pool size and per-stage reduction factor.
fn pipelines(dataset: DatasetKind) -> Vec<PipelineConfig> {
    let pool: u64 = match dataset {
        DatasetKind::MovieLens1M => 1024,
        _ => 4096,
    };
    let reduction: u64 = match dataset {
        DatasetKind::CriteoKaggle => 5,
        DatasetKind::MovieLens1M => 2,
        DatasetKind::MovieLens20M => 4,
    };
    let mid = (pool / reduction).max(64);
    let mid2 = (mid / reduction).max(64);

    let one = PipelineConfig::builder()
        .dataset(dataset)
        .stage(StageConfig::new(ModelKind::RmLarge, pool, 64))
        .build()
        .unwrap();
    let two = PipelineConfig::builder()
        .dataset(dataset)
        .stage(StageConfig::new(ModelKind::RmSmall, pool, mid))
        .stage(StageConfig::new(ModelKind::RmLarge, mid, 64))
        .build()
        .unwrap();
    let three = PipelineConfig::builder()
        .dataset(dataset)
        .stage(StageConfig::new(ModelKind::RmSmall, pool, mid))
        .stage(StageConfig::new(ModelKind::RmMed, mid, mid2))
        .stage(StageConfig::new(ModelKind::RmLarge, mid2, 64))
        .build()
        .unwrap();
    vec![one, two, three]
}

/// The platform's engine for a pipeline: CPU-only, GPU frontend + CPU
/// backend(s), or RPAccel.
fn platform_engine(platform: &str, pipeline: &PipelineConfig) -> Engine {
    let stages = pipeline.num_stages();
    let builder = match platform {
        "accel" => {
            let partition = if stages == 1 {
                Partition::monolithic()
            } else {
                Partition::symmetric(8, 8)
            };
            Engine::rpaccel(pipeline.clone(), partition)
        }
        "gpu" => {
            let placement = if stages == 1 {
                Placement::gpu_only(1)
            } else {
                // GPU frontend + CPU backend(s) per the paper's Section 5.2.
                Placement::gpu_frontend(stages, 2)
            };
            Engine::commodity(pipeline.clone()).placement(placement)
        }
        _ => Engine::commodity(pipeline.clone()).placement(Placement::cpu_only(stages)),
    };
    builder
        .sim_queries(3_000)
        .seed(21)
        .build()
        .expect("valid platform engine")
}

fn main() {
    let loads = [100.0, 500.0, 2000.0];

    println!("Figure 14: iso-quality tail latency summary (p99, ms)\n");
    for dataset in DatasetKind::ALL {
        println!("== {dataset} ==\n");
        let mut table = Table::new(vec!["platform", "stages", "100 QPS", "500 QPS", "2000 QPS"]);
        for platform in ["cpu", "gpu", "accel"] {
            for (i, pipeline) in pipelines(dataset).iter().enumerate() {
                let engine = platform_engine(platform, pipeline);
                let mut row = vec![platform.to_string(), (i + 1).to_string()];
                for &qps in &loads {
                    if engine.max_qps() < qps {
                        row.push("saturated".into());
                        continue;
                    }
                    // Latency-only table: serve() skips the (unused)
                    // quality evaluation.
                    let mut sim = engine.serve(qps, 3_000);
                    if sim.saturated {
                        row.push("saturated".into());
                    } else {
                        row.push(format!("{:.2}", sim.p99_seconds() * 1e3));
                    }
                }
                table.row(row);
            }
        }
        println!("{table}");
    }
    println!(
        "Paper shape: the optimal stage count varies with load, platform,\n\
         and dataset; RPAccel dominates tail latency everywhere it fits;\n\
         GPU designs grey out at high loads."
    );
}
