//! Regenerates **Figure 3**: accuracy depends only on the model, while
//! *quality* depends on both the model and the number of items ranked.

use recpipe_core::{PipelineConfig, QualityEvaluator, Table};
use recpipe_models::ModelKind;

fn main() {
    let eval = QualityEvaluator::criteo_like(64).queries(500);

    println!("Figure 3 (left): accuracy depends only on model size\n");
    let mut acc = Table::new(vec!["model", "CTR error"]);
    for kind in ModelKind::ALL {
        acc.row(vec![
            kind.to_string(),
            format!("{:.2}%", eval.evaluate_accuracy(kind) * 100.0),
        ]);
    }
    println!("{acc}");

    println!("Figure 3 (center/right): quality vs items ranked x model\n");
    let mut table = Table::new(vec!["items ranked", "RMsmall", "RMmed", "RMlarge"]);
    for items in [256u64, 512, 1024, 2048, 3200, 4096] {
        let mut row = vec![items.to_string()];
        for kind in ModelKind::ALL {
            let p = PipelineConfig::single_stage(kind, items, 64).unwrap();
            row.push(format!("{:.2}", eval.evaluate(&p).ndcg_percent()));
        }
        table.row(row);
    }
    println!("{table}");
    println!(
        "Paper anchors: RMsmall@4096 = 91.3; RMlarge@4096 = 92.25 (the\n\
         max-quality target); quality rises with items ranked for every model."
    );
}
