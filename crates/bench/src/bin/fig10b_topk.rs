//! Regenerates **Figure 10(b)**: the streaming bucketed top-k filtering
//! unit — bin behavior, SRAM overhead vs CTR threshold (12% -> 3%), and
//! drain latency ("a couple hundred cycles").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recpipe_accel::TopKFilter;
use recpipe_core::Table;

const SRAM_8MB: u64 = 8 * 1024 * 1024;

fn beta_ish_scores(n: u64, seed: u64) -> Vec<(u64, f64)> {
    // CTR-like scores: mass concentrated below 0.5 with a meaningful
    // high-score tail (mirrors a trained sigmoid output).
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let u: f64 = rng.gen();
            (i, u.powf(0.7))
        })
        .collect()
}

fn main() {
    let scores = beta_ish_scores(4096, 5);

    println!("Figure 10(b): top-k filtering unit (4096 items, k=512)\n");
    let mut table = Table::new(vec![
        "CTR threshold",
        "ids buffered",
        "weight-SRAM overhead",
        "selected",
        "drain cycles",
    ]);
    for thresh in [0.0, 0.25, 0.5, 0.75] {
        let filter = TopKFilter::new(16, 512, thresh);
        let out = filter.filter(&scores);
        table.row(vec![
            format!("{thresh:.2}"),
            out.buffered.to_string(),
            format!(
                "{:.1}%",
                TopKFilter::sram_overhead(out.buffered, SRAM_8MB) * 100.0
            ),
            out.selected.len().to_string(),
            out.drain_cycles.to_string(),
        ]);
    }
    println!("{table}");

    // Correctness spot-check: every clear winner survives.
    let filter = TopKFilter::paper_default(512);
    let out = filter.filter(&scores);
    let mut sorted = scores.clone();
    sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let selected: std::collections::HashSet<u64> = out.selected.iter().copied().collect();
    let kept = sorted
        .iter()
        .take(512)
        .filter(|(id, _)| selected.contains(id))
        .count();
    println!(
        "true top-512 retained by the approximate filter: {kept}/512 ({:.1}%)",
        kept as f64 / 512.0 * 100.0
    );
    println!("Paper: no quality degradation from bucketed (unordered) filtering;");
    println!("the 0.5 threshold cuts id-buffer SRAM from ~12% to ~3%.");
}
