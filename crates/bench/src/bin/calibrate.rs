//! Calibration harness for the statistical quality model.
//!
//! Sweeps score-noise sigmas and prints the NDCG@64 each configuration
//! achieves, so `AccuracyModel`'s constants can be pinned to the paper's
//! anchors:
//!
//! * RMlarge @ 4096 items → NDCG 92.25 (max-quality target)
//! * RMsmall @ 4096 items → NDCG ~91.3 (Figure 3)
//! * RMsmall→RMlarge two-stage @ 4096→256 → NDCG 92.25 (iso-quality)
//! * quality @ 3200 items → NDCG ~87-88 (Figure 8 bottom)

use recpipe_core::{PipelineConfig, QualityEvaluator, StageConfig};
use recpipe_models::{AccuracyModel, ModelKind};

fn main() {
    let queries = 600;

    println!("== single-stage NDCG vs sigma (items=4096) ==");
    for sigma in [0.2, 0.3, 0.4, 0.44, 0.5, 0.58, 0.6, 0.7, 0.8, 0.9, 1.0] {
        let acc = AccuracyModel::criteo().with_sigma(ModelKind::RmLarge, sigma);
        let p = PipelineConfig::single_stage(ModelKind::RmLarge, 4096, 64).unwrap();
        let q = QualityEvaluator::criteo_like(64)
            .queries(queries)
            .accuracy_model(acc)
            .evaluate(&p);
        println!("sigma={sigma:.2} -> NDCG {:.2}", q.ndcg_percent());
    }

    println!("\n== items-ranked curve with calibrated sigmas ==");
    for items in [256u64, 512, 1024, 2048, 3200, 4096] {
        for kind in [ModelKind::RmSmall, ModelKind::RmMed, ModelKind::RmLarge] {
            let p = PipelineConfig::single_stage(kind, items, 64).unwrap();
            let q = QualityEvaluator::criteo_like(64)
                .queries(queries)
                .evaluate(&p);
            print!("{kind}@{items}: {:.2}  ", q.ndcg_percent());
        }
        println!();
    }

    println!("\n== two-stage configurations (rho sweep) ==");
    for rho in [0.8, 0.9, 0.95] {
        for (front, mid) in [
            (ModelKind::RmSmall, 64),
            (ModelKind::RmSmall, 128),
            (ModelKind::RmSmall, 256),
            (ModelKind::RmSmall, 512),
            (ModelKind::RmMed, 256),
        ] {
            let p = PipelineConfig::builder()
                .stage(StageConfig::new(front, 4096, mid))
                .stage(StageConfig::new(ModelKind::RmLarge, mid, 64))
                .build()
                .unwrap();
            let q = QualityEvaluator::criteo_like(64)
                .queries(queries)
                .noise_correlation(rho)
                .evaluate(&p);
            println!(
                "rho={rho:.2} {} -> NDCG {:.2}",
                p.describe(),
                q.ndcg_percent()
            );
        }
    }

    println!("\n== sub-batching effect (two-stage 4096->256) ==");
    for n in [1usize, 2, 4, 8, 16, 64] {
        let p = PipelineConfig::builder()
            .stage(StageConfig::new(ModelKind::RmSmall, 4096, 256))
            .stage(StageConfig::new(ModelKind::RmLarge, 256, 64))
            .build()
            .unwrap();
        let q = QualityEvaluator::criteo_like(64)
            .queries(queries)
            .sub_batches(n)
            .evaluate(&p);
        println!("sub_batches={n} -> NDCG {:.2}", q.ndcg_percent());
    }
}
