//! Regenerates **Figure 12**: RPAccel at scale.
//!
//! * Top: latency vs throughput at iso-quality for the baseline
//!   accelerator and one/two/three-stage RPAccel (paper: 3x latency,
//!   6x throughput).
//! * Bottom: asymmetric provisioning RPAccel(8,2) / (8,8) / (8,16).

use recpipe_accel::Partition;
use recpipe_bench::{criteo_single_stage, criteo_three_stage, criteo_two_stage};
use recpipe_core::{Engine, Table};
use recpipe_qsim::SimResult;

fn accel_engine(pipeline: recpipe_core::PipelineConfig, partition: Partition) -> Engine {
    Engine::rpaccel(pipeline, partition)
        .sim_queries(4_000)
        .build()
        .expect("valid accel engine")
}

/// Latency-only cell: the tables never print quality, so the raw
/// simulation (`Engine::serve`) suffices.
fn cell(mut sim: SimResult) -> String {
    if sim.saturated {
        "saturated".into()
    } else {
        format!("{:.2} ms", sim.p99_seconds() * 1e3)
    }
}

fn main() {
    let single = criteo_single_stage(4096);
    let two = criteo_two_stage(512);
    let three = criteo_three_stage();

    let baseline = Engine::baseline_accel(single.clone())
        .sim_queries(4_000)
        .build()
        .expect("valid baseline engine");
    let rp_engines = [
        accel_engine(single.clone(), Partition::monolithic()),
        accel_engine(two.clone(), Partition::symmetric(8, 2)),
        accel_engine(three.clone(), Partition::symmetric(8, 8)),
    ];

    println!("Figure 12 (top): latency vs offered load at iso-quality\n");
    let mut top = Table::new(vec![
        "QPS",
        "baseline accel",
        "1-stage RPAccel",
        "2-stage RPAccel",
        "3-stage RPAccel",
    ]);
    let loads = [100.0, 200.0, 400.0, 800.0, 1300.0, 2000.0];
    for &qps in &loads {
        let mut row = vec![format!("{qps:.0}")];
        row.push(cell(baseline.serve(qps, 4_000)));
        for engine in &rp_engines {
            row.push(cell(engine.serve(qps, 4_000)));
        }
        top.row(row);
    }
    println!("{top}");

    // Headline ratios at the anchor loads.
    let mut base200 = baseline.serve(200.0, 4_000);
    let mut rp200 = rp_engines[1].serve(200.0, 4_000);
    println!(
        "latency gain at 200 QPS: {:.1}x (paper: ~3x)",
        base200.p99_seconds() / rp200.p99_seconds()
    );

    println!("\nFigure 12 (bottom): asymmetric backend provisioning\n");
    let mut bottom = Table::new(vec!["QPS", "RPAccel(8,2)", "RPAccel(8,8)", "RPAccel(8,16)"]);
    let partitions: Vec<Engine> = [2usize, 8, 16]
        .into_iter()
        .map(|b| accel_engine(two.clone(), Partition::symmetric(8, b)))
        .collect();
    let loads = [100.0, 200.0, 400.0, 800.0, 1300.0, 2000.0, 2300.0, 2500.0];
    for &qps in &loads {
        let mut row = vec![format!("{qps:.0}")];
        for engine in &partitions {
            row.push(cell(engine.serve(qps, 4_000)));
        }
        bottom.row(row);
    }
    println!("{bottom}");
    println!(
        "Paper shape: fewer, larger backend arrays (8,2) win latency at low\n\
         load; the paper's high-load flip toward (8,16) sits beyond the\n\
         shared-DRAM saturation point in our model (see EXPERIMENTS.md)."
    );
}
