//! Regenerates **Figure 12**: RPAccel at scale.
//!
//! * Top: latency vs throughput at iso-quality for the baseline
//!   accelerator and one/two/three-stage RPAccel (paper: 3x latency,
//!   6x throughput).
//! * Bottom: asymmetric provisioning RPAccel(8,2) / (8,8) / (8,16).

use recpipe_accel::Partition;
use recpipe_bench::{criteo_single_stage, criteo_three_stage, criteo_two_stage};
use recpipe_core::{PerformanceEvaluator, PipelineConfig, Table};

fn main() {
    let perf = PerformanceEvaluator::table2_defaults().sim_queries(4_000);
    let single = criteo_single_stage(4096);
    let two = criteo_two_stage(512);
    let three = criteo_three_stage();

    println!("Figure 12 (top): latency vs offered load at iso-quality\n");
    let mut top = Table::new(vec![
        "QPS",
        "baseline accel",
        "1-stage RPAccel",
        "2-stage RPAccel",
        "3-stage RPAccel",
    ]);
    let loads = [100.0, 200.0, 400.0, 800.0, 1300.0, 2000.0];
    for &qps in &loads {
        let mut row = vec![format!("{qps:.0}")];
        // Baseline.
        let mut sim = perf.evaluate_baseline_accel(&single, qps);
        row.push(cell(&mut sim));
        // RPAccel variants.
        let cases: Vec<(&PipelineConfig, Partition)> = vec![
            (&single, Partition::monolithic()),
            (&two, Partition::symmetric(8, 2)),
            (&three, Partition::symmetric(8, 8)),
        ];
        for (pipeline, partition) in cases {
            let mut sim = perf.evaluate_accel(pipeline, partition, qps);
            row.push(cell(&mut sim));
        }
        top.row(row);
    }
    println!("{top}");

    // Headline ratios at the anchor loads.
    let mut base200 = perf.evaluate_baseline_accel(&single, 200.0);
    let mut rp200 = perf.evaluate_accel(&two, Partition::symmetric(8, 2), 200.0);
    println!(
        "latency gain at 200 QPS: {:.1}x (paper: ~3x)",
        base200.p99_seconds() / rp200.p99_seconds()
    );

    println!("\nFigure 12 (bottom): asymmetric backend provisioning\n");
    let mut bottom = Table::new(vec!["QPS", "RPAccel(8,2)", "RPAccel(8,8)", "RPAccel(8,16)"]);
    let loads = [100.0, 200.0, 400.0, 800.0, 1300.0, 2000.0, 2300.0, 2500.0];
    for &qps in &loads {
        let mut row = vec![format!("{qps:.0}")];
        for b in [2usize, 8, 16] {
            let mut sim = perf.evaluate_accel(&two, Partition::symmetric(8, b), qps);
            row.push(cell(&mut sim));
        }
        bottom.row(row);
    }
    println!("{bottom}");
    println!(
        "Paper shape: fewer, larger backend arrays (8,2) win latency at low\n\
         load; the paper's high-load flip toward (8,16) sits beyond the\n\
         shared-DRAM saturation point in our model (see EXPERIMENTS.md)."
    );
}

fn cell(sim: &mut recpipe_qsim::SimResult) -> String {
    if sim.saturated {
        "saturated".into()
    } else {
        format!("{:.2} ms", sim.p99_seconds() * 1e3)
    }
}
