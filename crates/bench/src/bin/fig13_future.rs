//! Regenerates **Figure 13**: scaling RPAccel to future recommendation
//! engines whose embedding tables spill to SSD.
//!
//! * Top: DRAM miss rate and the fraction of SSD access time hidden by
//!   the pipeline as the backend model scales 1-32x.
//! * Bottom: single-stage vs multi-stage latency at QPS 500, plus the
//!   projected quality as frontend items and backend capacity scale.

use recpipe_accel::FutureScaling;
use recpipe_core::{PipelineConfig, QualityEvaluator, Table};
use recpipe_models::{AccuracyModel, ModelKind};

fn main() {
    let study = FutureScaling::paper_default();

    println!("Figure 13 (top): embedding locality under SSD spill\n");
    let mut top = Table::new(vec![
        "model scale",
        "SSD-resident",
        "DRAM miss rate",
        "SSD time hidden (1x items)",
        "SSD time hidden (3x items)",
    ]);
    for scale in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
        top.row(vec![
            format!("{scale:.0}x"),
            format!("{:.0}%", study.ssd_fraction(scale) * 100.0),
            format!("{:.1}%", study.dram_miss_rate(scale) * 100.0),
            format!("{:.0}%", study.overlap_fraction(scale, 1.0) * 100.0),
            format!("{:.0}%", study.overlap_fraction(scale, 3.0) * 100.0),
        ]);
    }
    println!("{top}");
    println!("Paper anchors: 32x model -> 97% on SSD; miss rate ~17% -> ~28%.\n");

    println!("Figure 13 (bottom): latency & quality scaling, QPS 500\n");
    let mut bottom = Table::new(vec![
        "scale (mem, items)",
        "single-stage (ms)",
        "multi-stage (ms)",
        "projected NDCG",
    ]);
    for (mem, compute) in [(1.0, 1.0), (2.0, 1.5), (4.0, 2.0), (8.0, 2.5), (32.0, 3.0)] {
        let items = (4096.0 * compute) as u64;
        // Projected quality: a bigger corpus coverage (more items ranked)
        // plus a more accurate scaled backend (sigma shrinks with the
        // logarithm of capacity growth, following the Table 1 error fit).
        let sigma_scale = 1.0 - 0.22 * f64::log2(mem) / 5.0;
        let acc = AccuracyModel::criteo().with_sigma(
            ModelKind::RmLarge,
            AccuracyModel::criteo().sigma(ModelKind::RmLarge) * sigma_scale,
        );
        let pipeline = PipelineConfig::single_stage(ModelKind::RmLarge, items, 64).unwrap();
        let quality = QualityEvaluator::criteo_like(64)
            .queries(300)
            .accuracy_model(acc)
            .evaluate(&pipeline);

        bottom.row(vec![
            format!("{mem:.0}x, {items} items"),
            format!("{:.2}", study.single_stage_latency(mem, compute) * 1e3),
            format!("{:.2}", study.multi_stage_latency(mem, compute) * 1e3),
            format!("{:.2}", quality.ndcg_percent()),
        ]);
    }
    println!("{bottom}");
    println!(
        "Paper anchors: quality 92.25 -> ~96 at (32x, 12K items); the\n\
         multi-stage design scales gracefully while single-stage collapses."
    );
}
