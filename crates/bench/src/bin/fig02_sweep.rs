//! Regenerates **Figure 2 (bottom)**: the training hyperparameter sweep
//! — model complexity (FLOPs) versus CTR-prediction error.
//!
//! Two views are printed:
//!
//! * the calibrated Table 1 fit over a dense FLOPs grid (the curve the
//!   paper plots), and
//! * real DLRM training runs on the synthetic click data across a grid
//!   of MLP widths and embedding dimensions (the mechanism, at
//!   laptop-trainable scale).

use rand::rngs::StdRng;
use rand::SeedableRng;
use recpipe_core::Table;
use recpipe_data::DatasetSpec;
use recpipe_models::{error_percent_from_flops, ArchKind, Dlrm, ModelConfig, ModelKind, Trainer};

fn main() {
    println!("Figure 2: accuracy vs model complexity\n");

    println!("(a) calibrated error curve (Table 1 fit):\n");
    let mut fit = Table::new(vec!["MLP FLOPs", "error (%)"]);
    for flops in [
        250u64, 500, 1_000, 1_150, 1_900, 4_000, 16_000, 64_000, 181_000,
    ] {
        fit.row(vec![
            flops.to_string(),
            format!("{:.2}", error_percent_from_flops(flops)),
        ]);
    }
    println!("{fit}");

    println!("(b) trained DLRM sweep on synthetic clicks (width x latent dim):\n");
    let spec = DatasetSpec::criteo_kaggle();
    let vocab = 600u32;
    let mut sweep = Table::new(vec!["bottom MLP", "emb dim", "MLP FLOPs", "holdout error"]);
    for (widths, dim) in [
        (vec![13usize, 16, 4], 4usize),
        (vec![13, 64, 4], 4),
        (vec![13, 64, 16], 16),
        (vec![13, 128, 32], 32),
        (vec![13, 256, 64, 32], 32),
    ] {
        let cfg = ModelConfig {
            kind: ModelKind::RmMed,
            arch: ArchKind::Dlrm,
            embedding_dim: dim,
            mlp_bottom: widths.clone(),
            mlp_top: vec![64, 1],
            num_tables: 26,
            rows_per_table: vocab as u64,
        };
        // Average over seeds: single-run SGD variance at this scale is
        // larger than the inter-config error gaps. Wider embeddings get a
        // smaller step (their interaction gradients scale with dim).
        let lr = 0.05 * (4.0 / dim as f32).sqrt();
        let mut errors = Vec::new();
        for seed in [3u64, 11, 29] {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut model = Dlrm::new(&cfg, vocab as usize, &mut rng);
            let report = Trainer::new(&spec, vocab)
                .epochs(4)
                .samples_per_epoch(8_000)
                .holdout_samples(3_000)
                .learning_rate(lr)
                .run(&mut model, seed.wrapping_mul(7));
            errors.push(report.holdout_error);
        }
        let mean_error = errors.iter().sum::<f64>() / errors.len() as f64;
        sweep.row(vec![
            widths
                .iter()
                .map(|w| w.to_string())
                .collect::<Vec<_>>()
                .join("-"),
            dim.to_string(),
            cfg.cost().mlp_flops_per_item.to_string(),
            format!("{:.1}%", mean_error * 100.0),
        ]);
    }
    println!("{sweep}");
    println!(
        "Paper shape: more capacity buys lower error. At laptop-trainable\n\
         scale the largest tower separates clearly; the small tiers sit\n\
         within SGD noise of each other — consistent with the paper's own\n\
         tiny (0.1-0.2 point) inter-tier error gaps. The calibrated fit in\n\
         (a) carries the full Figure 2 curve."
    );
}
