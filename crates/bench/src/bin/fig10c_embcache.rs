//! Regenerates **Figure 10(c)**: average embedding memory access time
//! (AMAT) versus the fraction of static cache devoted to the frontend,
//! across cache sizes and filtering ratios.

use recpipe_accel::{EmbeddingCache, EmbeddingCacheConfig};
use recpipe_core::Table;
use recpipe_data::Zipf;

fn cache(total_mb: u64, frac: f64) -> EmbeddingCache {
    EmbeddingCache::new(
        EmbeddingCacheConfig {
            total_bytes: total_mb * 1024 * 1024,
            lookahead_bytes: 0,
            frontend_fraction: frac,
            prefetch_coverage: 0.0,
        },
        Zipf::new(2_600_000, 0.9),
        16,  // RMsmall rows
        128, // RMlarge rows
        26,
    )
}

fn main() {
    println!("Figure 10(c): static-cache AMAT vs frontend fraction\n");
    let mut table = Table::new(vec![
        "frontend fraction",
        "4MB, 1/8 ratio (ns)",
        "12MB, 1/8 ratio (ns)",
        "12MB, 1/16 ratio (ns)",
    ]);
    let mut best = [(f64::INFINITY, 0.0); 3];
    for i in 1..=19 {
        let frac = i as f64 / 20.0;
        let cases = [
            (4u64, 512u64), // 4 MB static, 1/8 filtering
            (12, 512),      // 12 MB static, 1/8
            (12, 256),      // 12 MB static, 1/16
        ];
        let mut row = vec![format!("{frac:.2}")];
        for (case, &(mb, backend_items)) in cases.iter().enumerate() {
            let amat_ns = cache(mb, frac).weighted_amat(4096, backend_items) * 1e9;
            if amat_ns < best[case].0 {
                best[case] = (amat_ns, frac);
            }
            row.push(format!("{amat_ns:.1}"));
        }
        table.row(row);
    }
    println!("{table}");
    println!(
        "optima: 4MB/(1:8) at frac {:.2}; 12MB/(1:8) at {:.2}; 12MB/(1:16) at {:.2}",
        best[0].1, best[1].1, best[2].1
    );
    println!(
        "Paper shape: larger caches lower the whole curve; a larger\n\
         filtering ratio (fewer backend lookups) pushes the optimum toward\n\
         the frontend. Our synthetic Zipf locality places the optimum more\n\
         frontend-heavy than the paper's equal split (see EXPERIMENTS.md)."
    );

    // The look-ahead tier on top of the best static split (O.4).
    let dual = EmbeddingCache::new(
        EmbeddingCacheConfig::paper_default(),
        Zipf::new(2_600_000, 0.9),
        16,
        128,
        26,
    );
    println!(
        "\nO.4 dual cache: backend AMAT {:.1} ns static-only -> {:.1} ns with look-ahead ({:.0}% reduction; paper ~40%)",
        dual.backend_static_amat() * 1e9,
        dual.backend_amat() * 1e9,
        (1.0 - dual.backend_amat() / dual.backend_static_amat()) * 100.0
    );
}
