//! Regenerates **Figure 8**: mapping multi-stage recommendation onto
//! heterogeneous CPU-GPU hardware.
//!
//! * Top: throughput vs p99 at iso-quality for CPU two-stage, GPU-CPU
//!   two-stage, and GPU-only single-stage.
//! * Bottom: quality vs latency at QPS 70 — at a 25 ms SLA the GPU ranks
//!   the full pool while the CPU cannot.

use recpipe_bench::{criteo_single_stage, criteo_two_stage};
use recpipe_core::{
    Mapping, PerformanceEvaluator, PipelineConfig, QualityEvaluator, StageConfig, StagePlacement,
    Table,
};
use recpipe_models::ModelKind;

fn main() {
    let perf = PerformanceEvaluator::table2_defaults().sim_queries(4_000);
    let quality = QualityEvaluator::criteo_like(64).queries(300);

    let cpu_two = criteo_two_stage(256);
    let gpu_one = criteo_single_stage(4096);
    let hetero_mapping = Mapping::new(vec![
        StagePlacement::Gpu,
        StagePlacement::Cpu { cores_per_query: 4 },
    ]);

    println!("Figure 8 (top): iso-quality latency vs offered load\n");
    let mut top = Table::new(vec![
        "QPS",
        "CPU 2-stage p99",
        "GPU-CPU 2-stage p99",
        "GPU 1-stage p99",
    ]);
    for qps in [50.0, 100.0, 200.0, 400.0, 800.0, 1600.0] {
        let mut row = vec![format!("{qps:.0}")];
        let configs: Vec<(&PipelineConfig, Mapping)> = vec![
            (&cpu_two, Mapping::cpu_only(2)),
            (&cpu_two, hetero_mapping.clone()),
            (&gpu_one, Mapping::gpu_only(1)),
        ];
        for (pipeline, mapping) in configs {
            let spec = perf.commodity_spec(pipeline, &mapping);
            if spec.max_qps() < qps {
                row.push("saturated".into());
            } else {
                let mut sim = spec.simulate(qps, 4_000, 11);
                row.push(format!("{:.2} ms", sim.p99_seconds() * 1e3));
            }
        }
        top.row(row);
    }
    println!("{top}");
    println!(
        "Paper shape: GPU-enabled designs win latency at low load and\n\
         collapse at high load; CPU-only sustains the highest throughput.\n"
    );

    println!("Figure 8 (bottom): quality vs latency at QPS 70 (25 ms SLA)\n");
    let mut bottom = Table::new(vec![
        "items ranked",
        "CPU 2-stage p99",
        "CPU NDCG",
        "GPU 1-stage p99",
        "GPU NDCG",
    ]);
    for items in [2048u64, 2560, 3200, 4096] {
        let cpu_pipeline = PipelineConfig::builder()
            .stage(StageConfig::new(ModelKind::RmSmall, items, 256))
            .stage(StageConfig::new(ModelKind::RmLarge, 256, 64))
            .build()
            .unwrap();
        let gpu_pipeline = criteo_single_stage(items);
        let mut cpu_sim = perf.evaluate(&cpu_pipeline, &Mapping::cpu_only(2), 70.0);
        let mut gpu_sim = perf.evaluate(&gpu_pipeline, &Mapping::gpu_only(1), 70.0);
        let cpu_q = quality.evaluate(&cpu_pipeline);
        let gpu_q = quality.evaluate(&gpu_pipeline);
        let fmt_sla = |p99: f64| {
            if p99 > 0.025 {
                format!("{:.2} ms (>SLA)", p99 * 1e3)
            } else {
                format!("{:.2} ms", p99 * 1e3)
            }
        };
        bottom.row(vec![
            items.to_string(),
            fmt_sla(cpu_sim.p99_seconds()),
            format!("{:.2}", cpu_q.ndcg_percent()),
            fmt_sla(gpu_sim.p99_seconds()),
            format!("{:.2}", gpu_q.ndcg_percent()),
        ]);
    }
    println!("{bottom}");
    println!(
        "Paper anchors: at the 25 ms SLA the CPU design stops near 3200\n\
         items (NDCG ~87) while the GPU ranks all 4096 (NDCG 92.25)."
    );
}
