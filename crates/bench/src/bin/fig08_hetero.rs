//! Regenerates **Figure 8**: mapping multi-stage recommendation onto
//! heterogeneous CPU-GPU hardware.
//!
//! * Top: throughput vs p99 at iso-quality for CPU two-stage, GPU-CPU
//!   two-stage, and GPU-only single-stage.
//! * Bottom: quality vs latency at QPS 70 — at a 25 ms SLA the GPU ranks
//!   the full pool while the CPU cannot.

use recpipe_bench::{criteo_single_stage, criteo_two_stage};
use recpipe_core::{Engine, PipelineConfig, Placement, StageConfig, Table};
use recpipe_models::ModelKind;

fn commodity(pipeline: PipelineConfig, placement: Placement, seed: u64) -> Engine {
    Engine::commodity(pipeline)
        .placement(placement)
        .sim_queries(4_000)
        .seed(seed)
        .build()
        .expect("valid commodity engine")
}

fn main() {
    let cpu_two = criteo_two_stage(256);
    let gpu_one = criteo_single_stage(4096);

    println!("Figure 8 (top): iso-quality latency vs offered load\n");
    let engines = [
        commodity(cpu_two.clone(), Placement::cpu_only(2), 11),
        commodity(cpu_two.clone(), Placement::gpu_frontend(2, 4), 11),
        commodity(gpu_one.clone(), Placement::gpu_only(1), 11),
    ];
    let mut top = Table::new(vec![
        "QPS",
        "CPU 2-stage p99",
        "GPU-CPU 2-stage p99",
        "GPU 1-stage p99",
    ]);
    for qps in [50.0, 100.0, 200.0, 400.0, 800.0, 1600.0] {
        let mut row = vec![format!("{qps:.0}")];
        for engine in &engines {
            if engine.max_qps() < qps {
                row.push("saturated".into());
            } else {
                // Latency-only table: serve() skips the (unused)
                // quality evaluation.
                let mut sim = engine.serve(qps, 4_000);
                row.push(format!("{:.2} ms", sim.p99_seconds() * 1e3));
            }
        }
        top.row(row);
    }
    println!("{top}");
    println!(
        "Paper shape: GPU-enabled designs win latency at low load and\n\
         collapse at high load; CPU-only sustains the highest throughput.\n"
    );

    println!("Figure 8 (bottom): quality vs latency at QPS 70 (25 ms SLA)\n");
    let mut bottom = Table::new(vec![
        "items ranked",
        "CPU 2-stage p99",
        "CPU NDCG",
        "GPU 1-stage p99",
        "GPU NDCG",
    ]);
    let sla = 0.025;
    for items in [2048u64, 2560, 3200, 4096] {
        let cpu_pipeline = PipelineConfig::builder()
            .stage(StageConfig::new(ModelKind::RmSmall, items, 256))
            .stage(StageConfig::new(ModelKind::RmLarge, 256, 64))
            .build()
            .unwrap();
        let cpu = Engine::commodity(cpu_pipeline)
            .placement(Placement::cpu_only(2))
            .load(70.0)
            .sla(sla)
            .sim_queries(4_000)
            .build()
            .expect("valid CPU engine")
            .evaluate();
        let gpu = Engine::commodity(criteo_single_stage(items))
            .placement(Placement::gpu_only(1))
            .load(70.0)
            .sla(sla)
            .sim_queries(4_000)
            .build()
            .expect("valid GPU engine")
            .evaluate();
        let fmt_sla = |p99_ms: f64, met: Option<bool>| {
            if met == Some(false) {
                format!("{p99_ms:.2} ms (>SLA)")
            } else {
                format!("{p99_ms:.2} ms")
            }
        };
        bottom.row(vec![
            items.to_string(),
            fmt_sla(cpu.p99_ms(), cpu.meets_sla),
            format!("{:.2}", cpu.ndcg_percent()),
            fmt_sla(gpu.p99_ms(), gpu.meets_sla),
            format!("{:.2}", gpu.ndcg_percent()),
        ]);
    }
    println!("{bottom}");
    println!(
        "Paper anchors: at the 25 ms SLA the CPU design stops near 3200\n\
         items (NDCG ~87) while the GPU ranks all 4096 (NDCG 92.25)."
    );
}
