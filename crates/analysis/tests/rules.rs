//! Fixture-driven tests for every `simlint` rule — positive, negative,
//! and allowlisted cases — plus the meta-test asserting the live
//! workspace scans clean. Fixtures live in `tests/fixtures/`, which the
//! workspace walker skips (they violate rules on purpose); each test
//! assigns them the synthetic workspace-relative path that puts them in
//! the rule's scope.

use recpipe_analysis::rules::{Config, Finding, Severity};
use recpipe_analysis::{analyze_files, analyze_workspace, Report};

const HASH_ITER: &str = include_str!("fixtures/hash_iter.rs");
const WALL_CLOCK: &str = include_str!("fixtures/wall_clock.rs");
const SHARD_NONDET: &str = include_str!("fixtures/shard_nondet.rs");
const TAG_REGISTRY: &str = include_str!("fixtures/tag_registry.rs");
const TAG_REGISTRY_OK: &str = include_str!("fixtures/tag_registry_ok.rs");
const PACKING_CAST: &str = include_str!("fixtures/packing_cast.rs");
const CTOR_VALIDATE: &str = include_str!("fixtures/ctor_validate.rs");
const SERVE_SRC: &str = include_str!("fixtures/serve_src.rs");
const SERVE_TESTS: &str = include_str!("fixtures/serve_tests.rs");
const BAD_ALLOW: &str = include_str!("fixtures/bad_allow.rs");

fn report(files: &[(&str, &str)]) -> Report {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(p, t)| (p.to_string(), t.to_string()))
        .collect();
    analyze_files(&owned, &Config::default())
}

fn by_rule<'a>(r: &'a Report, rule: &str) -> Vec<&'a Finding> {
    r.findings.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn hash_iter_flags_iteration_not_keyed_access() {
    let r = report(&[("crates/hwsim/src/lru.rs", HASH_ITER)]);
    let hits = by_rule(&r, "hash-iter");
    // Exactly the two positives: the min-over-entries scan and the
    // `for … in` over a hash set. Keyed access, the allowlisted sum,
    // and the #[cfg(test)] iteration stay silent.
    assert_eq!(hits.len(), 2, "findings: {:?}", r.findings);
    assert!(hits.iter().any(|f| f.message.contains("last_use.iter()")));
    assert!(hits.iter().any(|f| f.message.contains("for … in seen")));
    assert!(r.has_denies());
}

#[test]
fn hash_iter_is_scoped_to_sim_paths() {
    let r = report(&[("crates/bench/src/lru.rs", HASH_ITER)]);
    assert!(by_rule(&r, "hash-iter").is_empty(), "{:?}", r.findings);
}

#[test]
fn wall_clock_and_rng_fire_in_product_code() {
    let r = report(&[("crates/qsim/src/clock.rs", WALL_CLOCK)]);
    assert_eq!(by_rule(&r, "wall-clock").len(), 1, "{:?}", r.findings);
    assert_eq!(by_rule(&r, "unseeded-rng").len(), 1, "{:?}", r.findings);
    assert!(r.has_denies());
}

#[test]
fn bench_and_test_carve_out_is_config_not_allows() {
    for path in [
        "crates/bench/src/bin/bench_smoke.rs",
        "crates/qsim/tests/scale.rs",
    ] {
        let r = report(&[(path, WALL_CLOCK)]);
        assert!(r.findings.is_empty(), "{path}: {:?}", r.findings);
    }
}

#[test]
fn shard_nondet_requires_justified_worker_branches() {
    let r = report(&[("crates/qsim/src/shard.rs", SHARD_NONDET)]);
    let hits = by_rule(&r, "shard-nondet");
    // The unjustified branch and the parallelism probe fire; the
    // allowlisted branch and the merge helper do not.
    assert_eq!(hits.len(), 2, "findings: {:?}", r.findings);
    assert!(hits
        .iter()
        .any(|f| f.message.contains("available_parallelism")));
}

#[test]
fn shard_nondet_only_applies_to_shard_files() {
    let r = report(&[("crates/qsim/src/sim2.rs", SHARD_NONDET)]);
    assert!(by_rule(&r, "shard-nondet").is_empty(), "{:?}", r.findings);
}

#[test]
fn tag_registry_catches_orphans_ghosts_and_missing_arms() {
    let r = report(&[("crates/qsim/src/sim.rs", TAG_REGISTRY)]);
    let hits = by_rule(&r, "tag-registry");
    assert_eq!(hits.len(), 3, "findings: {:?}", r.findings);
    assert!(hits
        .iter()
        .any(|f| f.message.contains("TAG_ORPHAN") && f.message.contains("0 times")));
    assert!(hits
        .iter()
        .any(|f| f.message.contains("TAG_ORPHAN") && f.message.contains("decode arm")));
    assert!(hits
        .iter()
        .any(|f| f.message.contains("TAG_GHOST") && f.message.contains("never declared")));
}

#[test]
fn tag_registry_accepts_a_complete_table() {
    let r = report(&[("crates/qsim/src/sim.rs", TAG_REGISTRY_OK)]);
    assert!(r.findings.is_empty(), "{:?}", r.findings);
}

#[test]
fn packing_cast_needs_a_range_justification() {
    let r = report(&[("crates/qsim/src/sim.rs", PACKING_CAST)]);
    let hits = by_rule(&r, "packing-cast");
    // Only the unjustified cast inside `impl Event` fires: the two
    // allowlisted casts and the out-of-scope helper stay silent.
    assert_eq!(hits.len(), 1, "findings: {:?}", r.findings);
}

#[test]
fn ctor_validate_accepts_asserts_docs_and_allows() {
    let r = report(&[("crates/qsim/src/cfg.rs", CTOR_VALIDATE)]);
    let hits = by_rule(&r, "ctor-validate");
    assert_eq!(hits.len(), 1, "findings: {:?}", r.findings);
    // The one positive is the undocumented, unvalidated constructor.
    assert_eq!(hits[0].line, 9, "findings: {:?}", r.findings);
}

#[test]
fn ctor_validate_is_scoped_to_qsim() {
    let r = report(&[("crates/core/src/cfg.rs", CTOR_VALIDATE)]);
    assert!(by_rule(&r, "ctor-validate").is_empty(), "{:?}", r.findings);
}

#[test]
fn serve_coverage_fails_the_build_for_unpinned_entry_points() {
    let r = report(&[
        ("crates/qsim/src/serving.rs", SERVE_SRC),
        ("crates/qsim/tests/props.rs", SERVE_TESTS),
    ]);
    let hits = by_rule(&r, "serve-coverage");
    // `serve_pinned` is named by the test file, `serve_waved` carries
    // an allow; only `serve_orphan` fails — and it fails the build.
    assert_eq!(hits.len(), 1, "findings: {:?}", r.findings);
    assert!(hits[0].message.contains("serve_orphan"));
    assert!(r.has_denies());
}

#[test]
fn serve_coverage_passes_once_every_entry_point_is_pinned() {
    let pinned_tests = format!("{SERVE_TESTS}\nfn also() {{ serve_orphan(1, 2); }}\n");
    let r = report(&[
        ("crates/qsim/src/serving.rs", SERVE_SRC),
        ("crates/qsim/tests/props.rs", &pinned_tests),
    ]);
    assert!(by_rule(&r, "serve-coverage").is_empty(), "{:?}", r.findings);
}

#[test]
fn bad_allow_rejects_malformed_and_unknown_directives() {
    let r = report(&[("crates/qsim/src/misc.rs", BAD_ALLOW)]);
    let hits = by_rule(&r, "bad-allow");
    // Missing justification, unknown rule, and non-allow directive all
    // fire; the well-formed directive does not.
    assert_eq!(hits.len(), 3, "findings: {:?}", r.findings);
}

#[test]
fn severity_overrides_downgrade_a_rule_to_warn() {
    let cfg = Config {
        severity_overrides: vec![("hash-iter".to_string(), Severity::Warn)],
        ..Config::default()
    };
    let files = vec![("crates/hwsim/src/lru.rs".to_string(), HASH_ITER.to_string())];
    let r = analyze_files(&files, &cfg);
    assert!(!r.findings.is_empty());
    assert!(
        !r.has_denies(),
        "warn-severity findings must not fail the run: {:?}",
        r.findings
    );
}

#[test]
fn live_workspace_scans_clean() {
    // The meta-test the tentpole demands: the shipped tree has zero
    // findings, so any rule drift (or new violation) is caught in-repo.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let r = analyze_workspace(&root, &Config::default()).expect("workspace readable");
    assert!(r.files > 50, "walker found only {} files", r.files);
    assert!(
        r.findings.is_empty(),
        "workspace must scan clean:\n{}",
        r.findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
