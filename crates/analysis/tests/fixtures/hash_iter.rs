// Fixture: hash-iter positive, negative, and allowlisted cases.
use std::collections::{HashMap, HashSet};

struct Cache {
    last_use: HashMap<u64, u64>,
}

fn violating(last_use: &HashMap<u64, u64>, seen: HashSet<u64>) -> u64 {
    // POSITIVE: min over entries observes hash order.
    let victim = last_use.iter().min_by_key(|(_, &t)| t);
    // POSITIVE: bare iteration of a hash set.
    for id in &seen {
        let _ = id;
    }
    victim.map(|(&k, _)| k).unwrap_or(0)
}

fn keyed_access_is_fine(cache: &mut HashMap<u64, u64>) -> bool {
    // NEGATIVE: contains_key/insert/index never observe hash order.
    if cache.contains_key(&7) {
        cache.insert(7, 1);
    }
    cache[&7] == 1
}

fn audited(stats: &HashMap<u64, u64>) -> u64 {
    // simlint: allow(hash-iter) -- summed: addition is order-independent
    stats.values().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_code_is_exempt(m: &HashMap<u64, u64>) -> usize {
        m.iter().count()
    }
}
