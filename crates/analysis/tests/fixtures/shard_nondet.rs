// Fixture: shard-nondet cases, scanned as crates/qsim/src/shard.rs.

fn pick_strategy(workers: usize) -> usize {
    // POSITIVE: worker-count-dependent branch without a justification.
    if workers <= 1 {
        1
    } else {
        // POSITIVE: thread-pool sizing probe.
        std::thread::available_parallelism().map_or(1, |p| p.get())
    }
}

fn justified(workers: usize) -> usize {
    // simlint: allow(shard-nondet) -- strategy only; merged output is worker-invariant
    if workers <= 1 {
        1
    } else {
        workers
    }
}

fn merge_in_shard_order(shards: &[Vec<u64>]) -> Vec<u64> {
    // NEGATIVE: no branch on worker identity or count.
    shards.iter().flatten().copied().collect()
}
