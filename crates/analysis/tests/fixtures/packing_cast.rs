// Fixture: packing-cast cases, scanned as crates/qsim/src/sim.rs
// (rule scope: `impl Event` blocks and pack/lane helper fns).

struct Event {
    key: u64,
    a: u32,
}

impl Event {
    fn new(seq: u64, tag: u64, a: usize) -> Self {
        Self {
            key: (seq << 3) | tag,
            // POSITIVE: unjustified truncating cast in packing code.
            a: a as u32,
        }
    }

    fn widened(&self) -> u64 {
        // NEGATIVE: u32 -> u64 widens; only `as u32`/`as u64` of wider
        // values can truncate, and this cast is justified below.
        // simlint: allow(packing-cast) -- widening u32 -> u64 is lossless
        self.a as u64
    }
}

fn lane_payload(packed: usize) -> u32 {
    // simlint: allow(packing-cast) -- masked to 19 bits at the cast
    (packed >> 32) as u32 & 0x7_FFFF
}

fn unrelated_math(x: usize) -> u32 {
    // NEGATIVE: outside packing scope (not an Event impl or pack/lane
    // helper), the cast is ordinary arithmetic.
    x as u32
}
