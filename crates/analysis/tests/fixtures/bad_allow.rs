// Fixture: bad-allow cases.

fn no_justification() -> u64 {
    // POSITIVE: allow without a `--` justification is malformed.
    // simlint: allow(wall-clock)
    7
}

fn unknown_rule() -> u64 {
    // POSITIVE: the named rule does not exist.
    // simlint: allow(warp-core) -- misremembered rule id
    9
}

fn not_an_allow() -> u64 {
    // POSITIVE: a directive that is not allow(...) at all.
    // simlint: suppress everything please
    11
}

fn well_formed(x: usize) -> u32 {
    // NEGATIVE: known rule, justification present (even if the rule
    // would not fire here, the directive itself is fine).
    // simlint: allow(packing-cast) -- x is bounded by the caller
    x as u32
}
