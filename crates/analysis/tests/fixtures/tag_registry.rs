// Fixture: tag-registry violations, scanned as crates/qsim/src/sim.rs.
// TAG_ORPHAN is declared but unregistered and lacks a decode arm;
// TAG_GHOST is registered but never declared; TAG_ARRIVE is fine.

const TAG_ARRIVE: u64 = 0;
const TAG_COMPLETE: u64 = 1;
const TAG_ORPHAN: u64 = 2;

const TAG_TIE_ORDER: [u64; 3] = [TAG_ARRIVE, TAG_COMPLETE, TAG_GHOST];

enum Kind {
    Arrive,
    Complete,
}

fn decode(key: u64) -> Kind {
    match key & 0b11 {
        TAG_ARRIVE => Kind::Arrive,
        TAG_COMPLETE => Kind::Complete,
        _ => Kind::Arrive,
    }
}
