// Fixture: ctor-validate cases, scanned under crates/qsim/src/.

pub struct Unchecked {
    capacity: usize,
}

impl Unchecked {
    // POSITIVE: usize parameter, no assert/panic, no `# Panics` doc.
    pub fn new(capacity: usize) -> Self {
        Self { capacity }
    }
}

pub struct Checked {
    rate: f64,
}

impl Checked {
    /// NEGATIVE: validates in the body.
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        Self { rate }
    }
}

pub struct Documented {
    inner: Checked,
}

impl Documented {
    /// NEGATIVE: delegates validation and documents it.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive (see [`Checked::new`]).
    pub fn new(rate: f64) -> Self {
        Self {
            inner: Checked::new(rate),
        }
    }
}

pub struct Exempted {
    label: String,
}

impl Exempted {
    /// NEGATIVE: no size/rate parameters, nothing to validate.
    pub fn new(label: String) -> Self {
        Self { label }
    }
}

pub struct Waved {
    seed: u64,
    shards: usize,
}

impl Waved {
    /// ALLOWLISTED: any shard count is meaningful (0 = auto).
    // simlint: allow(ctor-validate) -- every usize value is valid; 0 selects auto
    pub fn new(seed: u64, shards: usize) -> Self {
        Self { seed, shards }
    }
}
