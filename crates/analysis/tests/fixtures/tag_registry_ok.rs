// Fixture: a clean tag registry, scanned as crates/qsim/src/sim.rs.
// Every declared tag appears exactly once in the table and has an
// explicit decode arm; nothing fires.

const TAG_ARRIVE: u64 = 0;
const TAG_COMPLETE: u64 = 1;

const TAG_TIE_ORDER: [u64; 2] = [TAG_ARRIVE, TAG_COMPLETE];

enum Kind {
    Arrive,
    Complete,
}

fn decode(key: u64) -> Kind {
    match key & 0b1 {
        TAG_ARRIVE => Kind::Arrive,
        TAG_COMPLETE => Kind::Complete,
        _ => unreachable!(),
    }
}
