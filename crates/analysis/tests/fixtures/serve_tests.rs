// Fixture: serve-coverage test file, scanned under crates/qsim/tests/.
// Names serve_pinned but not serve_orphan.

#[test]
fn serve_pinned_conserves_queries() {
    assert_eq!(serve_pinned(10, 0), 10);
}
