// Fixture: wall-clock and unseeded-rng cases. Scanned once under a
// sim path (positives fire) and once under a bench path (the
// config-level carve-out silences all of them).
use std::time::Instant;

fn timed() -> f64 {
    // POSITIVE under a product path: the wall clock is not sim time.
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}

fn entropy() -> u64 {
    // POSITIVE under a product path: ambient entropy breaks replays.
    let mut rng = rand::thread_rng();
    rng.next_u64()
}

fn seeded(seed: u64) -> u64 {
    // NEGATIVE: explicit seeds are the only sanctioned randomness.
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    rng.next_u64()
}

fn in_strings_and_comments() {
    // NEGATIVE: Instant::now in a comment or "Instant::now" string
    // never fires -- the scanner blanks both.
    let _label = "Instant::now";
}
