// Fixture: serve-coverage sources, scanned under crates/qsim/src/.
// `serve_pinned` is named by the test fixture; `serve_orphan` is not
// (the rule's positive case); `serve_waved` carries an allow.

pub fn serve_pinned(queries: usize, seed: u64) -> usize {
    queries.wrapping_add(seed as usize)
}

pub fn serve_orphan(queries: usize, seed: u64) -> usize {
    queries.wrapping_mul(seed as usize)
}

// simlint: allow(serve-coverage) -- thin wrapper over serve_pinned; pinned transitively
pub fn serve_waved(queries: usize, seed: u64) -> usize {
    serve_pinned(queries, seed)
}
