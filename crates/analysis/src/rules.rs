//! The `simlint` rule engine: rule registry, per-rule severities, and
//! the rule implementations over [`ScannedFile`]s.
//!
//! Rules fall into the four families the determinism contract needs
//! (see ARCHITECTURE.md "Determinism discipline, mechanically
//! enforced"): determinism (`hash-iter`, `wall-clock`, `unseeded-rng`,
//! `shard-nondet`), event-loop discipline (`tag-registry`), packing
//! safety (`packing-cast`), and API discipline (`ctor-validate`,
//! `serve-coverage`). A ninth rule, `bad-allow`, keeps the allowlist
//! itself honest: malformed directives and unknown rule ids are
//! findings, not silent no-ops.

use crate::scan::{find_word, ScannedFile};

/// How a finding affects the exit status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the run (CI gate).
    Deny,
    /// Reported but does not fail the run.
    Warn,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Deny => write!(f, "deny"),
            Severity::Warn => write!(f, "warn"),
        }
    }
}

/// Registry metadata for one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleMeta {
    /// Stable id, used in allow directives and severity overrides.
    pub id: &'static str,
    /// Default severity (overridable via [`Config::severity_overrides`]).
    pub severity: Severity,
    /// One-line description for `simlint --list-rules` and docs.
    pub summary: &'static str,
}

/// Every rule `simlint` knows, in reporting order.
pub const RULES: &[RuleMeta] = &[
    RuleMeta {
        id: "hash-iter",
        severity: Severity::Deny,
        summary: "no HashMap/HashSet iteration (incl. min/max over entries) in sim paths",
    },
    RuleMeta {
        id: "wall-clock",
        severity: Severity::Deny,
        summary: "no Instant::now/SystemTime outside bench/test code",
    },
    RuleMeta {
        id: "unseeded-rng",
        severity: Severity::Deny,
        summary: "no thread_rng/from_entropy/OsRng outside bench/test code",
    },
    RuleMeta {
        id: "shard-nondet",
        severity: Severity::Deny,
        summary: "no thread-id or worker-count-dependent branches in shard executors",
    },
    RuleMeta {
        id: "tag-registry",
        severity: Severity::Deny,
        summary: "every TAG_* event constant is in the tie-order table once and decodes",
    },
    RuleMeta {
        id: "packing-cast",
        severity: Severity::Deny,
        summary: "as u32/u64 in packed-event/lane-payload code needs a range justification",
    },
    RuleMeta {
        id: "ctor-validate",
        severity: Severity::Deny,
        summary: "public qsim constructors taking sizes/rates validate-or-panic",
    },
    RuleMeta {
        id: "serve-coverage",
        severity: Severity::Deny,
        summary: "every public qsim serve_* entry point is named by a qsim/tests/ property",
    },
    RuleMeta {
        id: "bad-allow",
        severity: Severity::Deny,
        summary: "allow directives parse, name known rules, and carry a justification",
    },
];

/// Looks up a rule id in the registry.
pub fn rule_meta(id: &str) -> Option<&'static RuleMeta> {
    RULES.iter().find(|r| r.id == id)
}

/// Scope and carve-out configuration. [`Config::default`] encodes this
/// workspace's layout — including the bench/test carve-out for the
/// wall-clock and RNG rules, which is deliberately config (product
/// crates get no inline escape hatch for those rules; see ISSUE 10).
#[derive(Debug, Clone)]
pub struct Config {
    /// Path prefixes whose non-test code is a simulator hot path
    /// (scope of `hash-iter`).
    pub sim_paths: Vec<String>,
    /// Path fragments exempt from `wall-clock`/`unseeded-rng`: bench
    /// crates, integration tests, criterion benches. `#[cfg(test)]`
    /// regions are exempt everywhere regardless of path.
    pub bench_test_paths: Vec<String>,
    /// Files holding shard executors (scope of `shard-nondet`).
    pub shard_files: Vec<String>,
    /// The event-loop file holding the `TAG_*` constants, the
    /// tie-order table, and the packed-event code.
    pub event_file: String,
    /// Name of the tie-order registry const in `event_file`.
    pub tie_order_table: String,
    /// `impl` blocks in `event_file` whose casts are packing casts.
    pub packing_impls: Vec<String>,
    /// Substrings of `fn` names in `event_file` whose casts are
    /// packing casts (lane-payload pack/unpack helpers).
    pub packing_fns: Vec<String>,
    /// Path prefixes whose `pub fn new` constructors must
    /// validate-or-panic (scope of `ctor-validate`).
    pub ctor_paths: Vec<String>,
    /// Path prefix holding the serving entry points.
    pub serve_src: String,
    /// Path prefix holding the frozen-reference/conservation tests
    /// that must name every public `serve_*` entry point.
    pub serve_tests: String,
    /// Per-rule severity overrides, checked before [`RULES`] defaults.
    pub severity_overrides: Vec<(String, Severity)>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            sim_paths: vec![
                "crates/qsim/src/".into(),
                "crates/core/src/".into(),
                "crates/hwsim/src/".into(),
            ],
            bench_test_paths: vec![
                "crates/bench/".into(),
                "/tests/".into(),
                "/benches/".into(),
                "tests/".into(),
            ],
            shard_files: vec!["crates/qsim/src/shard.rs".into()],
            event_file: "crates/qsim/src/sim.rs".into(),
            tie_order_table: "TAG_TIE_ORDER".into(),
            packing_impls: vec!["Event".into()],
            packing_fns: vec![
                "pack".into(),
                "lane".into(),
                "payload".into(),
                "push_arrive".into(),
            ],
            ctor_paths: vec!["crates/qsim/src/".into()],
            serve_src: "crates/qsim/src/".into(),
            serve_tests: "crates/qsim/tests/".into(),
            severity_overrides: Vec::new(),
        }
    }
}

impl Config {
    /// Resolved severity for a rule id.
    pub fn severity(&self, id: &str) -> Severity {
        self.severity_overrides
            .iter()
            .find(|(r, _)| r == id)
            .map(|(_, s)| *s)
            .or_else(|| rule_meta(id).map(|m| m.severity))
            .unwrap_or(Severity::Deny)
    }

    /// Whether `path` falls under the bench/test carve-out.
    fn is_bench_test(&self, path: &str) -> bool {
        self.bench_test_paths.iter().any(|frag| {
            if let Some(prefix) = frag.strip_suffix('/') {
                if frag.contains('/') && !frag.starts_with('/') {
                    // A prefix fragment like `crates/bench/` or `tests/`.
                    if path.starts_with(frag) || path == prefix {
                        return true;
                    }
                }
            }
            frag.starts_with('/') && path.contains(frag)
        })
    }
}

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id.
    pub rule: &'static str,
    /// Resolved severity.
    pub severity: Severity,
    /// Workspace-relative path.
    pub path: String,
    /// 1-indexed source line.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}: {}",
            self.path, self.line, self.severity, self.rule, self.message
        )
    }
}

/// Context shared by the per-file rules: the file, the config, and the
/// findings sink.
struct Ctx<'a> {
    file: &'a ScannedFile,
    cfg: &'a Config,
    out: &'a mut Vec<Finding>,
}

impl Ctx<'_> {
    /// Emits a finding for `rule` at 0-indexed line `idx` unless an
    /// inline allow suppresses it.
    fn emit(&mut self, rule: &'static str, idx: usize, message: String) {
        if self.file.allowed(idx, rule) {
            return;
        }
        self.out.push(Finding {
            rule,
            severity: self.cfg.severity(rule),
            path: self.file.path.clone(),
            line: idx + 1,
            message,
        });
    }
}

/// Runs every per-file rule over `file`.
pub fn check_file(file: &ScannedFile, cfg: &Config, out: &mut Vec<Finding>) {
    let mut ctx = Ctx { file, cfg, out };
    bad_allow(&mut ctx);
    hash_iter(&mut ctx);
    wall_clock(&mut ctx);
    unseeded_rng(&mut ctx);
    shard_nondet(&mut ctx);
    tag_registry(&mut ctx);
    packing_cast(&mut ctx);
    ctor_validate(&mut ctx);
}

/// Runs the cross-file rules over the whole scanned set.
pub fn check_workspace(files: &[ScannedFile], cfg: &Config, out: &mut Vec<Finding>) {
    serve_coverage(files, cfg, out);
}

// ---------------------------------------------------------------------------
// bad-allow
// ---------------------------------------------------------------------------

/// Malformed directives and allows naming unknown rules.
fn bad_allow(ctx: &mut Ctx<'_>) {
    for (idx, msg) in ctx.file.malformed.clone() {
        ctx.emit("bad-allow", idx, msg);
    }
    for (idx, allows) in ctx.file.allows.clone().into_iter().enumerate() {
        for allow in allows {
            for rule in &allow.rules {
                if rule_meta(rule).is_none() {
                    ctx.emit("bad-allow", idx, format!("unknown rule `{rule}` in allow"));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// hash-iter
// ---------------------------------------------------------------------------

/// Methods whose call on a hash collection observes iteration order.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

/// Denies iteration (and min/max over entries, which goes through
/// `iter`/`keys`/`values`) of `HashMap`/`HashSet` bindings in the
/// configured sim paths. Keyed access — `get`, `insert`,
/// `contains_key`, `entry`, indexing — is fine: it never observes hash
/// order. Detection is name-based: pass one collects identifiers bound
/// to a hash-typed field, param, or `let`; pass two flags
/// order-observing method calls and `for … in` loops over them.
fn hash_iter(ctx: &mut Ctx<'_>) {
    if !ctx
        .cfg
        .sim_paths
        .iter()
        .any(|p| ctx.file.path.starts_with(p.as_str()))
    {
        return;
    }
    let mut bound: Vec<String> = Vec::new();
    for line in &ctx.file.lines {
        if line.in_test {
            continue;
        }
        collect_hash_bindings(&line.code, &mut bound);
    }
    if bound.is_empty() {
        return;
    }
    for (idx, line) in ctx.file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for name in bound.clone() {
            if let Some(m) = iterates(&line.code, &name) {
                ctx.emit(
                    "hash-iter",
                    idx,
                    format!(
                        "`{name}` is a hash collection; `{m}` observes hash iteration \
                         order, which is nondeterministic across processes"
                    ),
                );
            }
        }
    }
}

/// Collects identifiers bound to a `HashMap`/`HashSet` on this line.
fn collect_hash_bindings(code: &str, out: &mut Vec<String>) {
    for ty in ["HashMap", "HashSet"] {
        let mut from = 0;
        while let Some(rel) = code[from..].find(ty) {
            let at = from + rel;
            from = at + ty.len();
            // Word boundary on both sides (`HashMapLike` is not a hit).
            let before = code[..at].chars().next_back();
            if before.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                continue;
            }
            if code[from..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric())
            {
                continue;
            }
            let head = code[..at].trim_end();
            // `name: HashMap<…>` / `name: &mut HashMap<…>` (field or param).
            let head = head.strip_suffix("mut").unwrap_or(head).trim_end();
            let head = head.strip_suffix('&').unwrap_or(head).trim_end();
            if let Some(head) = head.strip_suffix(':') {
                if let Some(name) = trailing_ident(head) {
                    push_unique(out, name);
                    continue;
                }
            }
            // `let [mut] name = HashMap::new()` and friends.
            if let Some(let_at) = code[..at].rfind("let ") {
                let binding = &code[let_at + 4..at];
                let binding = binding.trim_start().trim_start_matches("mut ").trim();
                if let Some(end) = binding.find(|c: char| !(c.is_alphanumeric() || c == '_')) {
                    if end > 0 && binding[end..].trim_start().starts_with(['=', ':']) {
                        push_unique(out, binding[..end].to_string());
                    }
                } else if !binding.is_empty() {
                    push_unique(out, binding.to_string());
                }
            }
        }
    }
}

/// The trailing identifier of `head`, if any.
fn trailing_ident(head: &str) -> Option<String> {
    let head = head.trim_end();
    let end = head.len();
    let start = head
        .rfind(|c: char| !(c.is_alphanumeric() || c == '_'))
        .map_or(0, |p| p + 1);
    if start < end {
        Some(head[start..end].to_string())
    } else {
        None
    }
}

fn push_unique(out: &mut Vec<String>, name: String) {
    if !out.contains(&name) {
        out.push(name);
    }
}

/// Whether `code` iterates the hash binding `name`; returns the
/// offending expression fragment.
fn iterates(code: &str, name: &str) -> Option<String> {
    let mut from = 0;
    while let Some(at) = find_word(&code[from..], name).map(|p| p + from) {
        let after = code[at + name.len()..].trim_start();
        if let Some(rest) = after.strip_prefix('.') {
            for m in HASH_ITER_METHODS {
                if rest.starts_with(m) && rest[m.len()..].starts_with('(') {
                    return Some(format!("{name}.{m}()"));
                }
            }
        }
        // `for x in name` / `for x in &name` / `for x in &mut name`.
        let before = code[..at].trim_end();
        let before = before.strip_suffix("mut").unwrap_or(before).trim_end();
        let before = before.strip_suffix('&').unwrap_or(before).trim_end();
        if before.ends_with(" in") || before == "in" {
            let loops = before.strip_suffix("in").unwrap_or("");
            if loops.contains("for ") && !after.starts_with('.') {
                return Some(format!("for … in {name}"));
            }
        }
        from = at + name.len();
    }
    None
}

// ---------------------------------------------------------------------------
// wall-clock / unseeded-rng
// ---------------------------------------------------------------------------

/// Denies wall-clock reads outside the bench/test carve-out: the
/// simulator's only clock is its own event time, derived from seeds.
fn wall_clock(ctx: &mut Ctx<'_>) {
    token_rule(ctx, "wall-clock", &["Instant::now", "SystemTime"], |t| {
        format!("`{t}` reads the wall clock; sim paths must derive time from the event loop")
    });
}

/// Denies ambient-entropy RNG construction outside the carve-out:
/// every stream must derive from an explicit seed.
fn unseeded_rng(ctx: &mut Ctx<'_>) {
    token_rule(
        ctx,
        "unseeded-rng",
        &["thread_rng", "from_entropy", "ThreadRng", "OsRng"],
        |t| format!("`{t}` draws ambient entropy; derive every stream from an explicit seed"),
    );
}

/// Shared token matcher for the carve-out-scoped determinism rules.
fn token_rule(
    ctx: &mut Ctx<'_>,
    rule: &'static str,
    tokens: &[&str],
    message: impl Fn(&str) -> String,
) {
    if ctx.cfg.is_bench_test(&ctx.file.path) {
        return;
    }
    for (idx, line) in ctx.file.lines.clone().iter().enumerate() {
        if line.in_test {
            continue;
        }
        for t in tokens {
            if line.code.contains(t) {
                ctx.emit(rule, idx, message(t));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// shard-nondet
// ---------------------------------------------------------------------------

/// Flags thread-identity probes and worker-count-dependent branches in
/// shard executor files: sharded results must be invariant to the
/// worker count, so any branch on it needs a written invariance
/// argument (inline allow).
fn shard_nondet(ctx: &mut Ctx<'_>) {
    if !ctx
        .cfg
        .shard_files
        .iter()
        .any(|f| ctx.file.path == f.as_str())
    {
        return;
    }
    for (idx, line) in ctx.file.lines.clone().iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        for t in ["thread::current", "ThreadId", "available_parallelism"] {
            if code.contains(t) {
                ctx.emit(
                    "shard-nondet",
                    idx,
                    format!("`{t}` in a shard executor: results must not depend on it"),
                );
            }
        }
        let branchy = find_word(code, "if").is_some()
            || find_word(code, "match").is_some()
            || find_word(code, "while").is_some();
        if branchy && code.contains("worker") {
            ctx.emit(
                "shard-nondet",
                idx,
                "branch on the worker count in a shard executor: justify result-invariance \
                 with an allow"
                    .into(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// tag-registry
// ---------------------------------------------------------------------------

/// Enforces the event-tag registry in the event-loop file: every
/// `const TAG_*: u64` must appear exactly once in the tie-order table
/// and have an explicit decode arm, so a new event kind cannot land
/// with an unconsidered same-timestamp ordering or a wildcard decode.
fn tag_registry(ctx: &mut Ctx<'_>) {
    if ctx.file.path != ctx.cfg.event_file {
        return;
    }
    let table_name = ctx.cfg.tie_order_table.clone();
    // Declared scalar tags: `const TAG_X: u64 = …`.
    let mut tags: Vec<(String, usize)> = Vec::new();
    for (idx, line) in ctx.file.lines.iter().enumerate() {
        let code = line.code.trim();
        if let Some(rest) = code.strip_prefix("const TAG_") {
            if let Some(colon) = rest.find(':') {
                let name = format!("TAG_{}", &rest[..colon].trim());
                if name != table_name && rest[colon..].contains("u64") && !rest.contains('[') {
                    tags.push((name, idx));
                }
            }
        }
    }
    if tags.is_empty() {
        return;
    }
    // The tie-order table: TAG_* tokens inside the initializer of the
    // `const TAG_TIE_ORDER` declaration. Bracket depth is tracked from
    // the `=` so the `]` in the array *type* doesn't end collection.
    let mut table: Vec<String> = Vec::new();
    let mut table_at = None;
    for (idx, line) in ctx.file.lines.iter().enumerate() {
        let code = line.code.trim();
        if (code.starts_with("const ") || code.starts_with("pub const "))
            && find_word(code, &table_name).is_some()
        {
            table_at = Some(idx);
            break;
        }
    }
    if let Some(start) = table_at {
        let mut text = String::new();
        let mut started = false;
        let mut depth = 0i32;
        'collect: for line in ctx.file.lines.iter().skip(start) {
            for c in line.code.chars() {
                if !started {
                    started = c == '=';
                    continue;
                }
                match c {
                    '[' => depth += 1,
                    ']' => {
                        depth -= 1;
                        if depth == 0 {
                            break 'collect;
                        }
                    }
                    _ => {
                        if depth > 0 {
                            text.push(c);
                        }
                    }
                }
            }
            text.push('\n');
        }
        collect_tag_tokens(&text, &table_name, &mut table);
    }
    let Some(table_at) = table_at else {
        let (_, first) = &tags[0];
        ctx.emit(
            "tag-registry",
            *first,
            format!(
                "event tags declared but no `{table_name}` tie-order table found; \
                 register every tag's same-timestamp ordering"
            ),
        );
        return;
    };
    for (tag, decl_at) in &tags {
        let registered = table.iter().filter(|t| *t == tag).count();
        if registered != 1 {
            ctx.emit(
                "tag-registry",
                *decl_at,
                format!(
                    "`{tag}` appears {registered} times in `{table_name}` (must be exactly 1): \
                     a tag outside the table sorts arbitrarily against its peers"
                ),
            );
        }
        let decodes = ctx.file.lines.iter().any(|l| {
            find_word(&l.code, tag)
                .map(|at| l.code[at + tag.len()..].trim_start().starts_with("=>"))
                .unwrap_or(false)
        });
        if !decodes {
            ctx.emit(
                "tag-registry",
                *decl_at,
                format!(
                    "`{tag}` has no explicit decode arm (`{tag} =>`); wildcard decode hides it"
                ),
            );
        }
    }
    for t in &table {
        if !tags.iter().any(|(tag, _)| tag == t) {
            ctx.emit(
                "tag-registry",
                table_at,
                format!("`{t}` is registered in `{table_name}` but never declared"),
            );
        }
    }
}

/// Collects `TAG_*` word tokens in `code`, excluding the table name.
fn collect_tag_tokens(code: &str, table_name: &str, out: &mut Vec<String>) {
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && {
                let d = bytes[i] as char;
                d.is_ascii_alphanumeric() || d == '_'
            } {
                i += 1;
            }
            let word = &code[start..i];
            if word.starts_with("TAG_") && word != table_name {
                out.push(word.to_string());
            }
            continue;
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// packing-cast
// ---------------------------------------------------------------------------

/// Flags `as u32`/`as u64` in packed-event and lane-payload code
/// unless the line carries an allow with a range justification: a
/// silent truncation in the packing layer corrupts event identity.
fn packing_cast(ctx: &mut Ctx<'_>) {
    if ctx.file.path != ctx.cfg.event_file {
        return;
    }
    let impls = ctx.cfg.packing_impls.clone();
    let fns = ctx.cfg.packing_fns.clone();
    for (idx, line) in ctx.file.lines.clone().iter().enumerate() {
        if line.in_test {
            continue;
        }
        let in_scope = impls.contains(&line.impl_name)
            || fns.iter().any(|f| line.fn_name.contains(f.as_str()));
        if !in_scope {
            continue;
        }
        for ty in ["u32", "u64"] {
            let mut from = 0;
            while let Some(at) = find_word(&line.code[from..], "as").map(|p| p + from) {
                let after = line.code[at + 2..].trim_start();
                if after.starts_with(ty)
                    && !after[ty.len()..]
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_')
                {
                    ctx.emit(
                        "packing-cast",
                        idx,
                        format!(
                            "`as {ty}` in packed-event/lane-payload code: truncation here \
                             corrupts event identity; allowlist with a range justification"
                        ),
                    );
                    break;
                }
                from = at + 2;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// ctor-validate
// ---------------------------------------------------------------------------

/// Enforces the documented validate-or-panic constructor policy
/// (ARCHITECTURE.md "Validation policy"): a `pub fn new` taking sizes
/// or rates (`usize`/`f64` parameters) must either assert/panic in its
/// body or document `# Panics` (delegating constructors).
fn ctor_validate(ctx: &mut Ctx<'_>) {
    if !ctx
        .cfg
        .ctor_paths
        .iter()
        .any(|p| ctx.file.path.starts_with(p.as_str()))
    {
        return;
    }
    let lines = ctx.file.lines.clone();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = line.code.trim();
        let is_ctor = code.starts_with("pub fn new(")
            || code.starts_with("pub fn new<")
            || code == "pub fn new";
        if !is_ctor {
            continue;
        }
        // Gather the signature (to the body `{` or a `;`) and the
        // parameter list within the outermost parens.
        let mut sig = String::new();
        let mut body_start = None;
        for (j, l) in lines.iter().enumerate().skip(idx) {
            sig.push_str(&l.code);
            sig.push(' ');
            if let Some(brace) = sig.find('{') {
                sig.truncate(brace);
                body_start = Some(j);
                break;
            }
            if sig.contains(';') {
                break;
            }
        }
        let params = match (sig.find('('), sig.rfind(')')) {
            (Some(open), Some(close)) if close > open => &sig[open + 1..close],
            _ => continue,
        };
        let sensitive = find_word(params, "usize").is_some() || find_word(params, "f64").is_some();
        if !sensitive {
            continue;
        }
        // Does the doc comment above declare `# Panics`?
        let mut documented = false;
        for l in lines[..idx].iter().rev() {
            let is_doc = l.comment.starts_with('/') || l.code.trim().starts_with("#[");
            let blank = l.code.trim().is_empty() && l.comment.is_empty();
            if !is_doc && !blank {
                break;
            }
            if l.comment.contains("# Panics") {
                documented = true;
                break;
            }
        }
        // Does the body validate (assert/panic/expect)?
        let mut validates = false;
        if let Some(start) = body_start {
            let mut depth = 0i32;
            for l in lines.iter().skip(start) {
                for c in l.code.chars() {
                    match c {
                        '{' => depth += 1,
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if l.code.contains("assert")
                    || l.code.contains("panic!")
                    || l.code.contains(".expect(")
                {
                    validates = true;
                }
                if depth <= 0 && l.code.contains('}') {
                    break;
                }
            }
        }
        if !documented && !validates {
            ctx.emit(
                "ctor-validate",
                idx,
                "`pub fn new` takes usize/f64 arguments but neither validates (assert/panic) \
                 nor documents `# Panics`; the qsim constructor policy is validate-or-panic"
                    .into(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// serve-coverage
// ---------------------------------------------------------------------------

/// Cross-file rule: every `pub fn serve*` in the serving crate must be
/// named by at least one test under the configured tests tree — the
/// repo's frozen-reference/conservation discipline, enforced
/// mechanically. Adding a `serve_*` entry point without pinning it
/// fails the build.
fn serve_coverage(files: &[ScannedFile], cfg: &Config, out: &mut Vec<Finding>) {
    let mut entry_points: Vec<(String, usize, usize)> = Vec::new(); // name, file idx, line idx
    for (fi, f) in files.iter().enumerate() {
        if !f.path.starts_with(&cfg.serve_src) {
            continue;
        }
        for (idx, line) in f.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let code = line.code.trim();
            if let Some(rest) = code.strip_prefix("pub fn ") {
                let name_end = rest
                    .find(|c: char| !(c.is_alphanumeric() || c == '_'))
                    .unwrap_or(rest.len());
                let name = &rest[..name_end];
                if name.starts_with("serve") && !entry_points.iter().any(|(n, _, _)| n == name) {
                    entry_points.push((name.to_string(), fi, idx));
                }
            }
        }
    }
    if entry_points.is_empty() {
        return;
    }
    let has_tests = files.iter().any(|f| f.path.starts_with(&cfg.serve_tests));
    for (name, fi, idx) in entry_points {
        let file = &files[fi];
        if file.allowed(idx, "serve-coverage") {
            continue;
        }
        let covered = has_tests
            && files.iter().any(|f| {
                f.path.starts_with(&cfg.serve_tests)
                    && f.lines.iter().any(|l| find_word(&l.code, &name).is_some())
            });
        if !covered {
            out.push(Finding {
                rule: "serve-coverage",
                severity: cfg.severity("serve-coverage"),
                path: file.path.clone(),
                line: idx + 1,
                message: format!(
                    "public entry point `{name}` is not named by any test under \
                     `{}`; add a frozen-reference or conservation property pinning it",
                    cfg.serve_tests
                ),
            });
        }
    }
}
