//! `recpipe-analysis`: the `simlint` static-analysis pass.
//!
//! The simulator's correctness claims rest on bit-for-bit determinism:
//! frozen-reference proptests pin each serving loop against its
//! predecessor, and sharded == serial merges hold only because nothing
//! in the hot path depends on hash order, wall-clock time, or unseeded
//! RNG. `simlint` turns that contract from prose into a mechanical
//! gate: a pure-std, hand-rolled scanner ([`mod@scan`]) feeds a rule
//! engine ([`rules`]) that denies hash-order iteration, ambient clocks
//! and entropy, unregistered event tags, unjustified packing casts,
//! non-validating public constructors, and untested `serve_*` entry
//! points — with an inline allowlist
//! (`// simlint: allow(<rule>) -- <justification>`) for the audited
//! exceptions.
//!
//! Run it with `cargo run -p recpipe-analysis --bin simlint`; it exits
//! nonzero on any deny-severity finding, so CI fails when the
//! discipline rots. See ARCHITECTURE.md "Determinism discipline,
//! mechanically enforced" for the rule table.

pub mod rules;
pub mod scan;

use rules::{check_file, check_workspace, Config, Finding, Severity};
use scan::{scan, ScannedFile};

/// The outcome of an analysis run.
#[derive(Debug)]
pub struct Report {
    /// All findings, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files: usize,
    /// Total source lines scanned.
    pub lines: usize,
}

impl Report {
    /// Whether any finding carries deny severity (CI failure).
    pub fn has_denies(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Deny)
    }
}

/// Analyzes a set of already-loaded `(path, text)` pairs. Paths are
/// workspace-relative with `/` separators; rule scoping matches on
/// them, so fixtures can exercise any rule by choosing the path.
pub fn analyze_files(sources: &[(String, String)], cfg: &Config) -> Report {
    let mut scanned: Vec<ScannedFile> = sources
        .iter()
        .map(|(path, text)| scan(path, text))
        .collect();
    scanned.sort_by(|a, b| a.path.cmp(&b.path));
    let mut findings = Vec::new();
    for file in &scanned {
        check_file(file, cfg, &mut findings);
    }
    check_workspace(&scanned, cfg, &mut findings);
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    Report {
        findings,
        files: scanned.len(),
        lines: scanned.iter().map(|f| f.lines.len()).sum(),
    }
}

/// Collects the workspace's own Rust sources under `root`: every
/// `.rs` file below `crates/`, plus top-level `src/`, `examples/`, and
/// `tests/` if present. Skips `target/` and `fixtures/` directories
/// (fixtures violate rules on purpose) and the offline dependency
/// shims (vendored API surface, not simulator code). The listing is
/// sorted so reports are stable across filesystems.
pub fn collect_files(root: &std::path::Path) -> std::io::Result<Vec<(String, String)>> {
    let mut paths: Vec<std::path::PathBuf> = Vec::new();
    for top in ["crates", "src", "examples", "tests"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut paths)?;
        }
    }
    let mut out: Vec<(String, String)> = Vec::new();
    for p in paths {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace('\\', "/");
        let text = std::fs::read_to_string(&p)?;
        out.push((rel, text));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

/// Recursive walker feeding [`collect_files`].
fn walk(dir: &std::path::Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name == ".git" {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans the workspace rooted at `root` and runs every rule.
pub fn analyze_workspace(root: &std::path::Path, cfg: &Config) -> std::io::Result<Report> {
    let sources = collect_files(root)?;
    Ok(analyze_files(&sources, cfg))
}
