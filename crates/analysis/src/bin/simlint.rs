//! `simlint` CLI: scans the workspace and exits nonzero on findings.
//!
//! Usage: `simlint [ROOT]` — with no argument it walks up from the
//! current directory to the workspace `Cargo.toml`. `--list-rules`
//! prints the registry and exits. The binary deliberately does no
//! timing of its own (`Instant::now` is exactly what it denies);
//! `bench_smoke` owns the wall-clock budget check.

use recpipe_analysis::analyze_workspace;
use recpipe_analysis::rules::{Config, RULES};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut root: Option<std::path::PathBuf> = None;
    for arg in &mut args {
        if arg == "--list-rules" {
            for r in RULES {
                println!("{:<14} {:<5} {}", r.id, r.severity.to_string(), r.summary);
            }
            return;
        }
        root = Some(std::path::PathBuf::from(arg));
    }
    let root = root.unwrap_or_else(find_workspace_root);
    let cfg = Config::default();
    let report = match analyze_workspace(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "simlint: failed to read workspace at {}: {e}",
                root.display()
            );
            std::process::exit(2);
        }
    };
    for f in &report.findings {
        println!("{f}");
    }
    println!(
        "simlint: {} findings across {} files ({} lines)",
        report.findings.len(),
        report.files,
        report.lines
    );
    if report.has_denies() {
        std::process::exit(1);
    }
}

/// Walks up from the current directory to the first `Cargo.toml`
/// declaring a `[workspace]`.
fn find_workspace_root() -> std::path::PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| std::path::PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir;
                }
            }
        }
        if !dir.pop() {
            return std::path::PathBuf::from(".");
        }
    }
}
