//! A hand-rolled lexical scanner for Rust sources.
//!
//! `simlint` deliberately does not parse Rust — a full grammar would
//! need an external crate (the build environment is offline) and the
//! rules only need *lexical* facts with a little structure on top:
//!
//! * which bytes are code vs. comment vs. string-literal content
//!   (token rules must not fire inside `"Instant::now"` in a doc
//!   string, and allow directives live in comments);
//! * which lines sit inside `#[cfg(test)]` items or `#[test]`
//!   functions (test code is exempt from the determinism rules);
//! * the innermost enclosing `impl` block and `fn` item per line (the
//!   packing-cast rule is scoped to the packed-event code);
//! * the inline allowlist, `// simlint: allow(<rule>) -- <why>`.
//!
//! The scanner is a char-level state machine over the whole file
//! (line comments, nested block comments, plain/raw/byte strings,
//! char literals vs. lifetimes) followed by a brace-depth pass that
//! tracks scopes and `cfg(test)` regions. String-literal *contents*
//! are blanked to spaces in the `code` view; the quotes survive so
//! code structure stays readable in messages.

/// One inline allowlist entry: `// simlint: allow(rule_a, rule_b) --
/// justification`. An entry with no `--`-separated justification is
/// rejected at parse time (the `bad-allow` rule), so every suppression
/// in the tree carries its reasoning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Rule ids the directive suppresses.
    pub rules: Vec<String>,
    /// The mandatory free-text justification after `--`.
    pub justification: String,
}

/// One source line, post-lex.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// The line with comments removed and string/char-literal contents
    /// blanked to spaces (delimiters kept).
    pub code: String,
    /// The comment text carried by the line (line + block comments).
    pub comment: String,
    /// Whether the line sits inside a `#[cfg(test)]` item or a
    /// `#[test]` function (including the attribute line itself).
    pub in_test: bool,
    /// Name of the innermost enclosing `fn`, or empty.
    pub fn_name: String,
    /// Self type of the innermost enclosing `impl`, or empty.
    pub impl_name: String,
}

/// A scanned source file: lexed lines plus resolved allow directives.
#[derive(Debug, Clone, Default)]
pub struct ScannedFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Lexed lines, 0-indexed (`lines[0]` is source line 1).
    pub lines: Vec<Line>,
    /// Effective allows per line (same indexing as `lines`). A
    /// directive on a comment-only line attaches to the next line that
    /// carries code; a trailing directive attaches to its own line.
    pub allows: Vec<Vec<Allow>>,
    /// Malformed directives: (line index, error message).
    pub malformed: Vec<(usize, String)>,
}

impl ScannedFile {
    /// Whether `rule` is allowlisted on 0-indexed line `idx`.
    pub fn allowed(&self, idx: usize, rule: &str) -> bool {
        self.allows
            .get(idx)
            .is_some_and(|a| a.iter().any(|al| al.rules.iter().any(|r| r == rule)))
    }
}

/// Lexes `text` into a [`ScannedFile`] under the given
/// workspace-relative `path`.
pub fn scan(path: &str, text: &str) -> ScannedFile {
    let raw_lines = strip(text);
    let mut lines: Vec<Line> = raw_lines
        .into_iter()
        .map(|(code, comment)| Line {
            code,
            comment,
            ..Line::default()
        })
        .collect();
    mark_scopes(&mut lines);
    let (allows, malformed) = resolve_allows(&lines);
    ScannedFile {
        path: path.to_string(),
        lines,
        allows,
        malformed,
    }
}

/// Lexer state for the char-level pass.
enum LexState {
    /// Plain code.
    Normal,
    /// Inside `// …` until end of line.
    LineComment,
    /// Inside `/* … */`, with nesting depth.
    BlockComment(u32),
    /// Inside a plain (escaped) string literal.
    Str,
    /// Inside a raw string literal closed by `"` plus `n` hashes.
    RawStr(u32),
    /// Inside a char literal.
    CharLit,
}

/// Splits `text` into per-line `(code, comment)` pairs with
/// string-literal contents blanked.
fn strip(text: &str) -> Vec<(String, String)> {
    let chars: Vec<char> = text.chars().collect();
    let mut out = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = LexState::Normal;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(state, LexState::LineComment) {
                state = LexState::Normal;
            }
            out.push((std::mem::take(&mut code), std::mem::take(&mut comment)));
            i += 1;
            continue;
        }
        match state {
            LexState::Normal => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = LexState::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = LexState::BlockComment(1);
                    i += 2;
                    continue;
                }
                // Raw (and raw byte) strings: r"…", r#"…"#, br"…".
                let ident_tail = code
                    .chars()
                    .last()
                    .is_some_and(|p| p.is_alphanumeric() || p == '_');
                if (c == 'r' || c == 'b') && !ident_tail {
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') && (hashes > 0 || j > i + 1 || c == 'r') {
                        for &d in &chars[i..=j] {
                            code.push(d);
                        }
                        state = LexState::RawStr(hashes);
                        i = j + 1;
                        continue;
                    }
                }
                if c == '"' {
                    code.push('"');
                    state = LexState::Str;
                    i += 1;
                    continue;
                }
                if c == '\'' && !ident_tail {
                    // Distinguish char literals from lifetimes: a char
                    // literal is 'x' or an escape; a lifetime never
                    // closes with a quote two chars on.
                    if chars.get(i + 1) == Some(&'\\') || chars.get(i + 2) == Some(&'\'') {
                        code.push('\'');
                        state = LexState::CharLit;
                        i += 1;
                        continue;
                    }
                }
                code.push(c);
                i += 1;
            }
            LexState::LineComment => {
                comment.push(c);
                i += 1;
            }
            LexState::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    state = if depth == 1 {
                        LexState::Normal
                    } else {
                        LexState::BlockComment(depth - 1)
                    };
                    i += 2;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = LexState::BlockComment(depth + 1);
                    i += 2;
                    continue;
                }
                comment.push(c);
                i += 1;
            }
            LexState::Str => {
                if c == '\\' {
                    code.push(' ');
                    if chars.get(i + 1).is_some_and(|&n| n != '\n') {
                        code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                    continue;
                }
                if c == '"' {
                    code.push('"');
                    state = LexState::Normal;
                } else {
                    code.push(' ');
                }
                i += 1;
            }
            LexState::RawStr(hashes) => {
                if c == '"' {
                    let mut k = 0u32;
                    while k < hashes && chars.get(i + 1 + k as usize) == Some(&'#') {
                        k += 1;
                    }
                    if k == hashes {
                        code.push('"');
                        for _ in 0..hashes {
                            code.push('#');
                        }
                        state = LexState::Normal;
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                code.push(' ');
                i += 1;
            }
            LexState::CharLit => {
                if c == '\\' {
                    code.push(' ');
                    if chars.get(i + 1).is_some() {
                        code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                    continue;
                }
                if c == '\'' {
                    code.push('\'');
                    state = LexState::Normal;
                } else {
                    code.push(' ');
                }
                i += 1;
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        out.push((code, comment));
    }
    out
}

/// One entry of the scope stack built by [`mark_scopes`].
struct Scope {
    /// Brace depth at which the scope opened.
    depth: usize,
    /// Whether the scope (or an ancestor) is test-gated.
    test: bool,
    /// `fn` name if the scope is a function body.
    fn_name: Option<String>,
    /// `impl` self type if the scope is an impl block.
    impl_name: Option<String>,
}

/// Second pass: walks the code view tracking brace depth, classifying
/// each opened block from the header accumulated since the previous
/// block boundary, and stamping per-line test/fn/impl context.
fn mark_scopes(lines: &mut [Line]) {
    let mut scopes: Vec<Scope> = Vec::new();
    let mut depth = 0usize;
    let mut header = String::new();
    for line in lines.iter_mut() {
        let code = line.code.clone();
        for c in code.chars() {
            match c {
                '{' => {
                    let inherited_test = scopes.iter().any(|s| s.test);
                    let (test, fn_name, impl_name) = classify_header(&header);
                    scopes.push(Scope {
                        depth,
                        test: inherited_test || test,
                        fn_name,
                        impl_name,
                    });
                    header.clear();
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    while scopes.last().is_some_and(|s| s.depth >= depth) {
                        scopes.pop();
                    }
                    header.clear();
                }
                ';' => header.clear(),
                _ => header.push(c),
            }
        }
        header.push(' ');
        line.in_test = scopes.iter().any(|s| s.test) || header.contains("cfg(test");
        line.fn_name = scopes
            .iter()
            .rev()
            .find_map(|s| s.fn_name.clone())
            .unwrap_or_default();
        line.impl_name = scopes
            .iter()
            .rev()
            .find_map(|s| s.impl_name.clone())
            .unwrap_or_default();
    }
}

/// Classifies a block header: is it test-gated, a `fn`, an `impl`?
fn classify_header(header: &str) -> (bool, Option<String>, Option<String>) {
    let test = header.contains("cfg(test") || header.contains("#[test]");
    let mut fn_name = None;
    let mut impl_name = None;
    let tokens: Vec<&str> = tokenize(header);
    for (i, t) in tokens.iter().enumerate() {
        if *t == "fn" {
            fn_name = tokens.get(i + 1).map(|s| s.to_string());
        }
        if *t == "impl" && impl_name.is_none() {
            // `impl<T> Foo for Bar` names Bar; `impl Foo` names Foo.
            let rest = &tokens[i + 1..];
            let named = match rest.iter().position(|t| *t == "for") {
                Some(f) => rest.get(f + 1),
                None => rest.first(),
            };
            impl_name = named.map(|s| s.to_string());
        }
    }
    (test, fn_name, impl_name)
}

/// Splits a header into identifier-ish tokens, dropping generics and
/// punctuation (`impl<T: Ord> Foo for Bar<T>` → `impl Foo for Bar`).
fn tokenize(header: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let bytes = header.as_bytes();
    let mut i = 0;
    let mut angle = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '<' {
            angle += 1;
            i += 1;
            continue;
        }
        if c == '>' {
            angle = angle.saturating_sub(1);
            i += 1;
            continue;
        }
        if angle == 0 && (c.is_ascii_alphanumeric() || c == '_') {
            let start = i;
            while i < bytes.len() && {
                let d = bytes[i] as char;
                d.is_ascii_alphanumeric() || d == '_'
            } {
                i += 1;
            }
            out.push(&header[start..i]);
            continue;
        }
        i += 1;
    }
    out
}

/// Third pass: parses `simlint:` directives out of comments and
/// attaches them to the lines they govern. Doc comments (`///`,
/// `//!`) are documentation, not suppression: directive syntax inside
/// them (e.g. docs *describing* the allowlist) is ignored.
fn resolve_allows(lines: &[Line]) -> (Vec<Vec<Allow>>, Vec<(usize, String)>) {
    let mut allows: Vec<Vec<Allow>> = vec![Vec::new(); lines.len()];
    let mut malformed = Vec::new();
    let mut pending: Vec<Allow> = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let mut here: Vec<Allow> = Vec::new();
        let is_doc = matches!(line.comment.trim_start().chars().next(), Some('/' | '!'));
        if !is_doc && line.comment.contains("simlint:") {
            match parse_directive(&line.comment) {
                Ok(a) => here.push(a),
                Err(e) => malformed.push((idx, e)),
            }
        }
        if line.code.trim().is_empty() {
            pending.append(&mut here);
        } else {
            let mut effective = std::mem::take(&mut pending);
            effective.append(&mut here);
            allows[idx] = effective;
        }
    }
    (allows, malformed)
}

/// Parses one `simlint: allow(a, b) -- justification` directive.
fn parse_directive(comment: &str) -> Result<Allow, String> {
    let at = comment.find("simlint:").expect("caller checked");
    let rest = comment[at + "simlint:".len()..].trim_start();
    let Some(args) = rest.strip_prefix("allow(") else {
        return Err("directive must be `simlint: allow(<rule, ...>) -- <justification>`".into());
    };
    let Some(close) = args.find(')') else {
        return Err("unclosed `allow(` in simlint directive".into());
    };
    let rules: Vec<String> = args[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("simlint allow directive names no rules".into());
    }
    let tail = args[close + 1..].trim_start();
    let Some(justification) = tail.strip_prefix("--") else {
        return Err("simlint allow directive is missing its `-- <justification>`".into());
    };
    let justification = justification.trim().to_string();
    if justification.is_empty() {
        return Err("simlint allow directive has an empty justification".into());
    }
    Ok(Allow {
        rules,
        justification,
    })
}

/// Whether `code` contains `word` delimited by non-identifier chars —
/// the matcher token rules use instead of a regex engine.
pub fn find_word(code: &str, word: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = code[from..].find(word) {
        let at = from + rel;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let end = at + word.len();
        let after_ok = !code[end..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + word.len().max(1);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let f = scan("x.rs", "let a = \"Instant::now\"; // Instant::now\n");
        assert!(!f.lines[0].code.contains("Instant"));
        assert!(f.lines[0].comment.contains("Instant::now"));
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let f = scan("x.rs", "let a = r#\"thread_rng \\\" \"# ; let b = 1;\n");
        assert!(!f.lines[0].code.contains("thread_rng"));
        assert!(f.lines[0].code.contains("let b = 1;"));
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let f = scan(
            "x.rs",
            "fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'x';\n",
        );
        assert!(f.lines[0].code.contains("str"));
        assert!(f.lines[1].code.contains("let c ="));
        assert!(!f.lines[1].code.contains('x'));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn live2() {}\n";
        let f = scan("x.rs", src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn scopes_track_impl_and_fn_names() {
        let src = "impl Event {\n    fn pack(a: u64) -> u32 {\n        a as u32\n    }\n}\n";
        let f = scan("x.rs", src);
        assert_eq!(f.lines[2].impl_name, "Event");
        assert_eq!(f.lines[2].fn_name, "pack");
    }

    #[test]
    fn trait_impls_name_the_self_type() {
        let src = "impl<T: Ord> Router for MyRouter<T> {\n    fn go(&self) {}\n}\n";
        let f = scan("x.rs", src);
        assert_eq!(f.lines[1].impl_name, "MyRouter");
    }

    #[test]
    fn allows_attach_to_the_next_code_line() {
        let src = "// simlint: allow(wall-clock) -- bench-only timer\nlet t = now();\n";
        let f = scan("x.rs", src);
        assert!(f.allowed(1, "wall-clock"));
        assert!(!f.allowed(0, "wall-clock"));
    }

    #[test]
    fn trailing_allows_attach_to_their_own_line() {
        let src = "let t = now(); // simlint: allow(wall-clock, hash-iter) -- two rules\n";
        let f = scan("x.rs", src);
        assert!(f.allowed(0, "wall-clock"));
        assert!(f.allowed(0, "hash-iter"));
    }

    #[test]
    fn directives_without_justification_are_malformed() {
        let f = scan("x.rs", "let t = 1; // simlint: allow(wall-clock)\n");
        assert_eq!(f.malformed.len(), 1);
        assert!(f.malformed[0].1.contains("justification"));
    }

    #[test]
    fn doc_comments_never_carry_directives() {
        let src = "/// Use `// simlint: allow(wall-clock) -- why` inline.\n\
                   //! Syntax: `simlint: allow(rule)`.\n\
                   let t = Instant::now();\n";
        let f = scan("x.rs", src);
        assert!(f.malformed.is_empty());
        assert!(!f.allowed(2, "wall-clock"));
    }

    #[test]
    fn word_matching_respects_identifier_boundaries() {
        assert!(find_word("serve_routed(x)", "serve").is_none());
        assert!(find_word("spec.serve(x)", "serve").is_some());
        assert!(find_word("xserve", "serve").is_none());
    }
}
