use recpipe_data::{DatasetSpec, Zipf};
use recpipe_hwsim::{Device, MemoryModel, PcieModel, StageWork};
use serde::{Deserialize, Serialize};

use crate::{
    EmbeddingCache, EmbeddingCacheConfig, Partition, SubArray, SubBatchSchedule, SystolicArray,
    TopKFilter,
};

/// Configuration of an RPAccel instance (Table 3 resources plus the
/// fission/pipelining design choices of Section 6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RpAccelConfig {
    /// Systolic-array fission plan (O.3).
    pub partition: Partition,
    /// Sub-batch pipelining schedule (O.5).
    pub schedule: SubBatchSchedule,
    /// Dual embedding-cache provisioning (O.4).
    pub cache: EmbeddingCacheConfig,
    /// Accelerator clock (Table 3: 250 MHz).
    pub freq_hz: u64,
    /// Weight/activation SRAM (Table 3: 8 MB); half is modeled as
    /// activation buffering.
    pub weight_act_sram_bytes: u64,
    /// Host link.
    pub pcie: PcieModel,
    /// Device DRAM (Table 3: 16 GB, 64 GB/s, 100 cycles).
    pub dram: MemoryModel,
    /// Fraction of DRAM bandwidth achieved by embedding gathers; higher
    /// than the baseline's because the look-ahead unit batches fetches.
    pub gather_efficiency: f64,
    /// Rows per embedding table of the served workload.
    pub table_rows: u64,
    /// Zipf exponent of embedding popularity.
    pub zipf_exponent: f64,
}

impl RpAccelConfig {
    /// Table 3 resources with the paper's operating points, serving the
    /// Criteo-like workload.
    pub fn paper_default(partition: Partition) -> Self {
        Self {
            partition,
            schedule: SubBatchSchedule::paper_default(),
            cache: EmbeddingCacheConfig::paper_default(),
            freq_hz: 250_000_000,
            weight_act_sram_bytes: 8 * 1024 * 1024,
            pcie: PcieModel::measured(),
            dram: MemoryModel::accel_dram(),
            gather_efficiency: 0.15,
            table_rows: 2_600_000,
            zipf_exponent: 0.9,
        }
    }

    /// Adapts the workload parameters to a dataset.
    pub fn with_dataset(mut self, spec: &DatasetSpec) -> Self {
        self.table_rows = spec.rows_per_table;
        self.zipf_exponent = spec.zipf_exponent;
        self
    }
}

/// Service profile the queueing simulator consumes: the per-query time is
/// split into a memory phase (serialized on the shared DRAM system) and a
/// compute phase (parallel across `lanes` sub-array groups).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceProfile {
    /// Seconds of DRAM occupancy per query (gathers + spills + weights).
    pub dram_service_s: f64,
    /// Seconds of sub-array occupancy per query (everything else).
    pub compute_service_s: f64,
    /// Concurrent query lanes.
    pub lanes: usize,
}

impl ServiceProfile {
    /// End-to-end single-query latency.
    pub fn latency(&self) -> f64 {
        self.dram_service_s + self.compute_service_s
    }

    /// Maximum sustainable throughput in QPS.
    pub fn max_qps(&self) -> f64 {
        let dram_cap = if self.dram_service_s > 0.0 {
            1.0 / self.dram_service_s
        } else {
            f64::INFINITY
        };
        let lane_cap = self.lanes as f64 / self.compute_service_s.max(1e-12);
        dram_cap.min(lane_cap)
    }
}

/// The RPAccel accelerator: reconfigurable systolic array, on-chip top-k
/// filtering, dual embedding caches, and sub-batch pipelining.
///
/// # Examples
///
/// ```
/// use recpipe_accel::{Partition, RpAccel, RpAccelConfig};
/// use recpipe_data::DatasetKind;
/// use recpipe_hwsim::StageWork;
/// use recpipe_models::{ModelConfig, ModelKind};
///
/// let accel = RpAccel::new(RpAccelConfig::paper_default(Partition::symmetric(8, 2)));
/// let criteo = |kind, items| {
///     StageWork::new(ModelConfig::for_kind(kind, DatasetKind::CriteoKaggle), items)
/// };
/// let two_stage = [criteo(ModelKind::RmSmall, 4096), criteo(ModelKind::RmLarge, 512)];
/// assert!(accel.query_latency(&two_stage) < 0.005);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RpAccel {
    config: RpAccelConfig,
}

impl RpAccel {
    /// Creates an accelerator from a configuration.
    pub fn new(config: RpAccelConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &RpAccelConfig {
        &self.config
    }

    fn popularity(&self) -> Zipf {
        Zipf::new(self.config.table_rows.max(1), self.config.zipf_exponent)
    }

    /// Builds the dual-cache model for a concrete stage chain.
    pub fn build_cache(&self, stages: &[StageWork]) -> EmbeddingCache {
        let front = stages.first().expect("at least one stage");
        let back = stages.last().expect("at least one stage");
        let tables = front.model.num_tables.max(1) as u64;
        EmbeddingCache::new(
            self.config.cache,
            self.popularity(),
            (front.model.embedding_dim * 4).max(1) as u64,
            (back.model.embedding_dim * 4).max(1) as u64,
            tables,
        )
    }

    /// Sub-array assigned to stage `idx` of an `n`-stage chain.
    fn sub_array_for_stage(&self, idx: usize, n: usize) -> SubArray {
        let p = &self.config.partition;
        if p.is_monolithic() || n == 1 {
            return p.frontend()[0];
        }
        if idx == 0 {
            p.frontend()[0]
        } else {
            // Later stages share the backend group round-robin.
            p.backend()[(idx - 1) % p.backend().len().max(1)]
        }
    }

    fn array_for(&self, sub: SubArray) -> SystolicArray {
        sub.as_array(self.config.freq_hz)
    }

    /// MLP time of one stage on its sub-array (seconds).
    pub fn stage_mlp_time(&self, work: &StageWork, idx: usize, n: usize) -> f64 {
        let array = self.array_for(self.sub_array_for_stage(idx, n));
        array.cycles_to_seconds(array.model_cycles(&work.model, work.items))
    }

    /// Activation-spill traffic for one stage in bytes (written out and
    /// read back when a chunk's activations overflow the on-chip buffer).
    pub fn spill_bytes(&self, work: &StageWork) -> u64 {
        let chunk = (work.items / self.config.schedule.sub_batches() as u64).max(1);
        let widest = work
            .model
            .mlp_bottom
            .iter()
            .chain(work.model.mlp_top.iter())
            .copied()
            .max()
            .unwrap_or(1) as u64;
        // Double-buffered activations; half the SRAM holds weights.
        let act_bytes = chunk * widest * 4 * 2;
        let act_sram = self.config.weight_act_sram_bytes / 2;
        2 * act_bytes.saturating_sub(act_sram)
    }

    /// DRAM occupancy of one query (embedding-gather misses, activation
    /// spills, weight streaming) in seconds.
    pub fn dram_time(&self, stages: &[StageWork]) -> f64 {
        let cache = self.build_cache(stages);
        let gather_bw = self.config.dram.bandwidth() * self.config.gather_efficiency;
        let mut t = 0.0;
        for (idx, work) in stages.iter().enumerate() {
            let frontend = idx == 0;
            let hit = if frontend {
                cache.frontend_hit_rate()
            } else {
                cache.backend_hit_rate()
            };
            let cost = work.cost();
            let line = cost.bytes_per_lookup.max(64) as f64;
            let lookups = (cost.sparse_lookups_per_item * work.items) as f64;
            t += lookups * (1.0 - hit) * line / gather_bw;
            t += self.spill_bytes(work) as f64 / self.config.dram.bandwidth();
            t += cost.mlp_param_bytes as f64 / self.config.dram.bandwidth();
        }
        t
    }

    /// End-to-end latency of one query through the stage chain.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty.
    pub fn query_latency(&self, stages: &[StageWork]) -> f64 {
        assert!(!stages.is_empty(), "need at least one stage");
        let n = stages.len();
        let cache = self.build_cache(stages);

        // Per-stage busy times: MLP + embedding fetch + filter drain.
        let filter_drain = |work: &StageWork, last: bool| -> f64 {
            if last {
                return 0.0;
            }
            let k = (work.items / 8).max(64); // forwarded survivors
            let filter = TopKFilter::paper_default(k as usize);
            (filter.num_bins() as u64 + k) as f64 / self.config.freq_hz as f64
        };

        let stage_times: Vec<f64> = stages
            .iter()
            .enumerate()
            .map(|(idx, work)| {
                self.stage_mlp_time(work, idx, n)
                    + cache.stage_fetch_time(work.items, idx == 0)
                    + self.spill_bytes(work) as f64 / self.config.dram.bandwidth()
                    + filter_drain(work, idx + 1 == n)
            })
            .collect();

        let pipeline_time = if n == 1 {
            stage_times[0]
        } else {
            self.config.schedule.makespan_chain(&stage_times)
        };

        self.config.pcie.transfer_time(stages[0].input_bytes()) + pipeline_time
    }

    /// At-scale service profile for the queueing simulator.
    pub fn service_profile(&self, stages: &[StageWork]) -> ServiceProfile {
        let latency = self.query_latency(stages);
        let dram = self.dram_time(stages).min(latency * 0.95);
        ServiceProfile {
            dram_service_s: dram,
            compute_service_s: (latency - dram).max(1e-9),
            lanes: self.config.partition.query_lanes(),
        }
    }

    /// Latency of a batch of `batch` queries executed as one launch:
    /// the candidate sets concatenate, so MLP weight streaming,
    /// activation-spill setup, and PCIe input setup amortize across the
    /// batch while embedding gathers scale with the items.
    ///
    /// `batch = 1` equals [`query_latency`](Self::query_latency)
    /// exactly.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty.
    pub fn batched_query_latency(&self, stages: &[StageWork], batch: usize) -> f64 {
        self.query_latency(&Self::scaled_stages(stages, batch))
    }

    /// [`service_profile`](Self::service_profile) for batches of
    /// `batch` queries per launch: the whole-batch service times of the
    /// serialized DRAM phase and the lanes-parallel compute phase.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty.
    pub fn batched_service_profile(&self, stages: &[StageWork], batch: usize) -> ServiceProfile {
        self.service_profile(&Self::scaled_stages(stages, batch))
    }

    fn scaled_stages(stages: &[StageWork], batch: usize) -> Vec<StageWork> {
        stages
            .iter()
            .map(|w| StageWork::new(w.model.clone(), w.items * batch.max(1) as u64))
            .collect()
    }

    /// A simple single-resource [`Device`] view (lanes-wide, full-latency
    /// service); prefer [`service_profile`](Self::service_profile) for
    /// at-scale studies where the DRAM bottleneck matters.
    pub fn executor(&self, stages: Vec<StageWork>) -> AccelExecutor {
        AccelExecutor {
            latency: self.query_latency(&stages),
            lanes: self.config.partition.query_lanes(),
        }
    }
}

/// Fixed-latency executor view of an [`RpAccel`] serving one pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccelExecutor {
    latency: f64,
    lanes: usize,
}

impl Device for AccelExecutor {
    fn name(&self) -> String {
        format!("rpaccel(x{})", self.lanes)
    }

    fn stage_latency(&self, _work: &StageWork) -> f64 {
        self.latency
    }

    fn servers(&self) -> usize {
        self.lanes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recpipe_data::DatasetKind;
    use recpipe_models::{ModelConfig, ModelKind};

    fn criteo(kind: ModelKind, items: u64) -> StageWork {
        StageWork::new(
            ModelConfig::for_kind(kind, DatasetKind::CriteoKaggle),
            items,
        )
    }

    fn two_stage() -> Vec<StageWork> {
        vec![
            criteo(ModelKind::RmSmall, 4096),
            criteo(ModelKind::RmLarge, 512),
        ]
    }

    fn accel(partition: Partition) -> RpAccel {
        RpAccel::new(RpAccelConfig::paper_default(partition))
    }

    #[test]
    fn two_stage_latency_is_sub_millisecond_scale() {
        let a = accel(Partition::symmetric(8, 8));
        let t = a.query_latency(&two_stage());
        assert!((1e-4..5e-3).contains(&t), "two-stage latency {t} s");
    }

    #[test]
    fn asymmetric_backend_cuts_low_load_latency() {
        // Figure 12 (bottom): RPAccel8,2 (two big backend arrays) beats
        // RPAccel8,16 on single-query latency.
        let big_backend = accel(Partition::symmetric(8, 2)).query_latency(&two_stage());
        let small_backend = accel(Partition::symmetric(8, 16)).query_latency(&two_stage());
        assert!(
            big_backend < small_backend,
            "8,2: {big_backend} vs 8,16: {small_backend}"
        );
    }

    #[test]
    fn more_lanes_raise_throughput_cap() {
        let p8 = accel(Partition::symmetric(8, 8)).service_profile(&two_stage());
        let p2 = accel(Partition::symmetric(2, 2)).service_profile(&two_stage());
        assert!(p8.lanes > p2.lanes);
    }

    #[test]
    fn dram_caps_throughput_before_lanes() {
        // With 8 lanes and sub-millisecond compute, the shared memory
        // system is the binding constraint (the reason the paper's
        // throughput tops out near ~1300 QPS rather than scaling with
        // lanes).
        let profile = accel(Partition::symmetric(8, 8)).service_profile(&two_stage());
        let dram_cap = 1.0 / profile.dram_service_s;
        let lane_cap = profile.lanes as f64 / profile.compute_service_s;
        assert!(dram_cap < lane_cap, "dram {dram_cap} vs lanes {lane_cap}");
        assert!((500.0..20_000.0).contains(&profile.max_qps()));
    }

    #[test]
    fn multi_stage_beats_single_stage_latency() {
        // O.1: decomposing the monolithic model reduces query latency.
        let single = RpAccel::new(RpAccelConfig::paper_default(Partition::monolithic()));
        let multi = accel(Partition::symmetric(8, 2));
        let t_single = single.query_latency(&[criteo(ModelKind::RmLarge, 4096)]);
        let t_multi = multi.query_latency(&two_stage());
        assert!(
            t_single / t_multi > 1.5,
            "single {t_single} vs multi {t_multi}"
        );
    }

    #[test]
    fn spills_vanish_with_subbatching() {
        let a = accel(Partition::symmetric(8, 8));
        // RMlarge@4096 in 4 chunks: 1024 x 512 wide x 8 B = 4 MB ≤ 4 MB
        // activation SRAM → no spill.
        assert_eq!(a.spill_bytes(&criteo(ModelKind::RmLarge, 4096)), 0);
        // Without sub-batching the same stage spills.
        let mut cfg = RpAccelConfig::paper_default(Partition::symmetric(8, 8));
        cfg.schedule = SubBatchSchedule::unpipelined();
        let unbatched = RpAccel::new(cfg);
        assert!(unbatched.spill_bytes(&criteo(ModelKind::RmLarge, 4096)) > 0);
    }

    #[test]
    fn service_profile_is_consistent() {
        let a = accel(Partition::symmetric(8, 8));
        let stages = two_stage();
        let p = a.service_profile(&stages);
        assert!((p.latency() - a.query_latency(&stages)).abs() < 1e-9);
        assert!(p.max_qps() > 0.0);
    }

    #[test]
    fn three_stage_chain_is_supported() {
        let a = accel(Partition::symmetric(8, 8));
        let stages = vec![
            criteo(ModelKind::RmSmall, 4096),
            criteo(ModelKind::RmMed, 512),
            criteo(ModelKind::RmLarge, 128),
        ];
        let t = a.query_latency(&stages);
        assert!(t > 0.0 && t < 0.01);
    }

    #[test]
    fn executor_reports_lanes() {
        let a = accel(Partition::symmetric(8, 16));
        let e = a.executor(two_stage());
        assert_eq!(e.servers(), 8);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_stage_chain_panics() {
        accel(Partition::symmetric(8, 8)).query_latency(&[]);
    }
}
