//! Future-model scaling study (paper Section 7.2, Figure 13): what
//! happens when embedding tables outgrow accelerator DRAM and spill to
//! SSD, and how multi-stage execution hides the resulting long-latency
//! accesses.
//!
//! Production models grow ~10x in three years; the paper projects
//! RPAccel behavior with tables scaled up to 32x (TB-class, 97% resident
//! on SSD) while the frontend scales the items ranked from 4K to 12K.

use recpipe_data::{DatasetSpec, Zipf};
use recpipe_hwsim::{MemoryModel, StageWork};
use recpipe_models::{ModelConfig, ModelKind};
use serde::{Deserialize, Serialize};

use crate::{Partition, RpAccel, RpAccelConfig};

/// Configuration of the scaling study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FutureScaling {
    /// The accelerator under study.
    accel: RpAccel,
    /// SSD tier characteristics.
    ssd: MemoryModel,
    /// Accelerator-attached DRAM capacity in bytes (Table 3: 16 GB).
    dram_bytes: u64,
    /// The workload whose backend model is being scaled.
    spec: DatasetSpec,
}

impl FutureScaling {
    /// Builds the study with the paper's defaults: an 8,8-partitioned
    /// RPAccel, Table 3 DRAM, NVMe-class SSD, Criteo-like workload.
    pub fn paper_default() -> Self {
        let spec = DatasetSpec::criteo_kaggle();
        Self {
            accel: RpAccel::new(
                RpAccelConfig::paper_default(Partition::symmetric(8, 8)).with_dataset(&spec),
            ),
            ssd: MemoryModel::ssd(),
            dram_bytes: 16 * (1 << 30),
            spec,
        }
    }

    /// The backend model configuration scaled `memory_scale`x in
    /// embedding rows.
    pub fn scaled_backend(&self, memory_scale: f64) -> ModelConfig {
        let mut cfg = ModelConfig::for_kind(ModelKind::RmLarge, self.spec.kind);
        cfg.rows_per_table = ((cfg.rows_per_table as f64) * memory_scale.max(1.0)) as u64;
        cfg
    }

    /// Fraction of the scaled model stored on SSD (beyond DRAM capacity).
    pub fn ssd_fraction(&self, memory_scale: f64) -> f64 {
        let model_bytes = self.scaled_backend(memory_scale).cost().model_bytes as f64;
        (1.0 - self.dram_bytes as f64 / model_bytes).max(0.0)
    }

    /// DRAM miss rate of backend embedding lookups: DRAM holds the
    /// hottest rows of the scaled table, the rest live on SSD. Figure 13
    /// (top): grows from ~17% to ~28% as the model scales to 32x.
    pub fn dram_miss_rate(&self, memory_scale: f64) -> f64 {
        let cfg = self.scaled_backend(memory_scale);
        let rows = cfg.rows_per_table.max(1);
        let row_bytes = (cfg.embedding_dim * 4) as u64;
        let rows_in_dram =
            (self.dram_bytes / cfg.num_tables.max(1) as u64 / row_bytes.max(1)).min(rows);
        if rows_in_dram == rows {
            return 0.0;
        }
        let zipf = Zipf::new(rows, self.spec.zipf_exponent);
        1.0 - zipf.cdf(rows_in_dram.max(1))
    }

    /// SSD time per query for the backend stage (`backend_items`
    /// re-ranked), before any overlap.
    pub fn ssd_time_per_query(&self, memory_scale: f64, backend_items: u64) -> f64 {
        let cfg = self.scaled_backend(memory_scale);
        let lookups = (cfg.num_tables as u64 * backend_items) as f64;
        let misses = lookups * self.dram_miss_rate(memory_scale);
        // SSD reads are page-granular; accesses to distinct rows rarely
        // coalesce, so each miss pays a full access amortized over the
        // queue depth the device sustains.
        const QUEUE_DEPTH: f64 = 256.0;
        misses * self.ssd.access_time((cfg.embedding_dim * 4) as u64) / QUEUE_DEPTH
    }

    /// Fraction of SSD access time the multi-stage pipeline hides behind
    /// frontend compute. Figure 13 (top): shrinks as models grow (more
    /// SSD time to hide) and recovers as the frontend ranks more items
    /// (more compute to hide it behind).
    pub fn overlap_fraction(&self, memory_scale: f64, compute_scale: f64) -> f64 {
        let frontend_items = (4096.0 * compute_scale.max(0.1)) as u64;
        // The backend re-ranks a fixed shortlist; scaling the frontend
        // pool adds hide-capacity without adding SSD traffic.
        let backend_items = 512;
        let frontend = StageWork::new(
            ModelConfig::for_kind(ModelKind::RmSmall, self.spec.kind),
            frontend_items,
        );
        let frontend_time = self.accel.stage_mlp_time(&frontend, 0, 2)
            + self
                .accel
                .build_cache(std::slice::from_ref(&frontend))
                .stage_fetch_time(frontend_items, true);
        let ssd_time = self.ssd_time_per_query(memory_scale, backend_items);
        if ssd_time <= 0.0 {
            return 1.0;
        }
        (frontend_time / ssd_time).min(1.0)
    }

    /// Projected query latency of the *multi-stage* RPAccel at the scaled
    /// workload: pipeline latency plus the un-hidden SSD time.
    pub fn multi_stage_latency(&self, memory_scale: f64, compute_scale: f64) -> f64 {
        let frontend_items = (4096.0 * compute_scale.max(0.1)) as u64;
        let backend_items = 512;
        let stages = vec![
            StageWork::new(
                ModelConfig::for_kind(ModelKind::RmSmall, self.spec.kind),
                frontend_items,
            ),
            StageWork::new(self.scaled_backend(memory_scale), backend_items),
        ];
        let base = self.accel.query_latency(&stages);
        let ssd = self.ssd_time_per_query(memory_scale, backend_items);
        let hidden = self.overlap_fraction(memory_scale, compute_scale);
        base + ssd * (1.0 - hidden)
    }

    /// Projected query latency of the *single-stage* design at the same
    /// scaled workload: every item is ranked by the scaled model and no
    /// SSD access can hide behind an earlier stage.
    pub fn single_stage_latency(&self, memory_scale: f64, compute_scale: f64) -> f64 {
        let items = (4096.0 * compute_scale.max(0.1)) as u64;
        let single = RpAccel::new(
            RpAccelConfig::paper_default(Partition::monolithic()).with_dataset(&self.spec),
        );
        let stage = StageWork::new(self.scaled_backend(memory_scale), items);
        let base = single.query_latency(std::slice::from_ref(&stage));
        base + self.ssd_time_per_query(memory_scale, items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_model_fits_in_dram() {
        let s = FutureScaling::paper_default();
        assert_eq!(s.ssd_fraction(1.0), 0.0);
        assert_eq!(s.dram_miss_rate(1.0), 0.0);
    }

    #[test]
    fn figure13_ssd_fraction_reaches_97_percent() {
        // Paper: "increasing the size of RMlarge by 32x requires storing
        // 97% of the embedding tables in SSD".
        let s = FutureScaling::paper_default();
        let frac = s.ssd_fraction(32.0);
        assert!((0.90..0.99).contains(&frac), "SSD fraction {frac}");
    }

    #[test]
    fn figure13_miss_rate_grows_into_paper_band() {
        // Paper: DRAM miss rates grow from ~17% to ~28% across the sweep.
        let s = FutureScaling::paper_default();
        let mid = s.dram_miss_rate(8.0);
        let big = s.dram_miss_rate(32.0);
        assert!(mid < big, "miss rate must grow: {mid} vs {big}");
        assert!((0.10..0.24).contains(&mid), "8x miss rate {mid}");
        assert!((0.20..0.36).contains(&big), "32x miss rate {big}");
    }

    #[test]
    fn figure13_overlap_shrinks_with_model_scale() {
        let s = FutureScaling::paper_default();
        let small = s.overlap_fraction(4.0, 1.0);
        let big = s.overlap_fraction(32.0, 1.0);
        assert!(big < small, "overlap should shrink: {small} -> {big}");
    }

    #[test]
    fn figure13_overlap_recovers_with_items() {
        let s = FutureScaling::paper_default();
        let narrow = s.overlap_fraction(32.0, 1.0);
        let wide = s.overlap_fraction(32.0, 3.0);
        assert!(
            wide > narrow,
            "more items must hide more: {narrow} -> {wide}"
        );
    }

    #[test]
    fn figure13_multi_stage_scales_more_gracefully() {
        // Bottom panel: the multi-stage design's latency grows far more
        // slowly than single-stage as the workload scales.
        let s = FutureScaling::paper_default();
        let single_growth = s.single_stage_latency(32.0, 3.0) / s.single_stage_latency(1.0, 1.0);
        let multi_growth = s.multi_stage_latency(32.0, 3.0) / s.multi_stage_latency(1.0, 1.0);
        assert!(
            single_growth > 1.8 * multi_growth,
            "single grows {single_growth}x, multi {multi_growth}x"
        );
    }

    #[test]
    fn multi_stage_is_faster_at_every_scale() {
        let s = FutureScaling::paper_default();
        for (m, c) in [(1.0, 1.0), (8.0, 2.0), (32.0, 3.0)] {
            assert!(
                s.multi_stage_latency(m, c) < s.single_stage_latency(m, c),
                "multi must win at scale ({m}, {c})"
            );
        }
    }
}
