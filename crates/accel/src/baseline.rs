use recpipe_data::{DatasetSpec, Zipf};
use recpipe_hwsim::{MemoryModel, PcieModel, StageWork, StaticCacheModel};
use serde::{Deserialize, Serialize};

use crate::{rpaccel::ServiceProfile, SystolicArray};

/// The state-of-the-art baseline accelerator (Centaur-style, paper
/// Section 6): a monolithic TPU-like systolic array with a static
/// hot-embedding cache, optimized for *single-stage* inference.
///
/// Its two structural handicaps against RPAccel:
///
/// * **Host-side filtering** — top-k selection between (or after) stages
///   runs on the host CPU, paying a PCIe round trip plus a host-side
///   sort (O.2 removes this);
/// * **Whole-query batches** — no sub-batching, so large-batch
///   activations overflow on-chip SRAM and stream through DRAM, and
///   embedding gathers are purely random-access (lower effective
///   bandwidth than RPAccel's look-ahead batched fetches).
///
/// # Examples
///
/// ```
/// use recpipe_accel::BaselineAccel;
/// use recpipe_data::DatasetKind;
/// use recpipe_hwsim::StageWork;
/// use recpipe_models::{ModelConfig, ModelKind};
///
/// let baseline = BaselineAccel::paper_default();
/// let work = StageWork::new(
///     ModelConfig::for_kind(ModelKind::RmLarge, DatasetKind::CriteoKaggle),
///     4096,
/// );
/// let t = baseline.query_latency(&work, 64);
/// assert!(t > 0.0005 && t < 0.02);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineAccel {
    /// The monolithic MLP engine (128x128 at 250 MHz).
    pub array: SystolicArray,
    /// Static embedding cache capacity in bytes (all 16 MB, no
    /// look-ahead partition).
    pub embedding_cache_bytes: u64,
    /// Weight/activation SRAM in bytes (8 MB).
    pub weight_act_sram_bytes: u64,
    /// Host link.
    pub pcie: PcieModel,
    /// Device DRAM.
    pub dram: MemoryModel,
    /// Fraction of DRAM bandwidth achieved by random embedding gathers.
    pub gather_efficiency: f64,
    /// Host-side sort cost per item scored, seconds.
    pub host_sort_s_per_item: f64,
    /// Rows per embedding table of the served workload.
    pub table_rows: u64,
    /// Zipf exponent of embedding popularity.
    pub zipf_exponent: f64,
}

impl BaselineAccel {
    /// Table 3-equivalent resources serving the Criteo-like workload.
    pub fn paper_default() -> Self {
        Self {
            array: SystolicArray::paper_default(),
            embedding_cache_bytes: 16 * 1024 * 1024,
            weight_act_sram_bytes: 8 * 1024 * 1024,
            pcie: PcieModel::measured(),
            dram: MemoryModel::accel_dram(),
            gather_efficiency: 0.08,
            host_sort_s_per_item: 25e-9,
            table_rows: 2_600_000,
            zipf_exponent: 0.9,
        }
    }

    /// Adapts the workload parameters to a dataset.
    pub fn with_dataset(mut self, spec: &DatasetSpec) -> Self {
        self.table_rows = spec.rows_per_table;
        self.zipf_exponent = spec.zipf_exponent;
        self
    }

    /// Static-cache hit rate for the given stage's row size.
    pub fn cache_hit_rate(&self, work: &StageWork) -> f64 {
        let tables = work.model.num_tables.max(1) as u64;
        let per_table = self.embedding_cache_bytes / tables;
        let row_bytes = (work.model.embedding_dim * 4).max(1) as u64;
        StaticCacheModel::with_capacity_bytes(
            Zipf::new(self.table_rows.max(1), self.zipf_exponent),
            per_table,
            row_bytes,
        )
        .hit_rate()
    }

    /// Activation spill traffic for a whole-query batch, in bytes.
    pub fn spill_bytes(&self, work: &StageWork) -> u64 {
        let widest = work
            .model
            .mlp_bottom
            .iter()
            .chain(work.model.mlp_top.iter())
            .copied()
            .max()
            .unwrap_or(1) as u64;
        let act_bytes = work.items * widest * 4 * 2;
        let act_sram = self.weight_act_sram_bytes / 2;
        2 * act_bytes.saturating_sub(act_sram)
    }

    /// DRAM occupancy per query in seconds.
    pub fn dram_time(&self, work: &StageWork) -> f64 {
        let cost = work.cost();
        let hit = self.cache_hit_rate(work);
        let line = cost.bytes_per_lookup.max(64) as f64;
        let lookups = (cost.sparse_lookups_per_item * work.items) as f64;
        let gather_bw = self.dram.bandwidth() * self.gather_efficiency;
        lookups * (1.0 - hit) * line / gather_bw
            + self.spill_bytes(work) as f64 / self.dram.bandwidth()
            + cost.mlp_param_bytes as f64 / self.dram.bandwidth()
    }

    /// Host-side top-k filtering round trip: ship every CTR score to the
    /// host, sort there, return the selected ids.
    pub fn host_filter_time(&self, items: u64, k: u64) -> f64 {
        self.pcie.round_trip_time(items * 4, k * 4) + items as f64 * self.host_sort_s_per_item
    }

    /// End-to-end single-stage query latency, serving the top `k` items.
    pub fn query_latency(&self, work: &StageWork, k: u64) -> f64 {
        let mlp = self
            .array
            .cycles_to_seconds(self.array.model_cycles(&work.model, work.items));
        self.pcie.transfer_time(work.input_bytes())
            + mlp
            + self.dram_time(work)
            + self.host_filter_time(work.items, k)
    }

    /// At-scale service profile (single lane; DRAM phase serialized).
    pub fn service_profile(&self, work: &StageWork, k: u64) -> ServiceProfile {
        let latency = self.query_latency(work, k);
        let dram = self.dram_time(work).min(latency * 0.95);
        ServiceProfile {
            dram_service_s: dram,
            compute_service_s: (latency - dram).max(1e-9),
            lanes: 1,
        }
    }

    /// Latency of a batch of `batch` queries executed as one launch,
    /// each still served its own top `k`: the candidate sets concatenate
    /// (amortizing model streaming, PCIe setup, and the host round
    /// trip), and the host sorts each query's scores.
    ///
    /// `batch = 1` equals [`query_latency`](Self::query_latency)
    /// exactly.
    pub fn batched_query_latency(&self, work: &StageWork, k: u64, batch: usize) -> f64 {
        let batch = batch.max(1) as u64;
        let scaled = StageWork::new(work.model.clone(), work.items * batch);
        self.query_latency(&scaled, k * batch)
    }

    /// [`service_profile`](Self::service_profile) for batches of
    /// `batch` queries per launch.
    pub fn batched_service_profile(
        &self,
        work: &StageWork,
        k: u64,
        batch: usize,
    ) -> ServiceProfile {
        let b = batch.max(1) as u64;
        let scaled = StageWork::new(work.model.clone(), work.items * b);
        self.service_profile(&scaled, k * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recpipe_data::DatasetKind;
    use recpipe_models::{ModelConfig, ModelKind};

    fn work(kind: ModelKind, items: u64) -> StageWork {
        StageWork::new(
            ModelConfig::for_kind(kind, DatasetKind::CriteoKaggle),
            items,
        )
    }

    #[test]
    fn baseline_is_millisecond_scale() {
        let b = BaselineAccel::paper_default();
        let t = b.query_latency(&work(ModelKind::RmLarge, 4096), 64);
        assert!((5e-4..8e-3).contains(&t), "baseline latency {t}");
    }

    #[test]
    fn host_filtering_is_a_real_cost() {
        let b = BaselineAccel::paper_default();
        let t = b.host_filter_time(4096, 64);
        // Two PCIe legs + a ~100 us host sort.
        assert!(t > 50e-6, "host filter {t}");
    }

    #[test]
    fn whole_query_batches_spill() {
        let b = BaselineAccel::paper_default();
        // 4096 x 512 x 8 B = 16.8 MB of activations vs 4 MB of buffer.
        assert!(b.spill_bytes(&work(ModelKind::RmLarge, 4096)) > 10_000_000);
    }

    #[test]
    fn single_lane_service() {
        let b = BaselineAccel::paper_default();
        let p = b.service_profile(&work(ModelKind::RmLarge, 4096), 64);
        assert_eq!(p.lanes, 1);
        assert!(p.max_qps() < 2000.0, "baseline cap {}", p.max_qps());
    }

    #[test]
    fn cache_hit_rate_is_meaningful() {
        let b = BaselineAccel::paper_default();
        let hr = b.cache_hit_rate(&work(ModelKind::RmLarge, 4096));
        assert!((0.1..0.9).contains(&hr), "hit rate {hr}");
    }

    #[test]
    fn dataset_override_changes_locality() {
        let criteo = BaselineAccel::paper_default();
        let ml = BaselineAccel::paper_default().with_dataset(&DatasetSpec::movielens_1m());
        // MovieLens' tiny tables fit entirely: hit rate ~1.
        let w = StageWork::new(
            ModelConfig::for_kind(ModelKind::RmLarge, DatasetKind::MovieLens1M),
            1024,
        );
        assert!(ml.cache_hit_rate(&w) > criteo.cache_hit_rate(&work(ModelKind::RmLarge, 4096)));
    }
}
