use serde::{Deserialize, Serialize};

/// Sub-batch pipelining schedule (paper Takeaway 4, O.5, Figure 9 right).
///
/// A query of `N` items is split into `n` sub-batches. The frontend
/// processes sub-batch `i` while the backend re-ranks the filtered
/// survivors of sub-batch `i-1`, overlapping the two stages within one
/// query. The classic two-stage pipeline makespan with per-chunk times
/// `f` and `b` is:
///
/// ```text
/// makespan = f + max(f, b) * (n - 1) + b
/// ```
///
/// Each extra chunk pays a per-chunk overhead (weight re-streaming,
/// control) — the reason the paper settles on **four** sub-batches:
/// deeper splitting stops paying for itself and stitching top-k/n per
/// chunk erodes quality.
///
/// # Examples
///
/// ```
/// use recpipe_accel::SubBatchSchedule;
///
/// let s = SubBatchSchedule::new(4, 10e-6);
/// // Frontend 400 us, backend 200 us → pipelining hides most of the backend.
/// let pipelined = s.makespan(400e-6, 200e-6);
/// assert!(pipelined < 600e-6);
/// assert!(pipelined >= 400e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SubBatchSchedule {
    sub_batches: usize,
    per_chunk_overhead_s: f64,
}

impl SubBatchSchedule {
    /// Creates a schedule with `sub_batches` chunks and a per-chunk
    /// overhead.
    ///
    /// # Panics
    ///
    /// Panics if `sub_batches == 0` or the overhead is negative/NaN.
    pub fn new(sub_batches: usize, per_chunk_overhead_s: f64) -> Self {
        assert!(sub_batches > 0, "need at least one sub-batch");
        assert!(
            per_chunk_overhead_s >= 0.0 && !per_chunk_overhead_s.is_nan(),
            "invalid overhead"
        );
        Self {
            sub_batches,
            per_chunk_overhead_s,
        }
    }

    /// The paper's operating point: four sub-batches, 10 us chunk
    /// overhead.
    pub fn paper_default() -> Self {
        Self::new(4, 10e-6)
    }

    /// An unpipelined schedule (one chunk): frontend then backend.
    pub fn unpipelined() -> Self {
        Self::new(1, 0.0)
    }

    /// Number of sub-batches.
    pub fn sub_batches(&self) -> usize {
        self.sub_batches
    }

    /// Pipelined makespan of a two-stage query whose *whole-query* stage
    /// times are `frontend_s` and `backend_s`.
    pub fn makespan(&self, frontend_s: f64, backend_s: f64) -> f64 {
        let n = self.sub_batches as f64;
        let f = frontend_s / n + self.per_chunk_overhead_s;
        let b = backend_s / n + self.per_chunk_overhead_s;
        f + f.max(b) * (n - 1.0) + b
    }

    /// Makespan for a chain of stage times (first stage feeds the second,
    /// and so on), generalizing [`makespan`](Self::makespan) to three-plus
    /// stages: per-chunk times flow through the pipeline and the
    /// bottleneck stage sets the steady-state rate.
    pub fn makespan_chain(&self, stage_times: &[f64]) -> f64 {
        if stage_times.is_empty() {
            return 0.0;
        }
        let n = self.sub_batches as f64;
        let chunk: Vec<f64> = stage_times
            .iter()
            .map(|t| t / n + self.per_chunk_overhead_s)
            .collect();
        let bottleneck = chunk.iter().cloned().fold(0.0, f64::max);
        chunk.iter().sum::<f64>() + bottleneck * (n - 1.0)
    }

    /// How the per-chunk top-k is divided: each chunk forwards `k / n`
    /// survivors which are stitched into the next stage's input (the
    /// quality effect the evaluator in `recpipe-core` measures).
    pub fn survivors_per_chunk(&self, k: usize) -> usize {
        (k / self.sub_batches).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpipelined_is_simple_sum() {
        let s = SubBatchSchedule::unpipelined();
        assert!((s.makespan(3.0, 2.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn pipelining_beats_serial_execution() {
        // O.5: ~1.3x latency reduction for the paper's stage balance.
        let serial = SubBatchSchedule::unpipelined().makespan(400e-6, 250e-6);
        let pipelined = SubBatchSchedule::paper_default().makespan(400e-6, 250e-6);
        let speedup = serial / pipelined;
        assert!(
            (1.15..1.7).contains(&speedup),
            "pipelining speedup {speedup}"
        );
    }

    #[test]
    fn makespan_never_beats_bottleneck_stage() {
        let s = SubBatchSchedule::new(8, 0.0);
        let m = s.makespan(1.0, 0.1);
        assert!(m >= 1.0);
    }

    #[test]
    fn deep_splitting_pays_overhead() {
        // With a large per-chunk overhead, 64 chunks must be slower than 4.
        let four = SubBatchSchedule::new(4, 50e-6).makespan(400e-6, 250e-6);
        let sixty_four = SubBatchSchedule::new(64, 50e-6).makespan(400e-6, 250e-6);
        assert!(sixty_four > four);
    }

    #[test]
    fn chain_matches_two_stage_makespan() {
        let s = SubBatchSchedule::paper_default();
        let two = s.makespan(300e-6, 200e-6);
        let chain = s.makespan_chain(&[300e-6, 200e-6]);
        assert!((two - chain).abs() < 1e-12);
    }

    #[test]
    fn three_stage_chain_is_bounded_sensibly() {
        let s = SubBatchSchedule::new(4, 0.0);
        let chain = s.makespan_chain(&[400e-6, 200e-6, 100e-6]);
        // At least the bottleneck, at most the serial sum.
        assert!(chain >= 400e-6);
        assert!(chain <= 700e-6 + 1e-12);
    }

    #[test]
    fn empty_chain_is_zero() {
        assert_eq!(SubBatchSchedule::paper_default().makespan_chain(&[]), 0.0);
    }

    #[test]
    fn survivors_split_evenly() {
        let s = SubBatchSchedule::paper_default();
        assert_eq!(s.survivors_per_chunk(512), 128);
        assert_eq!(s.survivors_per_chunk(2), 1); // floor at one
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_subbatches_panics() {
        SubBatchSchedule::new(0, 0.0);
    }
}
