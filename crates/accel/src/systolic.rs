use recpipe_models::ModelConfig;
use serde::{Deserialize, Serialize};

/// A weight-stationary systolic array MLP engine (paper Section 6.2,
/// following the TPU/Centaur lineage).
///
/// ## Cycle model
///
/// A layer of shape `(in_dim, out_dim)` over a batch of `b` items tiles
/// the weight matrix into `ceil(in/rows) x ceil(out/cols)` tiles. Each
/// tile costs:
///
/// ```text
/// rows            cycles to load the stationary weights, plus
/// b + rows + cols cycles to stream the batch through (fill + drain).
/// ```
///
/// Utilization is the ratio of useful MACs to `rows * cols * cycles`.
/// Small models on large arrays waste most of the fabric — exactly the
/// effect of Figure 10(a) that motivates fission into sub-arrays.
///
/// # Examples
///
/// ```
/// use recpipe_accel::SystolicArray;
///
/// let array = SystolicArray::paper_default(); // 128x128 @ 250 MHz
/// let run = array.layer_run(13, 64, 4096);
/// assert!(run.utilization < 0.10); // RMsmall's first layer wastes the fabric
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SystolicArray {
    rows: usize,
    cols: usize,
    freq_hz: u64,
}

/// Cycle-level outcome of running one layer on a [`SystolicArray`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerRun {
    /// Total cycles including weight loads and pipeline fill/drain.
    pub cycles: u64,
    /// Useful multiply-accumulates performed.
    pub macs: u64,
    /// `macs / (rows * cols * cycles)` in `(0, 1]`.
    pub utilization: f64,
}

impl SystolicArray {
    /// Creates an array with the given geometry and clock.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the frequency is zero.
    pub fn new(rows: usize, cols: usize, freq_hz: u64) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be positive");
        assert!(freq_hz > 0, "frequency must be positive");
        Self {
            rows,
            cols,
            freq_hz,
        }
    }

    /// The paper's Table 3 configuration: 128x128 MACs at 250 MHz.
    pub fn paper_default() -> Self {
        Self::new(128, 128, 250_000_000)
    }

    /// Array rows (stationary-weight input dimension).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Array columns (output dimension).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Clock frequency in Hz.
    pub fn freq_hz(&self) -> u64 {
        self.freq_hz
    }

    /// Total MAC units.
    pub fn macs(&self) -> usize {
        self.rows * self.cols
    }

    /// Cycle cost of one `(in_dim, out_dim)` layer over a batch.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn layer_run(&self, in_dim: usize, out_dim: usize, batch: u64) -> LayerRun {
        assert!(in_dim > 0 && out_dim > 0 && batch > 0, "degenerate layer");
        let tiles_r = in_dim.div_ceil(self.rows) as u64;
        let tiles_c = out_dim.div_ceil(self.cols) as u64;
        let per_tile = self.rows as u64 + batch + (self.rows + self.cols) as u64;
        let cycles = tiles_r * tiles_c * per_tile;
        let macs = in_dim as u64 * out_dim as u64 * batch;
        let capacity = (self.rows * self.cols) as u64 * cycles;
        LayerRun {
            cycles,
            macs,
            utilization: macs as f64 / capacity as f64,
        }
    }

    /// Cycles to run every MLP layer of `model` over `items`, plus the
    /// feature interaction (executed as a wide vector op on the array's
    /// column lanes at 50% efficiency).
    pub fn model_cycles(&self, model: &ModelConfig, items: u64) -> u64 {
        let mut cycles = 0u64;
        let mut chain = |dims: &[usize]| {
            for w in dims.windows(2) {
                cycles += self.layer_run(w[0], w[1], items).cycles;
            }
        };
        chain(&model.mlp_bottom);
        chain(&model.mlp_top);

        let cost = model.cost();
        let interaction_macs = (cost.flops_per_item - cost.mlp_flops_per_item) * items;
        let lanes = (self.rows * self.cols) as u64 / 2;
        cycles += interaction_macs.div_ceil(lanes.max(1));
        cycles
    }

    /// Aggregate utilization of running `model` over `items`.
    pub fn model_utilization(&self, model: &ModelConfig, items: u64) -> f64 {
        let cycles = self.model_cycles(model, items);
        let macs = model.cost().flops_per_item * items;
        macs as f64 / ((self.rows * self.cols) as u64 * cycles) as f64
    }

    /// Converts cycles to seconds at this array's clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.freq_hz as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recpipe_data::DatasetKind;
    use recpipe_models::ModelKind;

    fn cfg(kind: ModelKind) -> ModelConfig {
        ModelConfig::for_kind(kind, DatasetKind::CriteoKaggle)
    }

    #[test]
    fn single_tile_layer_cycle_count() {
        let a = SystolicArray::new(128, 128, 250_000_000);
        let run = a.layer_run(128, 128, 1000);
        // One tile: 128 (load) + 1000 + 256 (fill/drain).
        assert_eq!(run.cycles, 128 + 1000 + 256);
    }

    #[test]
    fn tiling_multiplies_cycles() {
        let a = SystolicArray::new(128, 128, 250_000_000);
        let one = a.layer_run(128, 128, 1000).cycles;
        let four = a.layer_run(256, 256, 1000).cycles;
        assert_eq!(four, 4 * one);
    }

    #[test]
    fn utilization_is_bounded() {
        let a = SystolicArray::paper_default();
        for (i, o, b) in [(13usize, 64usize, 4096u64), (512, 256, 256), (1, 1, 1)] {
            let run = a.layer_run(i, o, b);
            assert!(run.utilization > 0.0 && run.utilization <= 1.0);
        }
    }

    #[test]
    fn figure10a_small_model_wastes_large_array() {
        // RMsmall on the monolithic 128x128 array: utilization well below
        // the ~30% the paper reports for the two-stage mix.
        let a = SystolicArray::paper_default();
        let util = a.model_utilization(&cfg(ModelKind::RmSmall), 4096);
        assert!(util < 0.10, "RMsmall monolithic utilization {util}");
    }

    #[test]
    fn figure10a_small_array_runs_small_model_efficiently() {
        // The same RMsmall on an 8x8 sub-array is far better utilized but
        // takes more cycles — the latency/utilization tradeoff of
        // Figure 10(a).
        let big = SystolicArray::new(128, 128, 250_000_000);
        let small = SystolicArray::new(8, 8, 250_000_000);
        let model = cfg(ModelKind::RmSmall);
        let u_big = big.model_utilization(&model, 4096);
        let u_small = small.model_utilization(&model, 4096);
        let c_big = big.model_cycles(&model, 4096);
        let c_small = small.model_cycles(&model, 4096);
        assert!(u_small > 3.0 * u_big, "util {u_big} -> {u_small}");
        assert!(c_small > c_big, "cycles {c_big} -> {c_small}");
    }

    #[test]
    fn larger_arrays_reduce_latency_for_rmlarge() {
        let model = cfg(ModelKind::RmLarge);
        let mut prev = u64::MAX;
        for dim in [16usize, 32, 64, 128] {
            let a = SystolicArray::new(dim, dim, 250_000_000);
            let c = a.model_cycles(&model, 4096);
            assert!(c < prev, "{dim}x{dim}: {c} cycles");
            prev = c;
        }
    }

    #[test]
    fn rmlarge_runs_in_sub_millisecond_on_paper_array() {
        let a = SystolicArray::paper_default();
        let t = a.cycles_to_seconds(a.model_cycles(&cfg(ModelKind::RmLarge), 4096));
        assert!((5e-5..2e-3).contains(&t), "RMlarge@4096: {t} s");
    }

    #[test]
    fn utilization_improves_with_batch() {
        let a = SystolicArray::paper_default();
        let lo = a.layer_run(128, 128, 64).utilization;
        let hi = a.layer_run(128, 128, 8192).utilization;
        assert!(hi > lo);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_batch_panics() {
        SystolicArray::paper_default().layer_run(8, 8, 0);
    }
}
