use serde::{Deserialize, Serialize};

/// Streaming, approximate top-k filtering unit (paper Figure 10(b),
/// Takeaway 6).
///
/// The final MLP layer emits one CTR score per cycle. Instead of sorting
/// (whose latency scales with item count and whose hardware is
/// area-hungry), the unit:
///
/// 1. maintains `num_bins` score buckets over `[0, 1)`;
/// 2. drops scores below `ctr_threshold` (saving id-buffer SRAM: the
///    paper reduces the weight-SRAM overhead from 12% to 3% at a 0.5
///    threshold);
/// 3. after the stream ends, walks bins from the top until at least `k`
///    ids are covered and forwards those ids — *at least* `k`,
///    approximately ordered at bin granularity.
///
/// The selected set is a superset of the true top-`m` for some `m <= k`
/// and always contains every item whose score clears the lowest selected
/// bin — the inter-stage filter does not need total order (scores are
/// recomputed by the next stage anyway), which is why the approximation
/// does not degrade end-to-end quality.
///
/// # Examples
///
/// ```
/// use recpipe_accel::TopKFilter;
///
/// let filter = TopKFilter::paper_default(512);
/// let scores: Vec<(u64, f64)> = (0..4096).map(|i| (i, (i % 1000) as f64 / 1000.0)).collect();
/// let out = filter.filter(&scores);
/// assert!(out.selected.len() >= 512);
/// assert!(out.drain_cycles < 10_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopKFilter {
    num_bins: usize,
    k: usize,
    ctr_threshold: f64,
}

/// Result of filtering one score stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FilterOutcome {
    /// Ids forwarded to the next stage (at least `k` when enough items
    /// clear the threshold), in bin-major (approximately descending
    /// score) order.
    pub selected: Vec<u64>,
    /// Ids that cleared the CTR threshold and therefore occupied id
    /// buffer space.
    pub buffered: usize,
    /// Cycles to identify the selected bins and copy their ids out after
    /// the stream ends (the only non-overlapped latency; binning itself
    /// rides on the score stream at one per cycle).
    pub drain_cycles: u64,
}

impl TopKFilter {
    /// Bytes buffered per candidate id: the id plus the dense/categorical
    /// input payload the next stage will need (13 dense floats + 26
    /// sparse ids + score/metadata).
    pub const BYTES_PER_BUFFERED_ITEM: u64 = 192;

    /// Creates a filter with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `num_bins == 0`, `k == 0`, or the threshold is outside
    /// `[0, 1)`.
    pub fn new(num_bins: usize, k: usize, ctr_threshold: f64) -> Self {
        assert!(num_bins > 0, "need at least one bin");
        assert!(k > 0, "k must be positive");
        assert!(
            (0.0..1.0).contains(&ctr_threshold),
            "threshold must be in [0, 1)"
        );
        Self {
            num_bins,
            k,
            ctr_threshold,
        }
    }

    /// The paper's configuration: 16 bins, CTR threshold 0.5.
    pub fn paper_default(k: usize) -> Self {
        Self::new(16, k, 0.5)
    }

    /// Number of score buckets.
    pub fn num_bins(&self) -> usize {
        self.num_bins
    }

    /// Items forwarded per query (minimum).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Scores below this are never buffered.
    pub fn ctr_threshold(&self) -> f64 {
        self.ctr_threshold
    }

    fn bin_of(&self, score: f64) -> usize {
        let s = score.clamp(0.0, 1.0 - f64::EPSILON);
        (s * self.num_bins as f64) as usize
    }

    /// Filters a stream of `(id, score)` pairs.
    pub fn filter(&self, scores: &[(u64, f64)]) -> FilterOutcome {
        let mut bins: Vec<Vec<u64>> = vec![Vec::new(); self.num_bins];
        let mut buffered = 0usize;
        for &(id, score) in scores {
            if score < self.ctr_threshold {
                continue;
            }
            bins[self.bin_of(score)].push(id);
            buffered += 1;
        }

        let mut selected = Vec::with_capacity(self.k);
        for bin in bins.iter().rev() {
            if selected.len() >= self.k {
                break;
            }
            selected.extend_from_slice(bin);
        }
        // If thresholding starved the filter, fall back to the best
        // below-threshold items so downstream stages always have k
        // candidates (rare in practice; CTR mass sits above 0.5 for
        // retrieved candidates).
        if selected.len() < self.k {
            let mut rest: Vec<(u64, f64)> = scores
                .iter()
                .copied()
                .filter(|&(_, s)| s < self.ctr_threshold)
                .collect();
            rest.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            for (id, _) in rest {
                if selected.len() >= self.k {
                    break;
                }
                selected.push(id);
            }
        }

        // Drain: scan bin counters (num_bins cycles) then copy the
        // selected ids to DRAM at one per cycle.
        let drain_cycles = self.num_bins as u64 + selected.len() as u64;
        FilterOutcome {
            selected,
            buffered,
            drain_cycles,
        }
    }

    /// Fraction of a weight SRAM of `sram_bytes` consumed by buffering
    /// `buffered` candidate payloads (Figure 10(b): 4K items on an 8 MB
    /// SRAM is ~10-12%; a 0.5 threshold cuts it to ~3%).
    pub fn sram_overhead(buffered: usize, sram_bytes: u64) -> f64 {
        (buffered as u64 * Self::BYTES_PER_BUFFERED_ITEM) as f64 / sram_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const SRAM_8MB: u64 = 8 * 1024 * 1024;

    fn uniform_scores(n: u64, seed: u64) -> Vec<(u64, f64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|i| (i, rng.gen::<f64>())).collect()
    }

    #[test]
    fn selects_at_least_k() {
        let filter = TopKFilter::paper_default(512);
        let out = filter.filter(&uniform_scores(4096, 1));
        assert!(out.selected.len() >= 512);
    }

    #[test]
    fn selected_contains_every_true_top_item_above_threshold() {
        // Every true top-k item with score >= the lowest selected bin's
        // floor must be present: the filter never drops a clear winner.
        let filter = TopKFilter::paper_default(64);
        let scores = uniform_scores(1024, 2);
        let out = filter.filter(&scores);

        let mut sorted = scores.clone();
        sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let selected: std::collections::HashSet<u64> = out.selected.iter().copied().collect();
        for &(id, score) in sorted.iter().take(32) {
            if score >= 0.5 + 1.0 / 16.0 {
                assert!(selected.contains(&id), "dropped top item {id} ({score})");
            }
        }
    }

    #[test]
    fn threshold_cuts_buffer_occupancy_4x() {
        // Figure 10(b): thresholding at 0.5 cuts id-buffer SRAM from ~12%
        // to ~3% for uniform-ish CTR scores.
        let with_thresh = TopKFilter::new(16, 512, 0.5);
        let without = TopKFilter::new(16, 512, 0.0);
        let scores = uniform_scores(4096, 3);
        let all = without.filter(&scores).buffered;
        let cut = with_thresh.filter(&scores).buffered;
        let full_overhead = TopKFilter::sram_overhead(all, SRAM_8MB);
        let cut_overhead = TopKFilter::sram_overhead(cut, SRAM_8MB);
        assert!(
            (0.07..0.13).contains(&full_overhead),
            "full overhead {full_overhead}"
        );
        assert!(
            (0.02..0.06).contains(&cut_overhead),
            "thresholded overhead {cut_overhead}"
        );
    }

    #[test]
    fn drain_is_a_couple_hundred_cycles_for_small_k() {
        // Paper: "a couple hundred accelerator cycles, negligible
        // compared to model inference".
        let filter = TopKFilter::paper_default(64);
        let out = filter.filter(&uniform_scores(4096, 4));
        assert!(out.drain_cycles < 600, "drain cycles {}", out.drain_cycles);
    }

    #[test]
    fn starved_filter_falls_back_below_threshold() {
        // All scores below the threshold: the filter must still forward k
        // candidates.
        let filter = TopKFilter::new(16, 8, 0.9);
        let scores: Vec<(u64, f64)> = (0..32).map(|i| (i, 0.1 + (i as f64) * 0.01)).collect();
        let out = filter.filter(&scores);
        assert_eq!(out.selected.len(), 8);
        // And they are the best below-threshold items.
        assert!(out.selected.contains(&31));
    }

    #[test]
    fn empty_stream_yields_empty_selection() {
        let filter = TopKFilter::paper_default(64);
        let out = filter.filter(&[]);
        assert!(out.selected.is_empty());
        assert_eq!(out.buffered, 0);
    }

    #[test]
    fn bin_order_is_approximately_descending() {
        let filter = TopKFilter::new(16, 16, 0.0);
        let scores: Vec<(u64, f64)> = (0..64).map(|i| (i, i as f64 / 64.0)).collect();
        let out = filter.filter(&scores);
        // First selected id must come from the top bin.
        let first_score = out.selected[0] as f64 / 64.0;
        assert!(first_score >= 1.0 - 2.0 / 16.0);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn threshold_of_one_panics() {
        TopKFilter::new(16, 8, 1.0);
    }
}
