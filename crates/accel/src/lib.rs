//! RPAccel — a cycle-level simulator of the paper's specialized
//! multi-stage recommendation accelerator, plus the Centaur-like baseline
//! it is compared against.
//!
//! The accelerator (paper Figures 5 and 9) combines:
//!
//! * a weight-stationary [`SystolicArray`] MLP engine (Table 3:
//!   128x128 MACs at 250 MHz) that can be *fissioned* into sub-arrays
//!   ([`Partition`]) to process multiple stages and queries concurrently
//!   (O.3);
//! * streaming bucketed [`TopKFilter`] units that select the items
//!   forwarded to the next stage without a host round trip (O.2);
//! * a dual [`EmbeddingCache`]: a static partition for hot vectors of
//!   every stage and a look-ahead partition that prefetches backend
//!   vectors while the frontend runs (O.4);
//! * [`SubBatchSchedule`] pipelining that overlaps frontend and backend
//!   stages within one query (O.5).
//!
//! [`RpAccel`] composes all of the above into per-query latencies and
//! at-scale executor parameters; [`BaselineAccel`] models the
//! single-stage, host-filtered design point of Centaur. [`AreaPowerModel`]
//! reproduces the Figure 11 overhead breakdown, and [`scaling`] the
//! SSD-backed future-model study of Figure 13.
//!
//! # Examples
//!
//! ```
//! use recpipe_accel::{Partition, RpAccel, RpAccelConfig};
//! use recpipe_data::DatasetKind;
//! use recpipe_hwsim::StageWork;
//! use recpipe_models::{ModelConfig, ModelKind};
//!
//! let accel = RpAccel::new(RpAccelConfig::paper_default(Partition::symmetric(8, 8)));
//! let stages = vec![
//!     StageWork::new(ModelConfig::for_kind(ModelKind::RmSmall, DatasetKind::CriteoKaggle), 4096),
//!     StageWork::new(ModelConfig::for_kind(ModelKind::RmLarge, DatasetKind::CriteoKaggle), 512),
//! ];
//! let latency = accel.query_latency(&stages);
//! assert!(latency > 0.0 && latency < 0.01);
//! ```

mod area;
mod baseline;
mod embcache;
mod pipeline;
mod reconfig;
mod rpaccel;
pub mod scaling;
mod systolic;
mod topk;

pub use area::{AreaPowerModel, Component};
pub use baseline::BaselineAccel;
pub use embcache::{EmbeddingCache, EmbeddingCacheConfig};
pub use pipeline::SubBatchSchedule;
pub use reconfig::{Partition, SubArray};
pub use rpaccel::{AccelExecutor, RpAccel, RpAccelConfig, ServiceProfile};
pub use scaling::FutureScaling;
pub use systolic::{LayerRun, SystolicArray};
pub use topk::{FilterOutcome, TopKFilter};
