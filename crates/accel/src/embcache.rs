use recpipe_data::Zipf;
use recpipe_hwsim::{amat, MemoryModel, StaticCacheModel};
use serde::{Deserialize, Serialize};

/// RPAccel's on-chip embedding memory (paper Takeaway 7, Figure 10(c)).
///
/// The 16 MB embedding SRAM (Table 3) is divided into:
///
/// * a **look-ahead cache** (4 MB, conservatively provisioned) that holds
///   prefetched backend vectors for in-flight queries — filled while the
///   frontend processes earlier sub-batches, so covered backend lookups
///   cost SRAM time instead of DRAM time;
/// * a **static cache** (the remaining 12 MB) pinned with the hottest
///   vectors, split between frontend and backend tables by
///   `frontend_fraction` — the asymmetric-provisioning axis of
///   Figure 10(c).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingCacheConfig {
    /// Total embedding SRAM in bytes (Table 3: 16 MB).
    pub total_bytes: u64,
    /// Bytes reserved for the look-ahead (prefetch) cache.
    pub lookahead_bytes: u64,
    /// Fraction of the static cache devoted to frontend tables.
    pub frontend_fraction: f64,
    /// Fraction of backend misses the look-ahead prefetch covers (hidden
    /// behind frontend compute by the sub-batch pipeline).
    pub prefetch_coverage: f64,
}

impl EmbeddingCacheConfig {
    /// The paper's provisioning: 16 MB total, 4 MB look-ahead, balanced
    /// static split (equal capacity for a 1/8 filtering ratio), 50%
    /// prefetch coverage.
    pub fn paper_default() -> Self {
        Self {
            total_bytes: 16 * 1024 * 1024,
            lookahead_bytes: 4 * 1024 * 1024,
            frontend_fraction: 0.5,
            prefetch_coverage: 0.5,
        }
    }

    /// Static-cache capacity (total minus look-ahead).
    pub fn static_bytes(&self) -> u64 {
        self.total_bytes.saturating_sub(self.lookahead_bytes)
    }
}

/// Analytic hit-rate and AMAT model of the dual embedding cache for a
/// two-stage pipeline.
///
/// # Examples
///
/// ```
/// use recpipe_accel::{EmbeddingCache, EmbeddingCacheConfig};
/// use recpipe_data::Zipf;
///
/// let cache = EmbeddingCache::new(
///     EmbeddingCacheConfig::paper_default(),
///     Zipf::new(2_600_000, 0.9),
///     16,  // frontend row bytes (RMsmall dim 4)
///     128, // backend row bytes (RMlarge dim 32)
///     26,  // tables per stage
/// );
/// let amat = cache.weighted_amat(4096, 512);
/// assert!(amat > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingCache {
    config: EmbeddingCacheConfig,
    popularity: Zipf,
    frontend_row_bytes: u64,
    backend_row_bytes: u64,
    tables: u64,
    sram: MemoryModel,
    dram: MemoryModel,
}

impl EmbeddingCache {
    /// Builds the cache model for a workload with the given popularity
    /// skew and per-stage row sizes.
    ///
    /// # Panics
    ///
    /// Panics if row sizes or table count are zero, or
    /// `frontend_fraction` is outside `[0, 1]`.
    pub fn new(
        config: EmbeddingCacheConfig,
        popularity: Zipf,
        frontend_row_bytes: u64,
        backend_row_bytes: u64,
        tables: u64,
    ) -> Self {
        assert!(
            frontend_row_bytes > 0 && backend_row_bytes > 0 && tables > 0,
            "degenerate cache geometry"
        );
        assert!(
            (0.0..=1.0).contains(&config.frontend_fraction),
            "frontend fraction must be in [0, 1]"
        );
        Self {
            config,
            popularity,
            frontend_row_bytes,
            backend_row_bytes,
            tables,
            sram: MemoryModel::accel_sram(),
            dram: MemoryModel::accel_dram(),
        }
    }

    /// The provisioning configuration.
    pub fn config(&self) -> EmbeddingCacheConfig {
        self.config
    }

    /// Static-cache hit rate for frontend lookups.
    pub fn frontend_hit_rate(&self) -> f64 {
        let bytes = (self.config.static_bytes() as f64 * self.config.frontend_fraction) as u64;
        self.static_hit_rate(bytes, self.frontend_row_bytes)
    }

    /// Static-cache hit rate for backend lookups (before prefetching).
    pub fn backend_static_hit_rate(&self) -> f64 {
        let bytes =
            (self.config.static_bytes() as f64 * (1.0 - self.config.frontend_fraction)) as u64;
        self.static_hit_rate(bytes, self.backend_row_bytes)
    }

    /// Effective backend hit rate including look-ahead prefetching:
    /// covered misses are served at SRAM speed once the pipeline hides
    /// their DRAM fetch.
    pub fn backend_hit_rate(&self) -> f64 {
        let static_hr = self.backend_static_hit_rate();
        static_hr + (1.0 - static_hr) * self.config.prefetch_coverage.clamp(0.0, 1.0)
    }

    fn static_hit_rate(&self, capacity_bytes: u64, row_bytes: u64) -> f64 {
        // Capacity is shared equally by the stage's tables.
        let per_table = capacity_bytes / self.tables.max(1);
        StaticCacheModel::with_capacity_bytes(self.popularity, per_table, row_bytes).hit_rate()
    }

    /// Cost of one DRAM miss fetching a `row_bytes` vector: random
    /// gathers pay the access latency *per cache line* (a wide RMlarge
    /// vector spans two 64-byte lines and cannot amortize them).
    fn dram_miss_time(&self, row_bytes: u64) -> f64 {
        let lines = row_bytes.max(1).div_ceil(64);
        self.dram.latency() * lines as f64 + row_bytes as f64 / self.dram.bandwidth()
    }

    /// AMAT of one frontend lookup in seconds (static cache only — the
    /// frontend has no look-ahead tier).
    pub fn frontend_amat(&self) -> f64 {
        amat(
            self.frontend_hit_rate(),
            self.sram.access_time(self.frontend_row_bytes),
            self.dram_miss_time(self.frontend_row_bytes.max(64)),
        )
    }

    /// AMAT of one backend lookup under the *static cache alone* — the
    /// Figure 10(c) provisioning axis.
    pub fn backend_static_amat(&self) -> f64 {
        amat(
            self.backend_static_hit_rate(),
            self.sram.access_time(self.backend_row_bytes),
            self.dram_miss_time(self.backend_row_bytes.max(64)),
        )
    }

    /// Effective AMAT of one backend lookup including look-ahead
    /// prefetching (O.4).
    pub fn backend_amat(&self) -> f64 {
        amat(
            self.backend_hit_rate(),
            self.sram.access_time(self.backend_row_bytes),
            self.dram_miss_time(self.backend_row_bytes.max(64)),
        )
    }

    /// Lookup-weighted *static-cache* AMAT across both stages — the
    /// y-axis of Figure 10(c), which studies how to split the static
    /// capacity. `frontend_items` and `backend_items` set the lookup mix
    /// (their ratio is the filtering ratio).
    pub fn weighted_amat(&self, frontend_items: u64, backend_items: u64) -> f64 {
        let fl = (frontend_items * self.tables) as f64;
        let bl = (backend_items * self.tables) as f64;
        if fl + bl == 0.0 {
            return 0.0;
        }
        (fl * self.frontend_amat() + bl * self.backend_static_amat()) / (fl + bl)
    }

    /// Lookup-weighted AMAT with the look-ahead tier active — what the
    /// running accelerator actually experiences.
    pub fn weighted_amat_effective(&self, frontend_items: u64, backend_items: u64) -> f64 {
        let fl = (frontend_items * self.tables) as f64;
        let bl = (backend_items * self.tables) as f64;
        if fl + bl == 0.0 {
            return 0.0;
        }
        (fl * self.frontend_amat() + bl * self.backend_amat()) / (fl + bl)
    }

    /// Total embedding fetch time for a stage: misses stream from DRAM,
    /// hits from SRAM (used by the RPAccel latency model, where many
    /// outstanding lookups overlap and bandwidth dominates).
    pub fn stage_fetch_time(&self, items: u64, frontend: bool) -> f64 {
        let (row_bytes, hit_rate) = if frontend {
            (self.frontend_row_bytes, self.frontend_hit_rate())
        } else {
            (self.backend_row_bytes, self.backend_hit_rate())
        };
        let lookups = (items * self.tables) as f64;
        let line = row_bytes.max(64) as f64;
        let miss_bytes = lookups * (1.0 - hit_rate) * line;
        let hit_bytes = lookups * hit_rate * row_bytes as f64;
        // Random DRAM gathers reach a fraction of peak bandwidth.
        let gather_bw = self.dram.bandwidth() * 0.15;
        miss_bytes / gather_bw + hit_bytes / self.sram.bandwidth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache_with_fraction(frac: f64) -> EmbeddingCache {
        let config = EmbeddingCacheConfig {
            frontend_fraction: frac,
            ..EmbeddingCacheConfig::paper_default()
        };
        EmbeddingCache::new(config, Zipf::new(2_600_000, 0.9), 16, 128, 26)
    }

    #[test]
    fn hit_rates_are_probabilities() {
        let c = cache_with_fraction(0.5);
        for hr in [
            c.frontend_hit_rate(),
            c.backend_static_hit_rate(),
            c.backend_hit_rate(),
        ] {
            assert!((0.0..=1.0).contains(&hr), "hit rate {hr}");
        }
    }

    #[test]
    fn prefetching_raises_backend_hit_rate() {
        let c = cache_with_fraction(0.5);
        assert!(c.backend_hit_rate() > c.backend_static_hit_rate());
    }

    #[test]
    fn figure10c_amat_has_interior_optimum() {
        // Devoting everything to one stage starves the other: some
        // interior split beats both extremes. (Our synthetic Zipf
        // locality puts the optimum more frontend-heavy than the paper's
        // equal split — see EXPERIMENTS.md.)
        let sweep: Vec<f64> = (1..=19)
            .map(|i| cache_with_fraction(i as f64 / 20.0).weighted_amat(4096, 512))
            .collect();
        let best_interior = sweep.iter().cloned().fold(f64::INFINITY, f64::min);
        let all_front = cache_with_fraction(0.995).weighted_amat(4096, 512);
        let all_back = cache_with_fraction(0.005).weighted_amat(4096, 512);
        assert!(
            all_front > best_interior,
            "front extreme {all_front} vs interior best {best_interior}"
        );
        assert!(
            all_back > best_interior,
            "back extreme {all_back} vs interior best {best_interior}"
        );
    }

    #[test]
    fn filtering_ratio_shifts_optimal_fraction() {
        // With a 1/16 filtering ratio the backend sees fewer lookups, so
        // the optimum moves toward the frontend (Figure 10(c), 12 MB
        // curves).
        let fracs: Vec<f64> = (1..20).map(|i| i as f64 / 20.0).collect();
        let best = |backend_items: u64| -> f64 {
            fracs
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let ca = cache_with_fraction(a).weighted_amat(4096, backend_items);
                    let cb = cache_with_fraction(b).weighted_amat(4096, backend_items);
                    ca.partial_cmp(&cb).unwrap()
                })
                .unwrap()
        };
        let best_8th = best(512);
        let best_16th = best(256);
        assert!(
            best_16th >= best_8th,
            "1/8 ratio best {best_8th}, 1/16 best {best_16th}"
        );
    }

    #[test]
    fn dual_cache_cuts_backend_amat_about_40_percent() {
        // O.4: the look-ahead prefetcher reduces the backend's average
        // embedding access time by ~40% versus the static cache alone.
        let c = cache_with_fraction(0.5);
        let reduction = 1.0 - c.backend_amat() / c.backend_static_amat();
        assert!(
            (0.25..0.60).contains(&reduction),
            "backend AMAT reduction {reduction}"
        );
    }

    #[test]
    fn effective_amat_beats_static_amat() {
        let c = cache_with_fraction(0.5);
        assert!(c.weighted_amat_effective(4096, 512) < c.weighted_amat(4096, 512));
    }

    #[test]
    fn larger_static_cache_lowers_amat() {
        let small = EmbeddingCache::new(
            EmbeddingCacheConfig {
                total_bytes: 8 * 1024 * 1024,
                ..EmbeddingCacheConfig::paper_default()
            },
            Zipf::new(2_600_000, 0.9),
            16,
            128,
            26,
        );
        let large = cache_with_fraction(0.5);
        assert!(large.weighted_amat(4096, 512) < small.weighted_amat(4096, 512));
    }

    #[test]
    fn fetch_time_scales_with_items() {
        let c = cache_with_fraction(0.5);
        let t1 = c.stage_fetch_time(1024, true);
        let t2 = c.stage_fetch_time(4096, true);
        assert!((t2 / t1 - 4.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_tables_panics() {
        EmbeddingCache::new(
            EmbeddingCacheConfig::paper_default(),
            Zipf::new(100, 0.9),
            16,
            128,
            0,
        );
    }
}
