use serde::{Deserialize, Serialize};

use crate::SystolicArray;

/// One fissioned piece of the monolithic systolic array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SubArray {
    /// Rows of the sub-array.
    pub rows: usize,
    /// Columns of the sub-array.
    pub cols: usize,
}

impl SubArray {
    /// MAC units in this sub-array.
    pub fn macs(&self) -> usize {
        self.rows * self.cols
    }

    /// Views this sub-array as a standalone [`SystolicArray`] at the
    /// given clock.
    pub fn as_array(&self, freq_hz: u64) -> SystolicArray {
        SystolicArray::new(self.rows, self.cols, freq_hz)
    }
}

/// A fission plan for the reconfigurable systolic array (paper O.3,
/// adapted from Planaria): the monolithic fabric is split into a
/// *frontend* group and a *backend* group, each further divided into
/// equal sub-arrays that process queries concurrently.
///
/// The paper's `RPAccel_{f,b}` notation maps to
/// [`Partition::symmetric(f, b)`](Partition::symmetric): half the MACs
/// are divided into `f` frontend sub-arrays, half into `b` backend
/// sub-arrays. Figure 12 (bottom) sweeps `b` in {2, 8, 16}.
///
/// # Examples
///
/// ```
/// use recpipe_accel::Partition;
///
/// let p = Partition::symmetric(8, 2);
/// assert_eq!(p.frontend().len(), 8);
/// assert_eq!(p.backend().len(), 2);
/// // Fission conserves the fabric.
/// assert_eq!(p.total_macs(), 128 * 128);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Partition {
    frontend: Vec<SubArray>,
    backend: Vec<SubArray>,
}

impl Partition {
    /// Total MACs of the monolithic fabric being divided (Table 3).
    pub const TOTAL_MACS: usize = 128 * 128;

    /// A monolithic, unpartitioned array (the baseline configuration):
    /// one "frontend" group owning the whole fabric and no backend group.
    pub fn monolithic() -> Self {
        Self {
            frontend: vec![SubArray {
                rows: 128,
                cols: 128,
            }],
            backend: Vec::new(),
        }
    }

    /// Splits half the fabric into `f` frontend sub-arrays and half into
    /// `b` backend sub-arrays.
    ///
    /// Each group's half (8192 MACs) is divided into equal sub-arrays
    /// with near-square geometry.
    ///
    /// # Panics
    ///
    /// Panics if `f` or `b` is zero or either group cannot be divided
    /// evenly (counts must be powers of two up to 64).
    pub fn symmetric(f: usize, b: usize) -> Self {
        Self {
            frontend: Self::divide(Self::TOTAL_MACS / 2, f),
            backend: Self::divide(Self::TOTAL_MACS / 2, b),
        }
    }

    /// Divides `macs` into `n` equal near-square sub-arrays.
    fn divide(macs: usize, n: usize) -> Vec<SubArray> {
        assert!(n > 0, "sub-array count must be positive");
        assert!(
            n.is_power_of_two() && n <= 64,
            "count must be a power of two <= 64"
        );
        let per = macs / n;
        assert!(per > 0, "sub-arrays would be empty");
        // Near-square: rows = 2^ceil(log2(sqrt(per))), cols = per / rows.
        let mut rows = 1usize;
        while rows * rows < per {
            rows *= 2;
        }
        let cols = per / rows;
        assert!(rows * cols == per, "non-power-of-two fabric");
        (0..n).map(|_| SubArray { rows, cols }).collect()
    }

    /// Frontend sub-arrays.
    pub fn frontend(&self) -> &[SubArray] {
        &self.frontend
    }

    /// Backend sub-arrays.
    pub fn backend(&self) -> &[SubArray] {
        &self.backend
    }

    /// Whether this is the monolithic (single-group) configuration.
    pub fn is_monolithic(&self) -> bool {
        self.backend.is_empty() && self.frontend.len() == 1
    }

    /// Total MACs across every sub-array — must equal the fabric size.
    pub fn total_macs(&self) -> usize {
        self.frontend
            .iter()
            .chain(self.backend.iter())
            .map(SubArray::macs)
            .sum()
    }

    /// Number of queries that can be in flight concurrently: limited by
    /// the scarcer group (each in-flight query occupies one frontend and
    /// one backend sub-array as it pipelines through).
    pub fn query_lanes(&self) -> usize {
        if self.backend.is_empty() {
            self.frontend.len()
        } else {
            self.frontend.len().min(self.backend.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recpipe_data::DatasetKind;
    use recpipe_models::{ModelConfig, ModelKind};

    #[test]
    fn symmetric_partition_conserves_fabric() {
        for (f, b) in [(8usize, 2usize), (8, 8), (8, 16), (4, 4), (1, 1)] {
            let p = Partition::symmetric(f, b);
            assert_eq!(p.total_macs(), Partition::TOTAL_MACS, "({f},{b})");
        }
    }

    #[test]
    fn monolithic_partition_is_whole_fabric() {
        let p = Partition::monolithic();
        assert!(p.is_monolithic());
        assert_eq!(p.total_macs(), Partition::TOTAL_MACS);
        assert_eq!(p.query_lanes(), 1);
    }

    #[test]
    fn paper_notation_maps_to_group_counts() {
        let p = Partition::symmetric(8, 16);
        assert_eq!(p.frontend().len(), 8);
        assert_eq!(p.backend().len(), 16);
        assert_eq!(p.query_lanes(), 8);
    }

    #[test]
    fn fewer_backend_subarrays_are_bigger() {
        let p2 = Partition::symmetric(8, 2);
        let p16 = Partition::symmetric(8, 16);
        assert!(p2.backend()[0].macs() > p16.backend()[0].macs());
    }

    #[test]
    fn bigger_backend_subarray_is_faster_per_query() {
        // Figure 12 (bottom): RPAccel8,2 aggregates the backend into
        // fewer, larger arrays, cutting per-query backend latency.
        let model = ModelConfig::for_kind(ModelKind::RmLarge, DatasetKind::CriteoKaggle);
        let big = Partition::symmetric(8, 2).backend()[0].as_array(250_000_000);
        let small = Partition::symmetric(8, 16).backend()[0].as_array(250_000_000);
        let c_big = big.model_cycles(&model, 512);
        let c_small = small.model_cycles(&model, 512);
        assert!(
            c_big < c_small,
            "8,2 backend {c_big} cycles vs 8,16 {c_small}"
        );
    }

    #[test]
    fn reconfiguration_doubles_two_stage_utilization() {
        // Figure 10(a): the monolithic array averages ~30% utilization on
        // a two-stage mix; fissioned sub-arrays roughly double it.
        let freq = 250_000_000;
        let small = ModelConfig::for_kind(ModelKind::RmSmall, DatasetKind::CriteoKaggle);
        let large = ModelConfig::for_kind(ModelKind::RmLarge, DatasetKind::CriteoKaggle);

        let mono = SystolicArray::paper_default();
        let mono_cycles = mono.model_cycles(&small, 4096) + mono.model_cycles(&large, 512);
        let total_macs =
            (small.cost().flops_per_item * 4096 + large.cost().flops_per_item * 512) as f64;
        let mono_util = total_macs / (mono_cycles as f64 * Partition::TOTAL_MACS as f64);

        let p = Partition::symmetric(8, 8);
        let f_arr = p.frontend()[0].as_array(freq);
        let b_arr = p.backend()[0].as_array(freq);
        // Each sub-array works on its own stage concurrently; utilization
        // is measured against the sub-array fabric actually used.
        let f_cycles = f_arr.model_cycles(&small, 4096);
        let b_cycles = b_arr.model_cycles(&large, 512);
        let split_util = (small.cost().flops_per_item * 4096) as f64
            / (f_cycles as f64 * f_arr.macs() as f64).max(1.0)
            / 2.0
            + (large.cost().flops_per_item * 512) as f64
                / (b_cycles as f64 * b_arr.macs() as f64).max(1.0)
                / 2.0;

        assert!(
            split_util > 1.5 * mono_util,
            "monolithic {mono_util:.3} vs reconfigured {split_util:.3}"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_count_panics() {
        Partition::symmetric(3, 8);
    }
}
