use serde::{Deserialize, Serialize};

/// One hardware component's area/power contribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Component {
    /// Component name as in Figure 11.
    pub name: String,
    /// Area in mm^2 (12 nm-class coefficients).
    pub area_mm2: f64,
    /// Power in watts.
    pub power_w: f64,
    /// Whether the component exists in the baseline accelerator or is
    /// RPAccel-only overhead.
    pub rpaccel_only: bool,
}

/// Analytic area/power model reproducing Figure 11's breakdown: RPAccel's
/// additions (banked activation memory, top-k filtering units, the
/// reconfigurable-array interconnect) cost **~11% area** and **~36%
/// power** over the baseline TPU-like accelerator.
///
/// Coefficients are representative 12 nm-class densities (MACs,
/// SRAM mm^2/MB); what the figure argues — and what this model
/// reproduces — is the *relative* overhead, not absolute silicon area.
///
/// # Examples
///
/// ```
/// use recpipe_accel::AreaPowerModel;
///
/// let model = AreaPowerModel::paper_default();
/// let (area_ovh, power_ovh) = model.overheads();
/// assert!(area_ovh < 0.15);      // ~11%
/// assert!(power_ovh < 0.45);     // ~36%
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaPowerModel {
    components: Vec<Component>,
}

impl AreaPowerModel {
    /// Builds the Figure 11 component set.
    ///
    /// Baseline components: 128x128 MAC array, 8 MB weight/activation
    /// SRAM, 16 MB embedding SRAM, baseline activation buffers.
    /// RPAccel additions: banked activation memory (multi-stage
    /// concurrency), top-k filtering units (one per sub-array), and the
    /// fission interconnect.
    pub fn paper_default() -> Self {
        // 12 nm-class coefficients: ~0.0006 mm^2 and ~0.5 mW per MAC at
        // 250 MHz; ~1.3 mm^2 and ~0.35 W per MB of SRAM (leakage +
        // access energy at the paper's utilization).
        const MACS: f64 = 128.0 * 128.0;
        const MAC_AREA: f64 = 0.0006;
        const MAC_POWER: f64 = 0.000488;
        const SRAM_AREA_PER_MB: f64 = 1.3;
        const SRAM_POWER_PER_MB: f64 = 0.35;

        let sram = |name: &str, mb: f64, rp: bool, power_scale: f64| Component {
            name: name.to_string(),
            area_mm2: SRAM_AREA_PER_MB * mb,
            power_w: SRAM_POWER_PER_MB * mb * power_scale,
            rpaccel_only: rp,
        };

        let components = vec![
            Component {
                name: "systolic array".into(),
                area_mm2: MAC_AREA * MACS,
                power_w: MAC_POWER * MACS,
                rpaccel_only: false,
            },
            sram("MLP weight SRAM", 8.0, false, 1.0),
            sram("embedding SRAM", 16.0, false, 1.0),
            sram("baseline activation memory", 2.0, false, 1.0),
            // RPAccel overheads. Banked activation memory dominates: the
            // heavily multi-ported banks burn disproportionate dynamic
            // power (+32% of baseline power for +10% area in the paper).
            sram("banked activation memory", 3.35, true, 4.67),
            Component {
                name: "top-k filtering units".into(),
                area_mm2: 0.25,
                power_w: 0.34,
                rpaccel_only: true,
            },
            Component {
                name: "reconfigurable interconnect".into(),
                area_mm2: 0.22,
                power_w: 0.34,
                rpaccel_only: true,
            },
        ];
        Self { components }
    }

    /// All components.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Baseline accelerator totals `(area_mm2, power_w)`.
    pub fn baseline_totals(&self) -> (f64, f64) {
        self.totals(false)
    }

    /// RPAccel totals `(area_mm2, power_w)` (baseline + additions).
    pub fn rpaccel_totals(&self) -> (f64, f64) {
        self.totals(true)
    }

    fn totals(&self, include_rpaccel: bool) -> (f64, f64) {
        self.components
            .iter()
            .filter(|c| include_rpaccel || !c.rpaccel_only)
            .fold((0.0, 0.0), |(a, p), c| (a + c.area_mm2, p + c.power_w))
    }

    /// Relative `(area, power)` overheads of RPAccel versus the baseline
    /// (Figure 11: ~0.11, ~0.36).
    pub fn overheads(&self) -> (f64, f64) {
        let (ba, bp) = self.baseline_totals();
        let (ra, rp) = self.rpaccel_totals();
        ((ra - ba) / ba, (rp - bp) / bp)
    }

    /// Per-component share of RPAccel's total area, `(name, fraction)`.
    pub fn area_breakdown(&self) -> Vec<(String, f64)> {
        let (total, _) = self.rpaccel_totals();
        self.components
            .iter()
            .map(|c| (c.name.clone(), c.area_mm2 / total))
            .collect()
    }

    /// Per-component share of RPAccel's total power.
    pub fn power_breakdown(&self) -> Vec<(String, f64)> {
        let (_, total) = self.rpaccel_totals();
        self.components
            .iter()
            .map(|c| (c.name.clone(), c.power_w / total))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure11_overheads_match() {
        let m = AreaPowerModel::paper_default();
        let (area, power) = m.overheads();
        assert!(
            (0.08..0.14).contains(&area),
            "area overhead {area} (paper: 0.11)"
        );
        assert!(
            (0.30..0.42).contains(&power),
            "power overhead {power} (paper: 0.36)"
        );
    }

    #[test]
    fn filtering_and_reconfig_are_small() {
        // Paper: top-k + reconfigurable array are <1% area each.
        let m = AreaPowerModel::paper_default();
        for (name, share) in m.area_breakdown() {
            if name.contains("top-k") || name.contains("interconnect") {
                assert!(share < 0.02, "{name} share {share}");
            }
        }
    }

    #[test]
    fn breakdowns_sum_to_one() {
        let m = AreaPowerModel::paper_default();
        let area: f64 = m.area_breakdown().iter().map(|(_, s)| s).sum();
        let power: f64 = m.power_breakdown().iter().map(|(_, s)| s).sum();
        assert!((area - 1.0).abs() < 1e-9);
        assert!((power - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rpaccel_is_strictly_bigger() {
        let m = AreaPowerModel::paper_default();
        let (ba, bp) = m.baseline_totals();
        let (ra, rp) = m.rpaccel_totals();
        assert!(ra > ba && rp > bp);
    }

    #[test]
    fn power_budget_is_datacenter_inference_class() {
        // Table 3 pairs RPAccel with a ~40 W TPU-class budget; the model
        // should land in tens of watts.
        let (_, power) = AreaPowerModel::paper_default().rpaccel_totals();
        assert!((10.0..80.0).contains(&power), "power {power} W");
    }
}
