//! Property-based tests for the accelerator simulator's invariants.

use proptest::prelude::*;
use recpipe_accel::{Partition, SubBatchSchedule, SystolicArray, TopKFilter};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn systolic_utilization_in_unit_interval(
        in_dim in 1usize..600,
        out_dim in 1usize..600,
        batch in 1u64..10_000,
    ) {
        let array = SystolicArray::paper_default();
        let run = array.layer_run(in_dim, out_dim, batch);
        prop_assert!(run.utilization > 0.0 && run.utilization <= 1.0);
        prop_assert!(run.cycles > 0);
        prop_assert_eq!(run.macs, in_dim as u64 * out_dim as u64 * batch);
    }

    #[test]
    fn systolic_cycles_monotone_in_batch(
        in_dim in 1usize..300,
        out_dim in 1usize..300,
        batch in 1u64..5_000,
        extra in 1u64..5_000,
    ) {
        let array = SystolicArray::new(64, 64, 250_000_000);
        let small = array.layer_run(in_dim, out_dim, batch).cycles;
        let large = array.layer_run(in_dim, out_dim, batch + extra).cycles;
        prop_assert!(large > small);
    }

    #[test]
    fn partition_conserves_fabric(f_log in 0u32..6, b_log in 0u32..6) {
        let p = Partition::symmetric(1 << f_log, 1 << b_log);
        prop_assert_eq!(p.total_macs(), Partition::TOTAL_MACS);
        prop_assert_eq!(p.query_lanes(), (1usize << f_log).min(1 << b_log));
    }

    #[test]
    fn topk_selects_at_least_k_when_possible(
        scores in proptest::collection::vec(0.0f64..1.0, 64..1024),
        k in 1usize..64,
    ) {
        let filter = TopKFilter::new(16, k, 0.5);
        let data: Vec<(u64, f64)> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| (i as u64, s))
            .collect();
        let out = filter.filter(&data);
        prop_assert!(out.selected.len() >= k.min(data.len()));
        // Selected ids are unique and valid.
        let unique: std::collections::HashSet<u64> = out.selected.iter().copied().collect();
        prop_assert_eq!(unique.len(), out.selected.len());
        for &id in &out.selected {
            prop_assert!((id as usize) < data.len());
        }
    }

    #[test]
    fn topk_never_drops_items_above_selected_bins(
        scores in proptest::collection::vec(0.0f64..1.0, 128..512),
    ) {
        // Everything in a strictly higher bin than the lowest selected
        // bin must be selected.
        let filter = TopKFilter::new(16, 32, 0.0);
        let data: Vec<(u64, f64)> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| (i as u64, s))
            .collect();
        let out = filter.filter(&data);
        let selected: std::collections::HashSet<u64> = out.selected.iter().copied().collect();
        let min_selected_score = out
            .selected
            .iter()
            .map(|&id| data[id as usize].1)
            .fold(f64::INFINITY, f64::min);
        let min_bin = (min_selected_score * 16.0).floor();
        for &(id, s) in &data {
            let bin = (s * 16.0).floor().min(15.0);
            if bin > min_bin {
                prop_assert!(selected.contains(&id), "dropped {id} with score {s}");
            }
        }
    }

    #[test]
    fn makespan_is_bounded_by_serial_and_bottleneck(
        f_us in 10.0f64..2000.0,
        b_us in 10.0f64..2000.0,
        n in 1usize..16,
    ) {
        let schedule = SubBatchSchedule::new(n, 0.0);
        let makespan = schedule.makespan(f_us * 1e-6, b_us * 1e-6);
        let serial = (f_us + b_us) * 1e-6;
        let bottleneck = f_us.max(b_us) * 1e-6;
        prop_assert!(makespan <= serial + 1e-12, "{makespan} > serial {serial}");
        prop_assert!(makespan >= bottleneck - 1e-12, "{makespan} < bottleneck {bottleneck}");
    }

    #[test]
    fn deeper_pipelining_without_overhead_never_hurts(
        f_us in 10.0f64..1000.0,
        b_us in 10.0f64..1000.0,
    ) {
        let shallow = SubBatchSchedule::new(2, 0.0).makespan(f_us * 1e-6, b_us * 1e-6);
        let deep = SubBatchSchedule::new(8, 0.0).makespan(f_us * 1e-6, b_us * 1e-6);
        prop_assert!(deep <= shallow + 1e-12);
    }
}
