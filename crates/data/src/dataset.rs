use serde::{Deserialize, Serialize};

/// The three open-source workloads evaluated in the paper (Section 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Criteo Kaggle display-advertising CTR dataset — served by DLRM,
    /// embedding-capacity dominated.
    CriteoKaggle,
    /// MovieLens 1M — served by neural matrix factorization, MLP dominated.
    MovieLens1M,
    /// MovieLens 20M — served by neural matrix factorization, larger corpus.
    MovieLens20M,
}

impl DatasetKind {
    /// All dataset kinds, in the order the paper's summary figure uses.
    pub const ALL: [DatasetKind; 3] = [
        DatasetKind::CriteoKaggle,
        DatasetKind::MovieLens1M,
        DatasetKind::MovieLens20M,
    ];

    /// Human-readable dataset name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::CriteoKaggle => "Criteo Kaggle",
            DatasetKind::MovieLens1M => "MovieLens 1M",
            DatasetKind::MovieLens20M => "MovieLens 20M",
        }
    }
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Statistical description of a synthetic dataset.
///
/// The spec captures the workload properties the RecPipe evaluation depends
/// on — candidate-pool sizes, categorical-feature cardinalities, embedding
/// access locality, and gain-distribution shape — without the raw data.
///
/// # Examples
///
/// ```
/// use recpipe_data::DatasetSpec;
///
/// let criteo = DatasetSpec::criteo_kaggle();
/// assert_eq!(criteo.num_sparse_features, 26);
/// assert_eq!(criteo.candidates_per_query, 4096);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Which workload this spec models.
    pub kind: DatasetKind,
    /// Number of dense (continuous) input features per item.
    pub num_dense_features: usize,
    /// Number of sparse (categorical) features, i.e. embedding tables.
    pub num_sparse_features: usize,
    /// Rows per embedding table (uniform across tables for simplicity;
    /// Criteo's 26 tables hold ~67M rows total in the paper's 1–8 GB
    /// models).
    pub rows_per_table: u64,
    /// Candidate items entering the first ranking stage of each query.
    pub candidates_per_query: usize,
    /// Zipf exponent of embedding-id popularity; larger means hotter heads
    /// and better cacheability.
    pub zipf_exponent: f64,
    /// Gain transform exponent: item gain is `utility^gain_exponent`.
    /// Heavier tails (larger values) make quality more sensitive to the
    /// number of items ranked (Figure 3).
    pub gain_exponent: f64,
    /// Typical per-stage reduction in items to rank (paper Section 8:
    /// roughly 5.0x / 2.5x / 4.0x for Criteo / ML-1M / ML-20M).
    pub stage_reduction: f64,
    /// Number of items served to the user; quality is NDCG over this
    /// prefix (64 throughout the paper).
    pub top_k_served: usize,
}

impl DatasetSpec {
    /// Criteo Kaggle profile: 13 dense + 26 sparse features, deep
    /// embedding capacity, 4096-item candidate pools.
    pub fn criteo_kaggle() -> Self {
        Self {
            kind: DatasetKind::CriteoKaggle,
            num_dense_features: 13,
            num_sparse_features: 26,
            rows_per_table: 2_600_000,
            candidates_per_query: 4096,
            zipf_exponent: 0.9,
            gain_exponent: 3.0,
            stage_reduction: 5.0,
            top_k_served: 64,
        }
    }

    /// MovieLens 1M profile: two embedding tables (users, items), small
    /// corpus, MLP-dominated neural matrix factorization.
    pub fn movielens_1m() -> Self {
        Self {
            kind: DatasetKind::MovieLens1M,
            num_dense_features: 0,
            num_sparse_features: 2,
            rows_per_table: 6040,
            candidates_per_query: 1024,
            zipf_exponent: 0.75,
            gain_exponent: 2.0,
            stage_reduction: 2.5,
            top_k_served: 64,
        }
    }

    /// MovieLens 20M profile: larger corpus than 1M, still MLP dominated.
    pub fn movielens_20m() -> Self {
        Self {
            kind: DatasetKind::MovieLens20M,
            num_dense_features: 0,
            num_sparse_features: 2,
            rows_per_table: 138_000,
            candidates_per_query: 4096,
            zipf_exponent: 0.85,
            gain_exponent: 2.5,
            stage_reduction: 4.0,
            top_k_served: 64,
        }
    }

    /// Builds the spec for a [`DatasetKind`].
    pub fn for_kind(kind: DatasetKind) -> Self {
        match kind {
            DatasetKind::CriteoKaggle => Self::criteo_kaggle(),
            DatasetKind::MovieLens1M => Self::movielens_1m(),
            DatasetKind::MovieLens20M => Self::movielens_20m(),
        }
    }

    /// Total embedding rows across all tables.
    pub fn total_rows(&self) -> u64 {
        self.rows_per_table * self.num_sparse_features as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn criteo_matches_paper_shape() {
        let spec = DatasetSpec::criteo_kaggle();
        assert_eq!(spec.num_dense_features, 13);
        assert_eq!(spec.num_sparse_features, 26);
        assert_eq!(spec.candidates_per_query, 4096);
        assert_eq!(spec.top_k_served, 64);
        // ~67M total rows to reproduce Table 1 model sizes.
        assert!(spec.total_rows() > 60_000_000);
    }

    #[test]
    fn movielens_is_mlp_dominated() {
        for spec in [DatasetSpec::movielens_1m(), DatasetSpec::movielens_20m()] {
            assert_eq!(spec.num_dense_features, 0);
            assert_eq!(spec.num_sparse_features, 2);
        }
    }

    #[test]
    fn for_kind_round_trips() {
        for kind in DatasetKind::ALL {
            assert_eq!(DatasetSpec::for_kind(kind).kind, kind);
        }
    }

    #[test]
    fn stage_reductions_match_paper_section8() {
        assert_eq!(DatasetSpec::criteo_kaggle().stage_reduction, 5.0);
        assert_eq!(DatasetSpec::movielens_1m().stage_reduction, 2.5);
        assert_eq!(DatasetSpec::movielens_20m().stage_reduction, 4.0);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(DatasetKind::CriteoKaggle.to_string(), "Criteo Kaggle");
    }
}
