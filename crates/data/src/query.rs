use serde::{Deserialize, Serialize};

/// One ranking request: a user context plus a pool of candidate items with
/// hidden true utilities.
///
/// The *utility* of candidate `i` is the latent "how much would this user
/// like this item" value the recommendation system is trying to estimate.
/// Models observe noisy versions of it; quality (NDCG) is computed against
/// the true values — exactly how the paper separates model accuracy from
/// application quality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankingQuery {
    /// Monotone query identifier.
    pub id: u64,
    /// True (hidden) utilities of each candidate item, in score space.
    /// Gains for NDCG are `utility^gain_exponent` (see
    /// [`DatasetSpec::gain_exponent`](crate::DatasetSpec::gain_exponent)).
    pub utilities: Vec<f64>,
}

impl RankingQuery {
    /// Number of candidate items in the pool.
    pub fn num_candidates(&self) -> usize {
        self.utilities.len()
    }

    /// Gains (NDCG relevance values) for each candidate under the dataset's
    /// gain transform.
    pub fn gains(&self, gain_exponent: f64) -> Vec<f64> {
        self.utilities
            .iter()
            .map(|&u| u.powf(gain_exponent))
            .collect()
    }
}

/// One labeled training example for the learned-model path (Figure 2).
///
/// Dense features and sparse ids are drawn from a latent-factor process in
/// which the click probability is a logistic function of the user-item
/// affinity, so models that learn the latent structure achieve lower error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClickSample {
    /// Continuous input features (13 for the Criteo-like profile).
    pub dense: Vec<f32>,
    /// One categorical id per embedding table.
    pub sparse: Vec<u32>,
    /// Whether the user clicked.
    pub clicked: bool,
    /// The latent click probability the sample was drawn from (available
    /// to tests and calibration; real datasets do not expose this).
    pub true_ctr: f32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gains_apply_power_transform() {
        let q = RankingQuery {
            id: 0,
            utilities: vec![2.0, 3.0],
        };
        let g = q.gains(2.0);
        assert_eq!(g, vec![4.0, 9.0]);
    }

    #[test]
    fn gains_with_unit_exponent_are_utilities() {
        let q = RankingQuery {
            id: 1,
            utilities: vec![0.5, 1.5],
        };
        assert_eq!(q.gains(1.0), q.utilities);
    }

    #[test]
    fn num_candidates_counts_pool() {
        let q = RankingQuery {
            id: 2,
            utilities: vec![0.0; 128],
        };
        assert_eq!(q.num_candidates(), 128);
    }
}
