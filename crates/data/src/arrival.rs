use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::Exponential;

/// Poisson arrival process: an infinite iterator of absolute arrival times
/// (in seconds) with exponential inter-arrival gaps.
///
/// The paper's load model: "Queries follow a Poisson arrival rate"
/// (Section 4). The queueing simulator consumes this iterator to inject
/// queries at a target QPS.
///
/// # Examples
///
/// ```
/// use recpipe_data::PoissonProcess;
///
/// let arrivals: Vec<f64> = PoissonProcess::new(500.0, 7).take(1000).collect();
/// let span = arrivals.last().unwrap() - arrivals.first().unwrap();
/// let rate = 999.0 / span;
/// assert!((rate - 500.0).abs() < 50.0); // ≈ 500 QPS
/// ```
#[derive(Debug, Clone)]
pub struct PoissonProcess {
    gap: Exponential,
    rng: StdRng,
    now: f64,
}

impl PoissonProcess {
    /// Creates a Poisson process with the given rate (queries per second)
    /// and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `rate_qps` is not strictly positive and finite.
    pub fn new(rate_qps: f64, seed: u64) -> Self {
        Self {
            gap: Exponential::new(rate_qps),
            rng: StdRng::seed_from_u64(seed),
            now: 0.0,
        }
    }

    /// The configured arrival rate in queries per second.
    pub fn rate(&self) -> f64 {
        self.gap.lambda()
    }
}

impl Iterator for PoissonProcess {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        self.now += self.gap.sample(&mut self.rng);
        Some(self.now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_strictly_increasing() {
        let times: Vec<f64> = PoissonProcess::new(100.0, 1).take(500).collect();
        for w in times.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn mean_rate_approaches_target() {
        let n = 20_000;
        let times: Vec<f64> = PoissonProcess::new(2000.0, 2).take(n).collect();
        let rate = (n as f64 - 1.0) / (times[n - 1] - times[0]);
        assert!(
            (rate - 2000.0).abs() / 2000.0 < 0.05,
            "observed rate {rate}"
        );
    }

    #[test]
    fn same_seed_reproduces_process() {
        let a: Vec<f64> = PoissonProcess::new(50.0, 9).take(100).collect();
        let b: Vec<f64> = PoissonProcess::new(50.0, 9).take(100).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<f64> = PoissonProcess::new(50.0, 9).take(10).collect();
        let b: Vec<f64> = PoissonProcess::new(50.0, 10).take(10).collect();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        PoissonProcess::new(0.0, 0);
    }
}
