//! Query arrival processes: the traffic side of at-scale serving.
//!
//! The paper evaluates under Poisson arrivals (Section 4), but
//! production recommendation traffic is burstier: flash crowds, diurnal
//! cycles, and closed-loop clients all move the tail. The
//! [`ArrivalProcess`] trait makes the traffic model a pluggable seam so
//! the queueing simulator can serve any scenario:
//!
//! * [`PoissonArrivals`] — the paper's memoryless baseline;
//! * [`MmppArrivals`] — a two-state Markov-modulated Poisson process
//!   (bursty: quiet/surge phases with exponential dwell times);
//! * [`DiurnalArrivals`] — a sinusoidal day/night rate cycle sampled by
//!   thinning (an inhomogeneous Poisson process);
//! * [`ClosedLoopArrivals`] — a fixed client population where each
//!   client issues its next query a think time after the previous one
//!   completes (load adapts to service, as in benchmark harnesses).
//!
//! Every process is seeded explicitly and fully deterministic.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::Exponential;

/// A source of query arrival times for the at-scale simulator.
///
/// Open-loop processes ([`PoissonArrivals`], [`MmppArrivals`],
/// [`DiurnalArrivals`]) pre-commit a schedule of absolute arrival
/// times via [`times`](ArrivalProcess::times). Closed-loop processes
/// additionally return a [`ClosedLoopSpec`] from
/// [`closed_loop`](ArrivalProcess::closed_loop); the simulator then
/// issues only the initial per-client arrivals from the schedule and
/// derives every later arrival from completions.
///
/// # Examples
///
/// ```
/// use recpipe_data::{ArrivalProcess, MmppArrivals, PoissonArrivals};
///
/// let poisson = PoissonArrivals::new(500.0);
/// let bursty = MmppArrivals::new(100.0, 2_000.0, 0.5, 0.1);
/// for process in [&poisson as &dyn ArrivalProcess, &bursty] {
///     let times = process.times(1_000, 7);
///     assert_eq!(times.len(), 1_000);
///     assert!(times.windows(2).all(|w| w[1] >= w[0]));
/// }
/// ```
pub trait ArrivalProcess: std::fmt::Debug + Send + Sync {
    /// Short name for reports (`poisson(500)`, `mmpp(100,2000)`, ...).
    fn name(&self) -> String;

    /// Long-run mean arrival rate in queries per second. For
    /// closed-loop processes this is the zero-service-time upper bound
    /// `clients / think_time`.
    fn mean_rate(&self) -> f64;

    /// The first `n` absolute arrival times in seconds, strictly
    /// non-decreasing, deterministic in `seed`.
    fn times(&self, n: usize, seed: u64) -> Vec<f64>;

    /// Closed-loop feedback, if any: when `Some`, the simulator takes
    /// only the first `clients` entries of [`times`](Self::times) as the
    /// initial arrivals and schedules each client's next query a think
    /// time after its previous query completes.
    fn closed_loop(&self) -> Option<ClosedLoopSpec> {
        None
    }

    /// A lazy, unbounded stream of the schedule, or `None` when the
    /// process has no streaming form.
    ///
    /// **Contract:** when `Some`, the iterator must yield *exactly* the
    /// values `times(n, seed)` would return, in order, for every prefix
    /// length `n` — consumers (the million-query simulator path) rely
    /// on bit-for-bit agreement so that streaming and materialized
    /// replays produce identical results. The default is `None`; the
    /// simulator then falls back to materializing the schedule.
    fn stream(&self, seed: u64) -> Option<Box<dyn Iterator<Item = f64> + Send + '_>> {
        let _ = seed;
        None
    }
}

/// Parameters of a closed-loop client population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClosedLoopSpec {
    /// Number of concurrent clients, each with one query in flight.
    pub clients: usize,
    /// Seconds a client waits after a completion before issuing its
    /// next query.
    pub think_time_s: f64,
}

/// Poisson arrival process configuration: memoryless arrivals at a
/// fixed rate — the paper's load model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonArrivals {
    rate_qps: f64,
}

impl PoissonArrivals {
    /// Creates a Poisson process at `rate_qps` queries per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate_qps` is not strictly positive and finite.
    pub fn new(rate_qps: f64) -> Self {
        assert!(
            rate_qps.is_finite() && rate_qps > 0.0,
            "rate must be positive"
        );
        Self { rate_qps }
    }
}

impl ArrivalProcess for PoissonArrivals {
    fn name(&self) -> String {
        format!("poisson({})", self.rate_qps)
    }

    fn mean_rate(&self) -> f64 {
        self.rate_qps
    }

    fn times(&self, n: usize, seed: u64) -> Vec<f64> {
        // Delegates to the iterator so `simulate()`'s historical
        // schedules are reproduced bit-for-bit.
        PoissonProcess::new(self.rate_qps, seed).take(n).collect()
    }

    fn stream(&self, seed: u64) -> Option<Box<dyn Iterator<Item = f64> + Send + '_>> {
        // The same iterator `times` collects from, so the streaming
        // contract holds by construction.
        Some(Box::new(PoissonProcess::new(self.rate_qps, seed)))
    }
}

/// Two-state Markov-modulated Poisson process: traffic alternates
/// between a quiet state and a surge state, with exponentially
/// distributed dwell times in each — the standard parsimonious model of
/// bursty request streams.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MmppArrivals {
    rate_quiet: f64,
    rate_surge: f64,
    dwell_quiet_s: f64,
    dwell_surge_s: f64,
}

impl MmppArrivals {
    /// Creates a two-state MMPP: `rate_quiet`/`rate_surge` QPS with mean
    /// dwell times `dwell_quiet_s`/`dwell_surge_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if any rate or dwell time is not strictly positive and
    /// finite.
    pub fn new(rate_quiet: f64, rate_surge: f64, dwell_quiet_s: f64, dwell_surge_s: f64) -> Self {
        for v in [rate_quiet, rate_surge, dwell_quiet_s, dwell_surge_s] {
            assert!(v.is_finite() && v > 0.0, "MMPP parameters must be positive");
        }
        Self {
            rate_quiet,
            rate_surge,
            dwell_quiet_s,
            dwell_surge_s,
        }
    }

    /// Ratio of surge rate to quiet rate — a burstiness summary.
    pub fn burst_ratio(&self) -> f64 {
        self.rate_surge / self.rate_quiet
    }
}

impl ArrivalProcess for MmppArrivals {
    fn name(&self) -> String {
        format!("mmpp({},{})", self.rate_quiet, self.rate_surge)
    }

    fn mean_rate(&self) -> f64 {
        // Time-weighted average over the stationary state occupancy.
        let total = self.dwell_quiet_s + self.dwell_surge_s;
        (self.rate_quiet * self.dwell_quiet_s + self.rate_surge * self.dwell_surge_s) / total
    }

    fn times(&self, n: usize, seed: u64) -> Vec<f64> {
        // Delegates to the stream so both forms agree bit-for-bit.
        self.stream(seed)
            .expect("MMPP always streams")
            .take(n)
            .collect()
    }

    fn stream(&self, seed: u64) -> Option<Box<dyn Iterator<Item = f64> + Send + '_>> {
        let mut rng = StdRng::seed_from_u64(seed);
        // End of the current state's dwell period.
        let state_end = Exponential::new(1.0 / self.dwell_quiet_s).sample(&mut rng);
        Some(Box::new(MmppStream {
            process: *self,
            rng,
            now: 0.0,
            surge: false,
            state_end,
        }))
    }
}

/// Streaming form of [`MmppArrivals`]: the same state machine the
/// batch schedule uses, advanced one arrival per `next()`.
#[derive(Debug)]
struct MmppStream {
    process: MmppArrivals,
    rng: StdRng,
    now: f64,
    surge: bool,
    state_end: f64,
}

impl Iterator for MmppStream {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        loop {
            let rate = if self.surge {
                self.process.rate_surge
            } else {
                self.process.rate_quiet
            };
            let gap = Exponential::new(rate).sample(&mut self.rng);
            if self.now + gap <= self.state_end {
                self.now += gap;
                return Some(self.now);
            }
            // The gap straddles a state switch: discard it
            // (memorylessness makes redrawing in the new state exact)
            // and advance to the switch point.
            self.now = self.state_end;
            self.surge = !self.surge;
            let dwell = if self.surge {
                self.process.dwell_surge_s
            } else {
                self.process.dwell_quiet_s
            };
            self.state_end = self.now + Exponential::new(1.0 / dwell).sample(&mut self.rng);
        }
    }
}

/// Diurnal (inhomogeneous Poisson) arrivals: the rate follows a raised
/// cosine between `trough_qps` and `peak_qps` over `period_s` seconds,
/// sampled exactly by thinning against the peak rate.
///
/// Production recommendation traffic follows the day/night cycle;
/// compressing a day into a few simulated seconds stresses how a
/// configuration rides the rate swing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalArrivals {
    trough_qps: f64,
    peak_qps: f64,
    period_s: f64,
}

impl DiurnalArrivals {
    /// Creates a diurnal process cycling between `trough_qps` and
    /// `peak_qps` with the given period.
    ///
    /// # Panics
    ///
    /// Panics if the rates or period are not strictly positive and
    /// finite, or if `peak_qps < trough_qps`.
    pub fn new(trough_qps: f64, peak_qps: f64, period_s: f64) -> Self {
        for v in [trough_qps, peak_qps, period_s] {
            assert!(
                v.is_finite() && v > 0.0,
                "diurnal parameters must be positive"
            );
        }
        assert!(peak_qps >= trough_qps, "peak must be at least trough");
        Self {
            trough_qps,
            peak_qps,
            period_s,
        }
    }

    /// Instantaneous rate at time `t` seconds: trough at `t = 0`, peak
    /// at `t = period / 2`.
    pub fn rate_at(&self, t: f64) -> f64 {
        let phase = (std::f64::consts::TAU * t / self.period_s).cos();
        self.trough_qps + (self.peak_qps - self.trough_qps) * 0.5 * (1.0 - phase)
    }
}

impl ArrivalProcess for DiurnalArrivals {
    fn name(&self) -> String {
        format!("diurnal({},{})", self.trough_qps, self.peak_qps)
    }

    fn mean_rate(&self) -> f64 {
        0.5 * (self.trough_qps + self.peak_qps)
    }

    fn times(&self, n: usize, seed: u64) -> Vec<f64> {
        // Delegates to the stream so both forms agree bit-for-bit.
        self.stream(seed)
            .expect("diurnal always streams")
            .take(n)
            .collect()
    }

    fn stream(&self, seed: u64) -> Option<Box<dyn Iterator<Item = f64> + Send + '_>> {
        Some(Box::new(DiurnalStream {
            process: *self,
            gap: Exponential::new(self.peak_qps),
            rng: StdRng::seed_from_u64(seed),
            now: 0.0,
        }))
    }
}

/// Streaming form of [`DiurnalArrivals`]: Lewis-Shedler thinning — draw
/// candidates at the peak rate and accept each with probability
/// `rate(t) / peak` — advanced one accepted arrival per `next()`.
#[derive(Debug)]
struct DiurnalStream {
    process: DiurnalArrivals,
    gap: Exponential,
    rng: StdRng,
    now: f64,
}

impl Iterator for DiurnalStream {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        loop {
            self.now += self.gap.sample(&mut self.rng);
            let accept: f64 = rand::Rng::gen(&mut self.rng);
            if accept * self.process.peak_qps <= self.process.rate_at(self.now) {
                return Some(self.now);
            }
        }
    }
}

/// Closed-loop arrivals: `clients` concurrent users, each re-issuing a
/// query `think_time_s` after its previous query completes. The offered
/// load self-regulates — a saturated system sees at most `clients`
/// queries in flight instead of an unbounded backlog.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClosedLoopArrivals {
    clients: usize,
    think_time_s: f64,
}

impl ClosedLoopArrivals {
    /// Creates a closed-loop population of `clients` users with the
    /// given think time.
    ///
    /// # Panics
    ///
    /// Panics if `clients == 0` or `think_time_s` is not strictly
    /// positive and finite.
    pub fn new(clients: usize, think_time_s: f64) -> Self {
        assert!(clients > 0, "need at least one client");
        assert!(
            think_time_s.is_finite() && think_time_s > 0.0,
            "think time must be positive"
        );
        Self {
            clients,
            think_time_s,
        }
    }
}

impl ArrivalProcess for ClosedLoopArrivals {
    fn name(&self) -> String {
        format!("closed({},{}s)", self.clients, self.think_time_s)
    }

    fn mean_rate(&self) -> f64 {
        self.clients as f64 / self.think_time_s
    }

    fn times(&self, n: usize, seed: u64) -> Vec<f64> {
        // Initial ramp: clients start staggered uniformly over one think
        // time so the population does not arrive as a single burst. Only
        // the first `clients` entries are meaningful; later entries
        // extend the ramp so open-loop consumers of the schedule still
        // get a (degenerate) valid sequence. Each offset lies in
        // [i, i+1) * step, so the schedule is monotone by construction.
        let mut rng = StdRng::seed_from_u64(seed);
        let step = self.think_time_s / self.clients as f64;
        (0..n)
            .map(|i| {
                let jitter: f64 = rand::Rng::gen(&mut rng);
                (i as f64 + jitter) * step
            })
            .collect()
    }

    fn closed_loop(&self) -> Option<ClosedLoopSpec> {
        Some(ClosedLoopSpec {
            clients: self.clients,
            think_time_s: self.think_time_s,
        })
    }
}

/// Poisson arrival process: an infinite iterator of absolute arrival times
/// (in seconds) with exponential inter-arrival gaps.
///
/// The paper's load model: "Queries follow a Poisson arrival rate"
/// (Section 4). [`PoissonArrivals`] wraps this iterator behind the
/// [`ArrivalProcess`] seam; the iterator form remains for streaming
/// consumers.
///
/// # Examples
///
/// ```
/// use recpipe_data::PoissonProcess;
///
/// let arrivals: Vec<f64> = PoissonProcess::new(500.0, 7).take(1000).collect();
/// let span = arrivals.last().unwrap() - arrivals.first().unwrap();
/// let rate = 999.0 / span;
/// assert!((rate - 500.0).abs() < 50.0); // ≈ 500 QPS
/// ```
#[derive(Debug, Clone)]
pub struct PoissonProcess {
    gap: Exponential,
    rng: StdRng,
    now: f64,
}

impl PoissonProcess {
    /// Creates a Poisson process with the given rate (queries per second)
    /// and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `rate_qps` is not strictly positive and finite.
    pub fn new(rate_qps: f64, seed: u64) -> Self {
        Self {
            gap: Exponential::new(rate_qps),
            rng: StdRng::seed_from_u64(seed),
            now: 0.0,
        }
    }

    /// The configured arrival rate in queries per second.
    pub fn rate(&self) -> f64 {
        self.gap.lambda()
    }
}

impl Iterator for PoissonProcess {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        self.now += self.gap.sample(&mut self.rng);
        Some(self.now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_strictly_increasing() {
        let times: Vec<f64> = PoissonProcess::new(100.0, 1).take(500).collect();
        for w in times.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn mean_rate_approaches_target() {
        let n = 20_000;
        let times: Vec<f64> = PoissonProcess::new(2000.0, 2).take(n).collect();
        let rate = (n as f64 - 1.0) / (times[n - 1] - times[0]);
        assert!(
            (rate - 2000.0).abs() / 2000.0 < 0.05,
            "observed rate {rate}"
        );
    }

    #[test]
    fn same_seed_reproduces_process() {
        let a: Vec<f64> = PoissonProcess::new(50.0, 9).take(100).collect();
        let b: Vec<f64> = PoissonProcess::new(50.0, 9).take(100).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<f64> = PoissonProcess::new(50.0, 9).take(10).collect();
        let b: Vec<f64> = PoissonProcess::new(50.0, 10).take(10).collect();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        PoissonProcess::new(0.0, 0);
    }

    #[test]
    fn poisson_trait_matches_iterator_schedule() {
        // The trait impl must reproduce the iterator's schedule exactly:
        // the old `simulate(qps, ...)` path depends on it bit-for-bit.
        let via_trait = PoissonArrivals::new(300.0).times(500, 11);
        let via_iter: Vec<f64> = PoissonProcess::new(300.0, 11).take(500).collect();
        assert_eq!(via_trait, via_iter);
    }

    #[test]
    fn mmpp_is_deterministic_and_ordered() {
        let p = MmppArrivals::new(100.0, 1500.0, 0.4, 0.1);
        let a = p.times(2_000, 5);
        let b = p.times(2_000, 5);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn mmpp_mean_rate_is_dwell_weighted() {
        let p = MmppArrivals::new(100.0, 1000.0, 0.9, 0.1);
        assert!((p.mean_rate() - 190.0).abs() < 1e-9);
        assert!((p.burst_ratio() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn mmpp_observed_rate_matches_mean() {
        // Few dwell cycles make a single run noisy; average over seeds.
        let p = MmppArrivals::new(200.0, 2_000.0, 0.5, 0.5);
        let n = 40_000;
        let mean_observed = (0..6)
            .map(|seed| {
                let times = p.times(n, seed);
                (n as f64 - 1.0) / (times[n - 1] - times[0])
            })
            .sum::<f64>()
            / 6.0;
        assert!(
            (mean_observed - p.mean_rate()).abs() / p.mean_rate() < 0.08,
            "observed {mean_observed} vs mean {}",
            p.mean_rate()
        );
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        // Squared coefficient of variation of inter-arrival gaps: 1 for
        // Poisson, > 1 for MMPP with distinct state rates.
        fn scv(times: &[f64]) -> f64 {
            let gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        }
        let poisson = PoissonArrivals::new(500.0).times(20_000, 8);
        let bursty = MmppArrivals::new(100.0, 2_000.0, 0.5, 0.1).times(20_000, 8);
        assert!(scv(&poisson) < 1.3, "poisson SCV {}", scv(&poisson));
        assert!(scv(&bursty) > 1.5, "mmpp SCV {}", scv(&bursty));
    }

    #[test]
    fn diurnal_rate_cycles_between_trough_and_peak() {
        let d = DiurnalArrivals::new(100.0, 900.0, 10.0);
        assert!((d.rate_at(0.0) - 100.0).abs() < 1e-9);
        assert!((d.rate_at(5.0) - 900.0).abs() < 1e-9);
        assert!((d.rate_at(10.0) - 100.0).abs() < 1e-9);
        assert!((d.mean_rate() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn diurnal_density_tracks_the_cycle() {
        let d = DiurnalArrivals::new(50.0, 950.0, 4.0);
        let times = d.times(30_000, 4);
        // Count arrivals in the first trough quarter vs the first peak
        // quarter of the first full cycle.
        let in_range = |lo: f64, hi: f64| times.iter().filter(|&&t| t >= lo && t < hi).count();
        let trough = in_range(0.0, 1.0);
        let peak = in_range(1.5, 2.5);
        assert!(
            peak > trough * 3,
            "peak quarter {peak} vs trough quarter {trough}"
        );
    }

    #[test]
    fn closed_loop_exposes_spec_and_staggered_start() {
        let c = ClosedLoopArrivals::new(32, 0.1);
        let spec = c.closed_loop().expect("closed loop");
        assert_eq!(spec.clients, 32);
        assert!((c.mean_rate() - 320.0).abs() < 1e-9);
        let times = c.times(32, 1);
        assert!(times.windows(2).all(|w| w[1] >= w[0]));
        // The whole population starts within one think time.
        assert!(times[31] <= 0.1 + 1e-9);
    }

    #[test]
    fn streams_reproduce_times_bit_for_bit() {
        // The streaming contract: every prefix of `stream` equals
        // `times` exactly, for every process that offers a stream.
        let processes: Vec<Box<dyn ArrivalProcess>> = vec![
            Box::new(PoissonArrivals::new(700.0)),
            Box::new(MmppArrivals::new(100.0, 2_000.0, 0.5, 0.1)),
            Box::new(DiurnalArrivals::new(100.0, 900.0, 4.0)),
        ];
        for p in &processes {
            for seed in [0u64, 7, 42] {
                let streamed: Vec<f64> = p.stream(seed).expect("streams").take(3_000).collect();
                assert_eq!(streamed, p.times(3_000, seed), "{}", p.name());
            }
        }
    }

    #[test]
    fn closed_loop_has_no_streaming_form() {
        assert!(ClosedLoopArrivals::new(4, 0.1).stream(0).is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn mmpp_rejects_zero_rate() {
        MmppArrivals::new(0.0, 100.0, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn closed_loop_rejects_zero_clients() {
        ClosedLoopArrivals::new(0, 0.1);
    }
}
