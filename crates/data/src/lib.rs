//! Synthetic recommendation datasets, distributions, and arrival processes.
//!
//! The RecPipe paper evaluates on Criteo Kaggle and MovieLens 1M/20M. Those
//! datasets are not redistributable here, so this crate provides *calibrated
//! synthetic equivalents* that preserve the properties the evaluation
//! actually depends on:
//!
//! * a per-query candidate pool with graded **true utilities** (drives the
//!   quality metric and the items-ranked axis of Figure 3),
//! * **Zipfian categorical feature ids** (drives embedding-cache hit rates,
//!   Figure 10c and 13),
//! * latent-factor **click samples** for actually training models (Figure 2),
//! * pluggable **arrival processes** behind the [`ArrivalProcess`] trait —
//!   Poisson (the paper's load model), bursty MMPP, diurnal cycles,
//!   closed-loop client populations, and recorded-trace replay with rate
//!   rescaling (drives tail latency at a system load).
//!
//! All samplers take explicit seeds: every experiment in the repository is
//! reproducible bit-for-bit.
//!
//! # Examples
//!
//! ```
//! use recpipe_data::{DatasetSpec, QueryGenerator};
//!
//! let spec = DatasetSpec::criteo_kaggle();
//! let mut gen = QueryGenerator::new(&spec, 42);
//! let query = gen.next_query();
//! assert_eq!(query.utilities.len(), spec.candidates_per_query);
//! ```

mod arrival;
mod dataset;
mod dist;
mod movielens;
mod query;
mod synthetic;
mod trace;

pub use arrival::{
    ArrivalProcess, ClosedLoopArrivals, ClosedLoopSpec, DiurnalArrivals, MmppArrivals,
    PoissonArrivals, PoissonProcess,
};
pub use dataset::{DatasetKind, DatasetSpec};
pub use dist::{Exponential, Normal, Zipf};
pub use movielens::{
    interaction_stats, parse_ml1m, parse_ml20m, InteractionStats, ParseRatingError, Rating,
};
pub use query::{ClickSample, RankingQuery};
pub use synthetic::{ClickGenerator, EmbeddingTrace, QueryGenerator};
pub use trace::TraceArrivals;
