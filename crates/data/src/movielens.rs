//! Parser for the real MovieLens interaction formats, so the framework
//! can be driven by the actual datasets the paper evaluates when they
//! are available locally.
//!
//! Two wire formats are supported:
//!
//! * **ML-1M** `ratings.dat`: `UserID::MovieID::Rating::Timestamp`
//! * **ML-20M/25M** `ratings.csv`: `userId,movieId,rating,timestamp`
//!   (with a header line)
//!
//! The synthetic generators in [`crate::QueryGenerator`] remain the
//! default for reproducible experiments; this module is the bridge to
//! real data.

use serde::{Deserialize, Serialize};

/// One user-item interaction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rating {
    /// User identifier (as in the file; not remapped).
    pub user: u32,
    /// Item (movie) identifier.
    pub item: u32,
    /// Star rating in `[0.5, 5.0]`.
    pub rating: f32,
    /// Unix timestamp of the interaction.
    pub timestamp: u64,
}

impl Rating {
    /// Implicit-feedback label the paper's NeuMF setup uses: ratings of
    /// 4 stars or more count as positive interactions.
    pub fn is_positive(&self) -> bool {
        self.rating >= 4.0
    }
}

/// Error describing an unparsable interaction line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRatingError {
    /// 1-based line number in the input.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for ParseRatingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseRatingError {}

fn parse_fields(
    fields: &mut dyn Iterator<Item = &str>,
    line_no: usize,
) -> Result<Rating, ParseRatingError> {
    let mut next = |name: &str| {
        fields.next().ok_or_else(|| ParseRatingError {
            line: line_no,
            reason: format!("missing field {name}"),
        })
    };
    let user = next("user")?;
    let item = next("item")?;
    let rating = next("rating")?;
    let timestamp = next("timestamp")?;
    let bad = |field: &str, value: &str| ParseRatingError {
        line: line_no,
        reason: format!("invalid {field}: {value:?}"),
    };
    Ok(Rating {
        user: user.trim().parse().map_err(|_| bad("user", user))?,
        item: item.trim().parse().map_err(|_| bad("item", item))?,
        rating: rating.trim().parse().map_err(|_| bad("rating", rating))?,
        timestamp: timestamp
            .trim()
            .parse()
            .map_err(|_| bad("timestamp", timestamp))?,
    })
}

/// Parses ML-1M `ratings.dat` content (`UserID::MovieID::Rating::Ts`).
///
/// Blank lines are skipped.
///
/// # Errors
///
/// Returns the first malformed line with its line number.
///
/// # Examples
///
/// ```
/// let ratings = recpipe_data::parse_ml1m("1::1193::5::978300760\n1::661::3::978302109\n")?;
/// assert_eq!(ratings.len(), 2);
/// assert!(ratings[0].is_positive());
/// assert!(!ratings[1].is_positive());
/// # Ok::<(), recpipe_data::ParseRatingError>(())
/// ```
pub fn parse_ml1m(content: &str) -> Result<Vec<Rating>, ParseRatingError> {
    content
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| parse_fields(&mut l.split("::"), i + 1))
        .collect()
}

/// Parses ML-20M/25M `ratings.csv` content (header line tolerated).
///
/// # Errors
///
/// Returns the first malformed line with its line number.
///
/// # Examples
///
/// ```
/// let csv = "userId,movieId,rating,timestamp\n1,296,5.0,1147880044\n";
/// let ratings = recpipe_data::parse_ml20m(csv)?;
/// assert_eq!(ratings.len(), 1);
/// assert_eq!(ratings[0].item, 296);
/// # Ok::<(), recpipe_data::ParseRatingError>(())
/// ```
pub fn parse_ml20m(content: &str) -> Result<Vec<Rating>, ParseRatingError> {
    content
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .filter(|(i, l)| !(*i == 0 && l.starts_with("userId")))
        .map(|(i, l)| parse_fields(&mut l.split(','), i + 1))
        .collect()
}

/// Summary statistics of a parsed interaction set — the quantities the
/// synthetic [`DatasetSpec`](crate::DatasetSpec) mirrors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InteractionStats {
    /// Distinct users.
    pub num_users: usize,
    /// Distinct items.
    pub num_items: usize,
    /// Total interactions.
    pub num_ratings: usize,
    /// Fraction rated positive (>= 4 stars).
    pub positive_rate: f64,
}

/// Computes [`InteractionStats`] over parsed ratings.
pub fn interaction_stats(ratings: &[Rating]) -> InteractionStats {
    let mut users = std::collections::HashSet::new();
    let mut items = std::collections::HashSet::new();
    let mut positives = 0usize;
    for r in ratings {
        users.insert(r.user);
        items.insert(r.item);
        if r.is_positive() {
            positives += 1;
        }
    }
    InteractionStats {
        num_users: users.len(),
        num_items: items.len(),
        num_ratings: ratings.len(),
        positive_rate: if ratings.is_empty() {
            0.0
        } else {
            positives as f64 / ratings.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ML1M_SAMPLE: &str =
        "1::1193::5::978300760\n1::661::3::978302109\n2::1357::5::978298709\n";
    const ML20M_SAMPLE: &str =
        "userId,movieId,rating,timestamp\n1,296,5.0,1147880044\n1,306,3.5,1147868817\n";

    #[test]
    fn ml1m_parses_fields() {
        let ratings = parse_ml1m(ML1M_SAMPLE).unwrap();
        assert_eq!(ratings.len(), 3);
        assert_eq!(ratings[0].user, 1);
        assert_eq!(ratings[0].item, 1193);
        assert_eq!(ratings[0].rating, 5.0);
        assert_eq!(ratings[2].user, 2);
    }

    #[test]
    fn ml20m_skips_header_and_parses() {
        let ratings = parse_ml20m(ML20M_SAMPLE).unwrap();
        assert_eq!(ratings.len(), 2);
        assert_eq!(ratings[1].rating, 3.5);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let ratings = parse_ml1m("1::2::3::4\n\n\n5::6::4::8\n").unwrap();
        assert_eq!(ratings.len(), 2);
    }

    #[test]
    fn malformed_line_reports_position() {
        let err = parse_ml1m("1::2::3::4\nnot-a-line\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn missing_field_is_an_error() {
        let err = parse_ml1m("1::2::3\n").unwrap_err();
        assert!(err.reason.contains("missing"));
    }

    #[test]
    fn positivity_threshold_is_four_stars() {
        assert!(Rating {
            user: 1,
            item: 1,
            rating: 4.0,
            timestamp: 0
        }
        .is_positive());
        assert!(!Rating {
            user: 1,
            item: 1,
            rating: 3.5,
            timestamp: 0
        }
        .is_positive());
    }

    #[test]
    fn stats_count_distinct_entities() {
        let ratings = parse_ml1m(ML1M_SAMPLE).unwrap();
        let stats = interaction_stats(&ratings);
        assert_eq!(stats.num_users, 2);
        assert_eq!(stats.num_items, 3);
        assert_eq!(stats.num_ratings, 3);
        assert!((stats.positive_rate - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty_set() {
        let stats = interaction_stats(&[]);
        assert_eq!(stats.num_ratings, 0);
        assert_eq!(stats.positive_rate, 0.0);
    }
}
