//! Random distributions implemented on top of `rand`'s uniform source.
//!
//! `rand` 0.8 ships only uniform sampling; the normal, exponential, and
//! Zipf distributions RecPipe needs are implemented here rather than
//! pulling in an extra dependency (see DESIGN.md).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Gaussian distribution sampled with the Marsaglia polar method.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use recpipe_data::Normal;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let n = Normal::new(10.0, 2.0);
/// let x = n.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or not finite.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(std.is_finite() && std >= 0.0, "std must be non-negative");
        Self { mean, std }
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Self::new(0.0, 1.0)
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation of the distribution.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.std == 0.0 {
            return self.mean;
        }
        // Marsaglia polar method; rejection loop terminates with
        // probability 1 (acceptance ~78.5% per iteration).
        loop {
            let u: f64 = rng.gen_range(-1.0..1.0);
            let v: f64 = rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return self.mean + self.std * u * factor;
            }
        }
    }
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// Used for true-utility tails and Poisson inter-arrival gaps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not strictly positive and finite.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "lambda must be positive"
        );
        Self { lambda }
    }

    /// Rate parameter.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Mean of the distribution (`1 / lambda`).
    pub fn mean(&self) -> f64 {
        1.0 / self.lambda
    }

    /// Draws one sample by inverse-CDF.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // u in [0, 1); 1-u in (0, 1] avoids ln(0).
        let u: f64 = rng.gen();
        -(1.0 - u).ln() / self.lambda
    }
}

/// Zipfian distribution over ranks `1..=n` with exponent `s`.
///
/// Embedding-table lookups in production recommendation workloads follow a
/// power law — a small set of hot vectors absorbs most accesses — which is
/// exactly what makes on-chip embedding caches effective (paper Section 6.2,
/// Takeaway 7). Sampling uses the continuous inverse-CDF approximation
/// `F(x) ∝ x^(1-s)`, which is accurate for the large `n` (millions of rows)
/// used by the cache models and keeps sampling O(1).
///
/// Rank 1 is the hottest item.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use recpipe_data::Zipf;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let z = Zipf::new(1_000_000, 0.9);
/// let rank = z.sample(&mut rng);
/// assert!((1..=1_000_000).contains(&rank));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Zipf {
    n: u64,
    s: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `1..=n` with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative or not finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "n must be positive");
        assert!(s.is_finite() && s >= 0.0, "exponent must be non-negative");
        Self { n, s }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew exponent.
    pub fn s(&self) -> f64 {
        self.s
    }

    /// Draws one rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen(); // [0, 1)
        let x = if (self.s - 1.0).abs() < 1e-9 {
            // s = 1: F^-1(u) = n^u.
            (self.n as f64).powf(u)
        } else {
            let t = 1.0 - self.s;
            // F(x) = (x^t - 1) / (n^t - 1)
            let n_t = (self.n as f64).powf(t);
            ((n_t - 1.0) * u + 1.0).powf(1.0 / t)
        };
        (x.floor() as u64).clamp(1, self.n)
    }

    /// Analytic probability mass of rank `k` under the continuous
    /// approximation used by [`sample`](Self::sample).
    ///
    /// Returns the probability that a sample falls in `[k, k+1)`; the cache
    /// models use the cumulative form [`cdf`](Self::cdf) to compute hit
    /// rates without simulation.
    pub fn pmf(&self, k: u64) -> f64 {
        assert!((1..=self.n).contains(&k), "rank out of range");
        self.cdf(k) - if k == 1 { 0.0 } else { self.cdf(k - 1) }
    }

    /// Probability that a sample's rank is `<= k` (fraction of accesses
    /// absorbed by the `k` hottest items).
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside `1..=n`.
    pub fn cdf(&self, k: u64) -> f64 {
        assert!((1..=self.n).contains(&k), "rank out of range");
        if k == self.n {
            return 1.0;
        }
        if (self.s - 1.0).abs() < 1e-9 {
            ((k + 1) as f64).ln() / ((self.n as f64).ln().max(f64::MIN_POSITIVE))
        } else {
            let t = 1.0 - self.s;
            let n_t = (self.n as f64).powf(t);
            (((k + 1) as f64).powf(t) - 1.0) / (n_t - 1.0)
        }
        .clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_sample_statistics() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = Normal::new(5.0, 2.0);
        let samples: Vec<f64> = (0..20_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean was {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std was {}", var.sqrt());
    }

    #[test]
    fn normal_zero_std_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = Normal::new(3.0, 0.0);
        assert_eq!(n.sample(&mut rng), 3.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn normal_rejects_negative_std() {
        Normal::new(0.0, -1.0);
    }

    #[test]
    fn exponential_mean_matches() {
        let mut rng = StdRng::seed_from_u64(12);
        let e = Exponential::new(4.0);
        let mean = (0..20_000).map(|_| e.sample(&mut rng)).sum::<f64>() / 20_000.0;
        assert!((mean - 0.25).abs() < 0.02, "mean was {mean}");
    }

    #[test]
    fn exponential_samples_are_nonnegative() {
        let mut rng = StdRng::seed_from_u64(13);
        let e = Exponential::new(0.5);
        assert!((0..1000).all(|_| e.sample(&mut rng) >= 0.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_rate() {
        Exponential::new(0.0);
    }

    #[test]
    fn zipf_samples_in_range() {
        let mut rng = StdRng::seed_from_u64(14);
        let z = Zipf::new(1000, 0.8);
        for _ in 0..5000 {
            let k = z.sample(&mut rng);
            assert!((1..=1000).contains(&k));
        }
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let mut rng = StdRng::seed_from_u64(15);
        let z = Zipf::new(100_000, 0.9);
        let hot = (0..20_000).filter(|_| z.sample(&mut rng) <= 1000).count();
        // Top 1% of ranks should absorb far more than 1% of accesses.
        assert!(
            hot as f64 / 20_000.0 > 0.3,
            "top-1% share was {}",
            hot as f64 / 20_000.0
        );
    }

    #[test]
    fn zipf_cdf_is_monotone_and_complete() {
        let z = Zipf::new(10_000, 0.7);
        let mut prev = 0.0;
        for k in [1u64, 10, 100, 1000, 9999, 10_000] {
            let c = z.cdf(k);
            assert!(c >= prev, "cdf not monotone at {k}");
            prev = c;
        }
        assert!((z.cdf(10_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_cdf_matches_empirical_frequency() {
        let mut rng = StdRng::seed_from_u64(16);
        let z = Zipf::new(50_000, 0.9);
        let k = 500;
        let analytic = z.cdf(k);
        let hits = (0..40_000).filter(|_| z.sample(&mut rng) <= k).count();
        let empirical = hits as f64 / 40_000.0;
        assert!(
            (analytic - empirical).abs() < 0.02,
            "analytic {analytic} vs empirical {empirical}"
        );
    }

    #[test]
    fn zipf_exponent_one_path() {
        let mut rng = StdRng::seed_from_u64(17);
        let z = Zipf::new(1000, 1.0);
        for _ in 0..1000 {
            let k = z.sample(&mut rng);
            assert!((1..=1000).contains(&k));
        }
        assert!(z.cdf(1000) == 1.0);
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        // s = 0 degenerates to uniform: cdf(k) ≈ k/n.
        let z = Zipf::new(1000, 0.0);
        assert!((z.cdf(500) - 0.5).abs() < 0.01);
    }

    #[test]
    fn zipf_pmf_sums_to_cdf() {
        let z = Zipf::new(100, 0.9);
        let total: f64 = (1..=100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
