use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{ClickSample, DatasetSpec, Exponential, Normal, RankingQuery, Zipf};

/// Generates [`RankingQuery`]s whose candidate pools follow the dataset's
/// utility distribution.
///
/// Utilities are `Exp(1)` draws: most candidates are mediocre, a thin tail
/// is excellent. Combined with the dataset's gain transform this yields the
/// paper's central empirical fact — quality rises with the number of items
/// ranked because ranking a larger pool is more likely to surface the rare
/// excellent items (Figure 3).
///
/// # Examples
///
/// ```
/// use recpipe_data::{DatasetSpec, QueryGenerator};
///
/// let spec = DatasetSpec::movielens_1m();
/// let mut gen = QueryGenerator::new(&spec, 1);
/// let q = gen.next_query();
/// assert_eq!(q.num_candidates(), spec.candidates_per_query);
/// ```
#[derive(Debug, Clone)]
pub struct QueryGenerator {
    candidates_per_query: usize,
    utility: Exponential,
    rng: StdRng,
    next_id: u64,
}

impl QueryGenerator {
    /// Creates a generator for the given dataset spec and RNG seed.
    pub fn new(spec: &DatasetSpec, seed: u64) -> Self {
        Self {
            candidates_per_query: spec.candidates_per_query,
            utility: Exponential::new(1.0),
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
        }
    }

    /// Produces the next query with a fresh candidate pool.
    pub fn next_query(&mut self) -> RankingQuery {
        let utilities = (0..self.candidates_per_query)
            .map(|_| self.utility.sample(&mut self.rng))
            .collect();
        let id = self.next_id;
        self.next_id += 1;
        RankingQuery { id, utilities }
    }

    /// Produces a batch of `n` queries.
    pub fn take_queries(&mut self, n: usize) -> Vec<RankingQuery> {
        (0..n).map(|_| self.next_query()).collect()
    }
}

/// Latent-factor click generator for the learned-model path.
///
/// Each user and item owns a latent vector; the click probability is a
/// logistic function of their inner product. Dense features are noisy views
/// of the latent affinity, and sparse ids index the user/item (plus Zipfian
/// context features), so a DLRM that learns the embedding space can
/// genuinely reduce its error with capacity — reproducing the shape of the
/// paper's Figure 2 hyperparameter sweep.
#[derive(Debug, Clone)]
pub struct ClickGenerator {
    num_dense: usize,
    num_sparse: usize,
    /// Cardinality of each sparse feature (bounded for trainability).
    vocab: u32,
    latent_dim: usize,
    noise: Normal,
    rng: StdRng,
}

impl ClickGenerator {
    /// Default latent dimensionality of the generating process.
    pub const LATENT_DIM: usize = 8;

    /// Creates a click generator for the given dataset spec.
    ///
    /// `vocab` bounds each sparse feature's cardinality so the trained
    /// models stay laptop-sized; the full-capacity tables are exercised by
    /// the virtual-table cost models instead.
    pub fn new(spec: &DatasetSpec, vocab: u32, seed: u64) -> Self {
        assert!(vocab > 0, "vocab must be positive");
        Self {
            num_dense: spec.num_dense_features.max(1),
            num_sparse: spec.num_sparse_features,
            vocab,
            latent_dim: Self::LATENT_DIM,
            noise: Normal::new(0.0, 0.25),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Deterministic pseudo-latent vector for a categorical id.
    fn latent(&self, table: usize, id: u32) -> Vec<f64> {
        // SplitMix64-style hash of (table, id, dim) — stable, cheap, and
        // avoids storing vocab * latent_dim floats.
        (0..self.latent_dim)
            .map(|d| {
                let mut h = (table as u64) << 40 ^ (id as u64) << 8 ^ d as u64;
                h ^= h >> 33;
                h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
                h ^= h >> 33;
                h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
                h ^= h >> 33;
                // Map to [-0.5, 0.5].
                (h as f64 / u64::MAX as f64) - 0.5
            })
            .collect()
    }

    /// Draws one labeled sample.
    pub fn next_sample(&mut self) -> ClickSample {
        let sparse: Vec<u32> = (0..self.num_sparse)
            .map(|_| self.rng.gen_range(0..self.vocab))
            .collect();

        // Affinity is the mean pairwise interaction of the first two
        // sparse features' latents (user x item), like matrix factorization.
        let u = self.latent(0, sparse.first().copied().unwrap_or(0));
        let v = self.latent(1, sparse.get(1).copied().unwrap_or(0));
        let affinity: f64 = u.iter().zip(v.iter()).map(|(a, b)| a * b).sum::<f64>() * 12.0;

        let true_ctr = 1.0 / (1.0 + (-affinity).exp());
        let clicked = self.rng.gen::<f64>() < true_ctr;

        // Dense features: *nonlinear* encodings of the affinity. A linear
        // readout cannot decode them; wider/deeper bottom MLPs
        // approximate the inverse better — which is what gives model
        // capacity something to buy (Figure 2's accuracy-vs-complexity
        // tradeoff).
        let dense: Vec<f32> = (0..self.num_dense)
            .map(|d| {
                let scale = 0.8 + 0.5 * d as f64;
                let phase = d as f64 * 0.7;
                let encoded = (affinity * scale + phase).sin();
                (encoded + self.noise.sample(&mut self.rng)) as f32
            })
            .collect();

        ClickSample {
            dense,
            sparse,
            clicked,
            true_ctr: true_ctr as f32,
        }
    }

    /// Draws a batch of `n` samples.
    pub fn take_samples(&mut self, n: usize) -> Vec<ClickSample> {
        (0..n).map(|_| self.next_sample()).collect()
    }
}

/// A stream of embedding-table lookups with Zipfian popularity, used by the
/// cache simulators (Figure 10c, Figure 13).
///
/// Rank-space ids: id `k` is the `k`-th most popular row, so "cache the
/// top-`C` ids" corresponds to caching ids `1..=C`.
#[derive(Debug, Clone)]
pub struct EmbeddingTrace {
    zipf: Zipf,
    rng: StdRng,
}

impl EmbeddingTrace {
    /// Creates a trace for a table with `rows` rows and the dataset's
    /// Zipf skew.
    pub fn new(rows: u64, zipf_exponent: f64, seed: u64) -> Self {
        Self {
            zipf: Zipf::new(rows, zipf_exponent),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Creates a trace matching a dataset spec.
    pub fn for_spec(spec: &DatasetSpec, seed: u64) -> Self {
        Self::new(spec.rows_per_table, spec.zipf_exponent, seed)
    }

    /// The underlying popularity distribution.
    pub fn popularity(&self) -> Zipf {
        self.zipf
    }

    /// Draws the next accessed row id (1-based popularity rank).
    pub fn next_access(&mut self) -> u64 {
        self.zipf.sample(&mut self.rng)
    }

    /// Draws a batch of `n` accesses.
    pub fn take_accesses(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_access()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_generator_is_deterministic() {
        let spec = DatasetSpec::criteo_kaggle();
        let mut a = QueryGenerator::new(&spec, 5);
        let mut b = QueryGenerator::new(&spec, 5);
        assert_eq!(a.next_query(), b.next_query());
    }

    #[test]
    fn query_ids_are_monotone() {
        let spec = DatasetSpec::movielens_1m();
        let mut gen = QueryGenerator::new(&spec, 0);
        let qs = gen.take_queries(5);
        for (i, q) in qs.iter().enumerate() {
            assert_eq!(q.id, i as u64);
        }
    }

    #[test]
    fn utilities_are_nonnegative_with_tail() {
        let spec = DatasetSpec::criteo_kaggle();
        let mut gen = QueryGenerator::new(&spec, 1);
        let q = gen.next_query();
        assert!(q.utilities.iter().all(|&u| u >= 0.0));
        let max = q.utilities.iter().cloned().fold(0.0, f64::max);
        // Exp(1) over 4096 samples: max ≈ ln(4096) ≈ 8.3.
        assert!(max > 4.0, "tail too light: max {max}");
    }

    #[test]
    fn click_generator_labels_follow_ctr() {
        let spec = DatasetSpec::criteo_kaggle();
        let mut gen = ClickGenerator::new(&spec, 1000, 7);
        let samples = gen.take_samples(5000);
        let click_rate = samples.iter().filter(|s| s.clicked).count() as f64 / 5000.0;
        let mean_ctr = samples.iter().map(|s| s.true_ctr as f64).sum::<f64>() / 5000.0;
        assert!(
            (click_rate - mean_ctr).abs() < 0.03,
            "click rate {click_rate} vs mean ctr {mean_ctr}"
        );
    }

    #[test]
    fn click_samples_have_spec_shape() {
        let spec = DatasetSpec::criteo_kaggle();
        let mut gen = ClickGenerator::new(&spec, 100, 3);
        let s = gen.next_sample();
        assert_eq!(s.dense.len(), 13);
        assert_eq!(s.sparse.len(), 26);
        assert!(s.sparse.iter().all(|&id| id < 100));
        assert!((0.0..=1.0).contains(&(s.true_ctr as f64)));
    }

    #[test]
    fn click_ctr_varies_across_pairs() {
        // The latent model must produce heterogeneous CTRs or nothing is
        // learnable.
        let spec = DatasetSpec::criteo_kaggle();
        let mut gen = ClickGenerator::new(&spec, 1000, 11);
        let samples = gen.take_samples(500);
        let min = samples.iter().map(|s| s.true_ctr).fold(1.0f32, f32::min);
        let max = samples.iter().map(|s| s.true_ctr).fold(0.0f32, f32::max);
        assert!(max - min > 0.2, "CTR spread too small: [{min}, {max}]");
    }

    #[test]
    fn embedding_trace_is_skewed() {
        let mut trace = EmbeddingTrace::new(1_000_000, 0.9, 13);
        let accesses = trace.take_accesses(10_000);
        let hot = accesses.iter().filter(|&&id| id <= 10_000).count();
        assert!(
            hot as f64 / 10_000.0 > 0.4,
            "top-1% share {}",
            hot as f64 / 10_000.0
        );
    }

    #[test]
    fn embedding_trace_for_spec_uses_row_count() {
        let spec = DatasetSpec::movielens_1m();
        let mut trace = EmbeddingTrace::for_spec(&spec, 1);
        for _ in 0..100 {
            assert!(trace.next_access() <= spec.rows_per_table);
        }
    }
}
