//! Offline shim for the `criterion` benchmarking API this workspace
//! uses.
//!
//! Measures real wall-clock time: each benchmark is warmed up briefly,
//! then timed over enough iterations to fill a short measurement window,
//! and the mean nanoseconds per iteration is printed as
//! `bench_name: <t> ns/iter`. Set `CRITERION_SHIM_JSON=<path>` to also
//! append one JSON line per benchmark (used to record `BENCH_seed.json`
//! baselines).

use std::hint;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported with criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Result of timing one benchmark.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Fully qualified benchmark name (`group/function`).
    pub name: String,
    /// Mean nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations measured.
    pub iters: u64,
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    measurement: Option<Measurement>,
    name: String,
}

impl Bencher {
    /// Times `f`, recording mean wall-clock per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run for ~20 ms to stabilize caches and estimate cost.
        let warmup = Duration::from_millis(20);
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < warmup {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Measurement: a ~200 ms window, at least 10 iterations.
        let target = Duration::from_millis(200);
        let iters = ((target.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(10, 10_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        self.measurement = Some(Measurement {
            name: self.name.clone(),
            ns_per_iter: elapsed.as_nanos() as f64 / iters as f64,
            iters,
        });
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    results: Vec<Measurement>,
}

impl Criterion {
    /// Creates a driver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, mut f: F) {
        let name = name.into();
        let mut bencher = Bencher {
            measurement: None,
            name: name.clone(),
        };
        f(&mut bencher);
        if let Some(m) = bencher.measurement {
            report(&m);
            self.results.push(m);
        }
    }

    /// Opens a named group; benchmarks within it are prefixed
    /// `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.into(),
        }
    }

    /// All measurements recorded so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        let full = format!("{}/{}", self.prefix, name.into());
        self.criterion.bench_function(full, f);
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

fn report(m: &Measurement) {
    println!(
        "{}: {:.1} ns/iter ({} iters)",
        m.name, m.ns_per_iter, m.iters
    );
    if let Ok(path) = std::env::var("CRITERION_SHIM_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                f,
                "{{\"name\":\"{}\",\"ns_per_iter\":{:.1},\"iters\":{}}}",
                m.name.replace('"', "'"),
                m.ns_per_iter,
                m.iters
            );
        }
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
