//! Offline shim for `serde`: the derive macros expand to nothing and the
//! traits are empty markers. See `shims/README.md` for the rationale.

pub use serde_stub_derive::{Deserialize, Serialize};
