//! Offline shim for the `rand` 0.8 API surface this workspace uses.
//!
//! Implements `RngCore`, `Rng` (`gen`, `gen_range`), `SeedableRng`
//! (`seed_from_u64`, `from_seed`), and `rngs::StdRng`. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic and
//! statistically solid for Monte-Carlo use, though its stream differs
//! from crates.io `rand`'s ChaCha12-based `StdRng`.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform random source.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator by expanding a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from `[0, 1)` (or the type's natural
/// "standard" distribution) — the shim's stand-in for `Standard:
/// Distribution<T>`.
pub trait StandardSample {
    /// Draws one standard sample.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                // Multiply-shift bounded sampling; the bias for spans far
                // below 2^64 is negligible for simulation use.
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u128 + 1;
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                start + hi as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (self.start as i128 + hi as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (start as i128 + hi as i128) as $t
            }
        }
    )*};
}

signed_sample_range!(i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let u = <$t as StandardSample>::standard(rng);
                start + u * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a standard sample (`[0, 1)` for floats, fair coin for
    /// `bool`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256++ (Blackman/Vigna),
    /// seeded via SplitMix64. Deterministic per seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s.iter().all(|&w| w == 0) {
                // The all-zero state is a fixed point; nudge it.
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<f64>(), b.gen::<f64>());
    }

    #[test]
    fn unit_floats_are_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_is_bounded_and_covers() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let k: usize = rng.gen_range(0..10);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
        }
        for _ in 0..1_000 {
            let x: f32 = rng.gen_range(-0.5f32..=0.5);
            assert!((-0.5..=0.5).contains(&x));
        }
    }

    #[test]
    fn works_through_unsized_generic() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0.0..1.0).contains(&draw(&mut rng)));
    }
}
