//! Offline shim for the `proptest` API surface this workspace uses.
//!
//! Each `proptest!` test runs its body `ProptestConfig::cases` times
//! with inputs sampled from the given strategies. Sampling is seeded
//! deterministically from the test name, so failures reproduce; there is
//! **no shrinking** — a failing case is reported as-is by the panic
//! message of the `prop_assert!` that fired.

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::{Rng, SampleRange};
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// The RNG strategies sample from (deterministic per test).
    pub type TestRng = StdRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy yielding a constant value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    impl<T> Strategy for Range<T>
    where
        Range<T>: SampleRange<T> + Clone,
    {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        RangeInclusive<T>: SampleRange<T> + Clone,
    {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    /// Uniform choice between same-typed strategies (the shape
    /// `prop_oneof!` builds).
    pub struct Union<S>(Vec<S>);

    impl<S: Strategy> Union<S> {
        /// Creates a union over `arms`.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<S>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self(arms)
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> S::Value {
            let idx = rng.gen_range(0..self.0.len());
            self.0[idx].generate(rng)
        }
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen()
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Element-count specification for [`vec()`]: an exact size or a
    /// half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Per-test configuration and seeding.

    /// How many sampled cases each `proptest!` test runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 32 }
        }
    }

    /// Deterministic seed derived from a test name (FNV-1a).
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// The RNG a named test samples from.
    pub fn rng_for(name: &str) -> crate::strategy::TestRng {
        <crate::strategy::TestRng as rand::SeedableRng>::seed_from_u64(seed_for(name))
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` runs
/// its body for every sampled case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::rng_for(stringify!($name));
            let mut __ran: u32 = 0;
            let mut __attempts: u32 = 0;
            while __ran < __config.cases && __attempts < __config.cases * 20 {
                __attempts += 1;
                $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng); )*
                // The closure lets prop_assume! skip a case via `return`.
                #[allow(clippy::redundant_closure_call)]
                let __kept = (move || -> bool { $body true })();
                if __kept {
                    __ran += 1;
                }
            }
            // Mirror real proptest's "too many global rejects" failure:
            // a test whose prop_assume! rejected every sampled input
            // must not silently pass without running its body once.
            assert!(
                __ran > 0,
                "proptest shim: prop_assume! rejected all {} sampled cases of `{}` — \
                 the property body never ran",
                __attempts,
                stringify!($name),
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two values are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return false;
        }
    };
}

/// Uniform choice among strategies of the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($arm),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 1u64..100, y in -1.0f64..1.0) {
            prop_assert!((1..100).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn oneof_and_map_compose(
            k in prop_oneof![Just(1u8), Just(2), Just(3)],
            v in crate::collection::vec(0u32..10, 2..5),
        ) {
            prop_assert!((1..=3).contains(&k));
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn assume_skips_cases(n in 0u32..6) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        #[test]
        #[should_panic(expected = "rejected all")]
        fn unsatisfiable_assume_fails_loudly(n in 0u32..6) {
            prop_assume!(n > 100);
            prop_assert!(false, "body must never run");
        }
    }

    #[test]
    fn prop_map_transforms() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let s = (0u32..5).prop_map(|n| n * 10);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let v = s.generate(&mut rng);
            assert!(v % 10 == 0 && v < 50);
        }
    }
}
