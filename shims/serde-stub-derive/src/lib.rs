//! No-op derive macros backing the offline `serde` shim.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and
//! result types for forward compatibility, but never serializes in this
//! environment, so the derives expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
