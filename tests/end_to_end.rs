//! End-to-end integration tests spanning every crate: quality and
//! performance of full pipelines on all three hardware targets.

use recpipe::accel::Partition;
use recpipe::core::{
    Mapping, PerformanceEvaluator, PipelineConfig, QualityEvaluator, Scheduler, SchedulerSettings,
    StageConfig,
};
use recpipe::data::DatasetKind;
use recpipe::models::ModelKind;

fn single_stage(items: u64) -> PipelineConfig {
    PipelineConfig::single_stage(ModelKind::RmLarge, items, 64).unwrap()
}

fn two_stage(mid: u64) -> PipelineConfig {
    PipelineConfig::builder()
        .stage(StageConfig::new(ModelKind::RmSmall, 4096, mid))
        .stage(StageConfig::new(ModelKind::RmLarge, mid, 64))
        .build()
        .unwrap()
}

#[test]
fn paper_headline_multi_stage_is_iso_quality_and_much_faster_on_cpu() {
    // The paper's central claim (Figure 1, Section 5.1): decomposing the
    // monolith maintains quality while cutting tail latency ~4x on CPUs.
    let quality = QualityEvaluator::criteo_like(64).queries(200);
    let q_single = quality.evaluate(&single_stage(4096)).ndcg;
    let q_multi = quality.evaluate(&two_stage(256)).ndcg;
    assert!(
        (q_single - q_multi).abs() < 0.01,
        "iso-quality violated: {q_single} vs {q_multi}"
    );

    let perf = PerformanceEvaluator::table2_defaults().sim_queries(2_000);
    let mut s = perf.evaluate(&single_stage(4096), &Mapping::cpu_only(1), 500.0);
    let mut m = perf.evaluate(&two_stage(256), &Mapping::cpu_only(2), 500.0);
    let speedup = s.p99_seconds() / m.p99_seconds();
    assert!(
        (2.5..8.0).contains(&speedup),
        "CPU multi-stage speedup {speedup}"
    );
}

#[test]
fn accelerator_beats_both_commodity_platforms_at_iso_quality() {
    let perf = PerformanceEvaluator::table2_defaults().sim_queries(2_000);
    let pipeline = two_stage(512);
    let qps = 200.0;

    let mut cpu = perf.evaluate(&pipeline, &Mapping::cpu_only(2), qps);
    let mut gpu_front = perf.evaluate(&pipeline, &Mapping::gpu_frontend(2), qps);
    let mut accel = perf.evaluate_accel(&pipeline, Partition::symmetric(8, 2), qps);

    assert!(accel.p99_seconds() < gpu_front.p99_seconds());
    assert!(accel.p99_seconds() < cpu.p99_seconds());
}

#[test]
fn figure12_shape_rpaccel_vs_baseline_latency_and_throughput() {
    let perf = PerformanceEvaluator::table2_defaults().sim_queries(2_000);
    let multi = two_stage(512);
    let single = single_stage(4096);

    // Latency at moderate load: ~3x (paper) — accept 1.8-8x.
    let mut rp = perf.evaluate_accel(&multi, Partition::symmetric(8, 2), 200.0);
    let mut base = perf.evaluate_baseline_accel(&single, 200.0);
    let latency_gain = base.p99_seconds() / rp.p99_seconds();
    assert!(
        (1.8..8.0).contains(&latency_gain),
        "latency gain {latency_gain}"
    );

    // Throughput: find the max stable load of each (paper: ~6x).
    let max_stable = |eval: &dyn Fn(f64) -> bool| -> f64 {
        let mut qps = 100.0;
        while qps < 20_000.0 && eval(qps) {
            qps *= 1.5;
        }
        qps
    };
    let rp_cap = max_stable(&|q| {
        !perf
            .evaluate_accel(&multi, Partition::symmetric(8, 8), q)
            .saturated
    });
    let base_cap = max_stable(&|q| !perf.evaluate_baseline_accel(&single, q).saturated);
    assert!(
        rp_cap / base_cap >= 2.0,
        "throughput gain {} (rp {rp_cap} vs base {base_cap})",
        rp_cap / base_cap
    );
}

#[test]
fn scheduler_end_to_end_finds_multi_stage_winner() {
    let scheduler = Scheduler::new(SchedulerSettings::quick());
    let points = scheduler.explore_cpu(400.0, 3);
    assert!(!points.is_empty());

    let max_q = points
        .iter()
        .filter(|p| !p.saturated)
        .map(|p| p.ndcg)
        .fold(0.0, f64::max);
    let best =
        Scheduler::best_latency_at_quality(&points, max_q - 0.005).expect("stable design exists");
    assert!(best.pipeline.num_stages() >= 2, "picked {}", best.pipeline);
}

#[test]
fn quality_and_performance_are_reproducible_across_runs() {
    let pipeline = two_stage(256);
    let q1 = QualityEvaluator::criteo_like(64)
        .queries(100)
        .evaluate(&pipeline);
    let q2 = QualityEvaluator::criteo_like(64)
        .queries(100)
        .evaluate(&pipeline);
    assert_eq!(q1, q2);

    let perf = PerformanceEvaluator::table2_defaults().sim_queries(1_000);
    let mut r1 = perf.evaluate(&pipeline, &Mapping::cpu_only(2), 300.0);
    let mut r2 = perf.evaluate(&pipeline, &Mapping::cpu_only(2), 300.0);
    assert_eq!(r1.p99_seconds(), r2.p99_seconds());
}

#[test]
fn movielens_pipelines_run_end_to_end() {
    for dataset in [DatasetKind::MovieLens1M, DatasetKind::MovieLens20M] {
        let items = if dataset == DatasetKind::MovieLens1M {
            1024
        } else {
            4096
        };
        let pipeline = PipelineConfig::builder()
            .dataset(dataset)
            .stage(StageConfig::new(ModelKind::RmSmall, items, items / 4))
            .stage(StageConfig::new(ModelKind::RmLarge, items / 4, 64))
            .build()
            .unwrap();

        let q = QualityEvaluator::for_dataset(dataset, 64)
            .queries(100)
            .evaluate(&pipeline);
        assert!(q.ndcg > 0.5, "{dataset}: NDCG {}", q.ndcg);

        let perf = PerformanceEvaluator::table2_defaults().sim_queries(1_000);
        let mut sim = perf.evaluate(&pipeline, &Mapping::cpu_only(2), 100.0);
        assert!(!sim.saturated);
        assert!(sim.p99_seconds() > 0.0);
    }
}
