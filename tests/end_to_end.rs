//! End-to-end integration tests spanning every crate: the `Engine` API
//! driving quality and performance of full pipelines on all three
//! hardware targets.

use recpipe::accel::Partition;
use recpipe::core::{Engine, PipelineConfig, Placement, Scheduler, SchedulerSettings, StageConfig};
use recpipe::data::DatasetKind;
use recpipe::models::ModelKind;

fn single_stage(items: u64) -> PipelineConfig {
    PipelineConfig::single_stage(ModelKind::RmLarge, items, 64).unwrap()
}

fn two_stage(mid: u64) -> PipelineConfig {
    PipelineConfig::builder()
        .stage(StageConfig::new(ModelKind::RmSmall, 4096, mid))
        .stage(StageConfig::new(ModelKind::RmLarge, mid, 64))
        .build()
        .unwrap()
}

fn cpu_engine(pipeline: PipelineConfig, qps: f64) -> Engine {
    let stages = pipeline.num_stages();
    Engine::commodity(pipeline)
        .placement(Placement::cpu_only(stages))
        .load(qps)
        .quality_queries(200)
        .sim_queries(2_000)
        .build()
        .expect("valid CPU engine")
}

#[test]
fn paper_headline_multi_stage_is_iso_quality_and_much_faster_on_cpu() {
    // The paper's central claim (Figure 1, Section 5.1): decomposing the
    // monolith maintains quality while cutting tail latency ~4x on CPUs.
    let single = cpu_engine(single_stage(4096), 500.0).evaluate();
    let multi = cpu_engine(two_stage(256), 500.0).evaluate();

    assert!(
        (single.ndcg - multi.ndcg).abs() < 0.01,
        "iso-quality violated: {} vs {}",
        single.ndcg,
        multi.ndcg
    );
    let speedup = single.p99_s / multi.p99_s;
    assert!(
        (2.5..8.0).contains(&speedup),
        "CPU multi-stage speedup {speedup}"
    );
}

#[test]
fn accelerator_beats_both_commodity_platforms_at_iso_quality() {
    let pipeline = two_stage(512);
    let qps = 200.0;

    let cpu = cpu_engine(pipeline.clone(), qps).evaluate();
    let gpu_front = Engine::commodity(pipeline.clone())
        .placement(Placement::gpu_frontend(2, 1))
        .load(qps)
        .quality_queries(100)
        .sim_queries(2_000)
        .build()
        .unwrap()
        .evaluate();
    let accel = Engine::rpaccel(pipeline, Partition::symmetric(8, 2))
        .load(qps)
        .quality_queries(100)
        .sim_queries(2_000)
        .build()
        .unwrap()
        .evaluate();

    assert!(accel.p99_s < gpu_front.p99_s);
    assert!(accel.p99_s < cpu.p99_s);
}

#[test]
fn figure12_shape_rpaccel_vs_baseline_latency_and_throughput() {
    let multi = two_stage(512);
    let single = single_stage(4096);

    let rp = Engine::rpaccel(multi.clone(), Partition::symmetric(8, 2))
        .quality_queries(50)
        .sim_queries(2_000)
        .build()
        .unwrap();
    let base = Engine::baseline_accel(single.clone())
        .quality_queries(50)
        .sim_queries(2_000)
        .build()
        .unwrap();

    // Latency at moderate load: ~3x (paper) — accept 1.8-8x.
    let latency_gain = base.evaluate_at(200.0).p99_s / rp.evaluate_at(200.0).p99_s;
    assert!(
        (1.8..8.0).contains(&latency_gain),
        "latency gain {latency_gain}"
    );

    // Throughput: find the max stable load of each (paper: ~6x).
    let rp8 = Engine::rpaccel(multi, Partition::symmetric(8, 8))
        .quality_queries(50)
        .sim_queries(2_000)
        .build()
        .unwrap();
    let max_stable = |engine: &Engine| -> f64 {
        let mut qps = 100.0;
        while qps < 20_000.0 && !engine.evaluate_at(qps).saturated {
            qps *= 1.5;
        }
        qps
    };
    let rp_cap = max_stable(&rp8);
    let base_cap = max_stable(&base);
    assert!(
        rp_cap / base_cap >= 2.0,
        "throughput gain {} (rp {rp_cap} vs base {base_cap})",
        rp_cap / base_cap
    );
}

#[test]
fn engine_sweep_end_to_end_finds_multi_stage_winner() {
    let engine = Engine::commodity(two_stage(512))
        .placement(Placement::cpu_only(2))
        .load(400.0)
        .build()
        .unwrap();
    let frontier = engine.sweep(&SchedulerSettings::quick());
    assert!(!frontier.is_empty());

    let max_q = frontier.iter().map(|p| p.ndcg).fold(0.0, f64::max);
    let best = Scheduler::best_latency_at_quality(frontier.points(), max_q - 0.005)
        .expect("stable design exists");
    assert!(best.pipeline.num_stages() >= 2, "picked {}", best.pipeline);
}

#[test]
fn quality_and_performance_are_reproducible_across_runs() {
    let build = || cpu_engine(two_stage(256), 300.0);
    let a = build().evaluate();
    let b = build().evaluate();
    assert_eq!(a.ndcg, b.ndcg);
    assert_eq!(a.p99_s, b.p99_s);
    assert_eq!(a, b);
}

#[test]
fn movielens_pipelines_run_end_to_end() {
    for dataset in [DatasetKind::MovieLens1M, DatasetKind::MovieLens20M] {
        let items = if dataset == DatasetKind::MovieLens1M {
            1024
        } else {
            4096
        };
        let pipeline = PipelineConfig::builder()
            .dataset(dataset)
            .stage(StageConfig::new(ModelKind::RmSmall, items, items / 4))
            .stage(StageConfig::new(ModelKind::RmLarge, items / 4, 64))
            .build()
            .unwrap();

        let outcome = Engine::commodity(pipeline)
            .placement(Placement::cpu_only(2))
            .load(100.0)
            .quality_queries(100)
            .sim_queries(1_000)
            .build()
            .unwrap()
            .evaluate();
        assert!(outcome.ndcg > 0.5, "{dataset}: NDCG {}", outcome.ndcg);
        assert!(!outcome.saturated);
        assert!(outcome.p99_s > 0.0);
    }
}

#[test]
fn serving_core_matrix_end_to_end() {
    // The batching-aware serving core across the full stack: commodity
    // hardware with batch curves, bursty arrivals, and every policy.
    use recpipe::data::{ArrivalProcess, MmppArrivals, PoissonArrivals};
    use recpipe::qsim::{BatchWindow, EarliestDeadlineFirst, Fifo, SchedulingPolicy};

    let engine = Engine::commodity(two_stage(256))
        .placement(Placement::gpu_frontend(2, 2))
        .batching(true)
        .quality_queries(20)
        .build()
        .unwrap();

    let arrivals: Vec<Box<dyn ArrivalProcess>> = vec![
        Box::new(PoissonArrivals::new(300.0)),
        Box::new(MmppArrivals::new(75.0, 1_200.0, 0.8, 0.2)),
    ];
    let policies: Vec<Box<dyn SchedulingPolicy>> = vec![
        Box::new(Fifo),
        Box::new(BatchWindow::new(0.002)),
        Box::new(EarliestDeadlineFirst::new(0.025)),
    ];
    for arrival in &arrivals {
        for policy in &policies {
            let out = engine.serve_with(arrival.as_ref(), policy.as_ref(), 3_000);
            assert_eq!(out.completed, 3_000, "{}/{}", arrival.name(), policy.name());
            assert!(out.mean_batch >= 1.0);
            for u in &out.utilization {
                assert!((0.0..=1.0).contains(u));
            }
        }
    }
}

#[test]
fn cluster_of_replicas_end_to_end() {
    // The cluster redesign across the full stack: a replicated
    // commodity fleet absorbs load that saturates the single-pool
    // engine, and load-aware routing beats oblivious round-robin at
    // high utilization.
    use recpipe::data::PoissonArrivals;
    use recpipe::qsim::{Fifo, JoinShortestQueue, RoundRobin};

    let single = Engine::commodity(two_stage(256))
        .placement(Placement::gpu_only(2))
        .quality_queries(20)
        .build()
        .unwrap();
    let overload = single.max_qps() * 2.0;
    assert!(single.evaluate_at(overload).saturated);

    let fleet = Engine::commodity(two_stage(256))
        .placement(Placement::gpu_only(2))
        .replicas(1, 4)
        .quality_queries(20)
        .build()
        .unwrap();
    assert_eq!(fleet.cluster().replicas(), &[1, 4]);
    let arrivals = PoissonArrivals::new(overload);
    let rr = fleet.serve_routed(&arrivals, &Fifo, &RoundRobin, 6_000);
    let jsq = fleet.serve_routed(&arrivals, &Fifo, &JoinShortestQueue, 6_000);
    assert!(!rr.saturated && !jsq.saturated);
    assert_eq!(rr.completed, 6_000);
    assert_eq!(jsq.completed, 6_000);
    // Four GPU replicas are visible in the per-replica breakdown.
    assert_eq!(rr.replica_utilization[1].len(), 4);
}

#[test]
fn heterogeneous_fleet_end_to_end() {
    // A two-generation commodity fleet across the full stack: the
    // engine builds a mixed-speed GPU fleet, reports profile-weighted
    // capacity and cost, and serves with speed-aware routing.
    use recpipe::core::FleetSpec;
    use recpipe::data::PoissonArrivals;
    use recpipe::qsim::{ExpectedWait, Fifo, JoinShortestQueue};

    let uniform = Engine::commodity(two_stage(256))
        .placement(Placement::gpu_only(2))
        .quality_queries(20)
        .build()
        .unwrap();
    let mixed = Engine::commodity(two_stage(256))
        .placement(Placement::gpu_only(2))
        .fleet(1, FleetSpec::mixed(&[(2, 1.0), (2, 0.5)]))
        .quality_queries(20)
        .build()
        .unwrap();
    // 2 current + 2 half-speed GPUs drain like 3 current ones, but
    // cost 3.0 in profile-weighted terms while counting 4 machines.
    assert!((mixed.max_qps() - 3.0 * uniform.max_qps()).abs() < 1e-6);
    assert_eq!(mixed.replica_cost(), 4);
    assert!((mixed.fleet_cost() - 3.0).abs() < 1e-12);
    assert_eq!(
        mixed.cluster().fleets()[1],
        FleetSpec::new(&[1.0, 1.0, 0.5, 0.5])
    );
    let outcome = mixed.evaluate_at(100.0);
    assert!(outcome.mapping.contains("gpu*2@1.0+2@0.5"));
    assert!((outcome.fleet_cost - 3.0).abs() < 1e-12);

    // An offered load that saturates the uniform single pool is served
    // by the mixed fleet; both load-aware routers handle it.
    let overload = uniform.max_qps() * 1.8;
    assert!(uniform.evaluate_at(overload).saturated);
    let arrivals = PoissonArrivals::new(overload);
    for router in [
        &JoinShortestQueue as &dyn recpipe::qsim::Router,
        &ExpectedWait,
    ] {
        let out = mixed.serve_routed(&arrivals, &Fifo, router, 6_000);
        assert_eq!(out.completed, 6_000);
        assert!(!out.saturated);
        assert_eq!(out.replica_utilization[1].len(), 4);
    }
}

#[test]
fn trace_replay_end_to_end_reproduces_recorded_poisson_traffic() {
    // An open-loop run is fully determined by its arrival schedule:
    // recording a Poisson schedule and replaying it through
    // TraceArrivals must reproduce the simulation bit-for-bit. The
    // seed is pinned through the builder because `serve_with` passes
    // the engine seed to the arrival process — the recording must use
    // the same one.
    use recpipe::data::{ArrivalProcess, PoissonArrivals, TraceArrivals};
    use recpipe::qsim::Fifo;

    let seed = 42;
    let engine = Engine::commodity(two_stage(256))
        .placement(Placement::cpu_only(2))
        .quality_queries(20)
        .seed(seed)
        .build()
        .unwrap();
    let poisson = PoissonArrivals::new(300.0);
    let recorded = TraceArrivals::new(poisson.times(1_500, seed));
    let live = engine.serve_with(&poisson, &Fifo, 1_500);
    let replayed = engine.serve_with(&recorded, &Fifo, 1_500);
    assert_eq!(live.latency, replayed.latency);
    assert_eq!(live.qps, replayed.qps);
    assert_eq!(live.completed, replayed.completed);
}

#[test]
fn closed_loop_serving_end_to_end_obeys_littles_law() {
    use recpipe::data::ClosedLoopArrivals;
    use recpipe::qsim::Fifo;

    let engine = cpu_engine(two_stage(256), 300.0);
    let floor = engine.service_floor();
    let think = 0.05;
    let clients = 16;
    let out = engine.serve_with(&ClosedLoopArrivals::new(clients, think), &Fifo, 2_000);
    assert_eq!(out.completed, 2_000);
    // X = N / (R + Z); response time is at least the service floor, so
    // throughput is bounded above — and with 64 idle cores the floor is
    // nearly achieved.
    let upper = clients as f64 / (floor + think);
    assert!(
        out.qps <= upper * 1.02 && out.qps > upper * 0.8,
        "qps {} vs Little bound {upper}",
        out.qps
    );
}
