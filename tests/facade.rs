//! Smoke tests of the `recpipe` facade: every subsystem is reachable
//! through the re-exports and composes.

use recpipe::accel::{Partition, RpAccel, RpAccelConfig, SystolicArray, TopKFilter};
use recpipe::data::{DatasetSpec, PoissonProcess, QueryGenerator, Zipf};
use recpipe::hwsim::{CpuModel, GpuModel, LruCache, StageWork, StaticCacheModel};
use recpipe::metrics::{ndcg_at_k, LatencyStats};
use recpipe::models::{ModelConfig, ModelKind};
use recpipe::qsim::{PipelineSpec, ResourceSpec, StageSpec};
use recpipe::tensor::Matrix;

#[test]
fn tensor_through_facade() {
    let a = Matrix::identity(4);
    assert_eq!(a.matmul(&a).unwrap(), a);
}

#[test]
fn metrics_through_facade() {
    assert!((ndcg_at_k(&[2.0, 1.0], &[2.0, 1.0], 2) - 1.0).abs() < 1e-12);
    let mut stats = LatencyStats::new();
    stats.record_secs(0.010);
    assert!(stats.p99().as_secs_f64() > 0.009);
}

#[test]
fn data_through_facade() {
    let spec = DatasetSpec::criteo_kaggle();
    let mut queries = QueryGenerator::new(&spec, 1);
    assert_eq!(queries.next_query().num_candidates(), 4096);
    assert!(PoissonProcess::new(100.0, 2).take(10).count() == 10);
    assert!(Zipf::new(1000, 0.9).cdf(1000) == 1.0);
}

#[test]
fn arrival_processes_through_facade() {
    use recpipe::data::{
        ArrivalProcess, ClosedLoopArrivals, DiurnalArrivals, MmppArrivals, PoissonArrivals,
    };
    let processes: Vec<Box<dyn ArrivalProcess>> = vec![
        Box::new(PoissonArrivals::new(200.0)),
        Box::new(MmppArrivals::new(50.0, 500.0, 0.5, 0.1)),
        Box::new(DiurnalArrivals::new(50.0, 350.0, 5.0)),
        Box::new(ClosedLoopArrivals::new(8, 0.02)),
    ];
    for p in &processes {
        assert!(p.mean_rate() > 0.0, "{}", p.name());
        assert_eq!(p.times(50, 1).len(), 50);
    }
}

#[test]
fn batched_serving_through_facade() {
    use recpipe::data::MmppArrivals;
    use recpipe::qsim::{BatchModel, BatchWindow};

    let spec = PipelineSpec::new(vec![ResourceSpec::new("gpu", 1)])
        .with_stage(StageSpec::new("rank", 0, 1, 0.004).with_batch(BatchModel::new(8, 0.2)))
        .unwrap();
    let out = spec.serve(
        &MmppArrivals::new(80.0, 600.0, 0.3, 0.1),
        &BatchWindow::new(0.002),
        1_000,
        3,
    );
    assert_eq!(out.completed, 1_000);
    assert!(out.mean_batch >= 1.0);
}

#[test]
fn cluster_routing_through_facade() {
    use recpipe::data::PoissonArrivals;
    use recpipe::qsim::{
        Fifo, JoinShortestQueue, PowerOfTwoChoices, ReplicaGroup, RoundRobin, Router,
    };

    let spec = PipelineSpec::new(vec![ReplicaGroup::replicated("worker", 2, 3)])
        .with_stage(StageSpec::new("rank", 0, 1, 0.004))
        .unwrap();
    assert_eq!(spec.resources()[0].total_units(), 6);
    let routers: Vec<Box<dyn Router>> = vec![
        Box::new(RoundRobin),
        Box::new(JoinShortestQueue),
        Box::new(PowerOfTwoChoices),
    ];
    for router in &routers {
        let out = spec.serve_routed(&PoissonArrivals::new(400.0), &Fifo, router.as_ref(), 800, 1);
        assert_eq!(out.completed, 800, "{}", router.name());
        assert_eq!(out.replica_utilization[0].len(), 3);
    }
}

#[test]
fn heterogeneous_fleet_through_facade() {
    use recpipe::core::FleetSpec;
    use recpipe::data::PoissonArrivals;
    use recpipe::qsim::{
        ExpectedWait, Fifo, ReplicaGroup, ReplicaProfile, Router, RoutingCtx, Sticky,
    };

    // qsim-level: a two-generation group with speed-weighted capacity
    // and a serialized form that round-trips.
    let group = ReplicaGroup::heterogeneous(
        "worker",
        vec![ReplicaProfile::baseline(2), ReplicaProfile::new(2, 0.5)],
    );
    assert_eq!(group.total_units(), 4);
    assert!((group.weighted_units() - 3.0).abs() < 1e-12);
    assert_eq!(ReplicaGroup::from_json(&group.to_json()).unwrap(), group);

    let spec = PipelineSpec::new(vec![group])
        .with_stage(StageSpec::new("rank", 0, 1, 0.004))
        .unwrap();
    let routers: Vec<Box<dyn Router>> = vec![Box::new(ExpectedWait), Box::new(Sticky::new())];
    for router in &routers {
        let out = spec.serve_routed(
            &PoissonArrivals::new(0.7 * spec.max_qps()),
            &Fifo,
            router.as_ref(),
            800,
            1,
        );
        assert_eq!(out.completed, 800, "{}", router.name());
    }
    assert_eq!(RoutingCtx::root(0, 0, 0).prior_on_group(), None);

    // core-level: fleet specs annotate and price by generation.
    let fleet = FleetSpec::mixed(&[(1, 1.0), (1, 0.5)]);
    assert_eq!(fleet.annotation(), "*1@1.0+1@0.5");
    assert!((fleet.cost() - 1.5).abs() < 1e-12);
}

#[test]
fn trace_arrivals_through_facade() {
    use recpipe::data::{ArrivalProcess, TraceArrivals};
    let trace = TraceArrivals::new(vec![0.0, 0.5, 1.0, 1.5]).with_rate(8.0);
    assert!((trace.mean_rate() - 8.0).abs() < 1e-9);
    assert_eq!(trace.times(8, 0).len(), 8);
}

#[test]
fn models_and_hwsim_through_facade() {
    let cfg = ModelConfig::for_kind(ModelKind::RmMed, recpipe::data::DatasetKind::CriteoKaggle);
    let work = StageWork::new(cfg, 1024);
    let cpu = CpuModel::cascade_lake();
    let gpu = GpuModel::t4();
    assert!(cpu.stage_latency(&work, 1) > 0.0);
    assert!(recpipe::hwsim::Device::stage_latency(&gpu, &work) > 0.0);

    let mut lru = LruCache::new(4);
    lru.access(1);
    assert!(lru.access(1));
    let sc = StaticCacheModel::new(Zipf::new(10_000, 0.9), 100);
    assert!(sc.hit_rate() > 0.0);
}

#[test]
fn accel_through_facade() {
    let accel = RpAccel::new(RpAccelConfig::paper_default(Partition::symmetric(8, 8)));
    let stages = vec![StageWork::new(
        ModelConfig::for_kind(ModelKind::RmLarge, recpipe::data::DatasetKind::CriteoKaggle),
        512,
    )];
    assert!(accel.query_latency(&stages) > 0.0);
    assert!(SystolicArray::paper_default().macs() == 128 * 128);
    let filter = TopKFilter::paper_default(64);
    assert_eq!(filter.num_bins(), 16);
}

#[test]
fn engine_through_facade() {
    use recpipe::core::{Engine, PipelineConfig, Placement};

    let pipeline = PipelineConfig::single_stage(ModelKind::RmMed, 4096, 64).unwrap();
    let engine = Engine::commodity(pipeline)
        .placement(Placement::cpu_only(1))
        .load(100.0)
        .quality_queries(50)
        .sim_queries(500)
        .build()
        .unwrap();
    let outcome = engine.evaluate();
    assert!(outcome.ndcg > 0.5);
    assert!(!outcome.saturated);
}

#[test]
fn qsim_through_facade() {
    let spec = PipelineSpec::new(vec![ResourceSpec::new("cpu", 4)])
        .with_stage(StageSpec::new("s", 0, 1, 0.001))
        .unwrap();
    let out = spec.simulate(100.0, 500, 3);
    assert_eq!(out.completed, 500);
}
