//! Brown-out under an overload ramp: quality degradation vs load
//! shedding on one shared fleet.
//!
//! When offered load passes a fleet's capacity, something has to give.
//! The classic answer is *shedding* — reject queries until the queue
//! drains — which protects the tail by serving fewer users. Multi-path
//! serving adds a gentler lever: keep answering every query, but walk
//! overflow traffic down a ladder of cheaper model paths (RMlarge
//! funnel → RMmed funnel → RMsmall filter) that trade a little NDCG
//! for a lot of throughput. This example rides a diurnal ramp whose
//! peak is 3x the primary path's capacity and races four admission
//! policies over the *same* three-path ladder:
//!
//! * **always-primary** — no protection: the backlog grows without
//!   bound through the peak and the tail explodes;
//! * **load-adaptive (shed-only)** — the classic brown-out: above the
//!   pressure knee, arrivals are rejected outright;
//! * **load-adaptive (degrade)** — the same knee, but overload walks
//!   down the path ladder first and sheds only past its bottom;
//! * **deadline-aware** — per-query slack routing: the best path whose
//!   estimated latency still fits a 50 ms deadline.
//!
//! The scoreboard is *quality-weighted goodput* (completions per
//! second, each weighted by its path's quality score): shedding trades
//! completions for quality-per-completion, degradation keeps the
//! completions and pays a small quality discount — and wins.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example brownout_serving
//! ```

use recpipe::core::{AdmissionSweep, Scheduler, Table};
use recpipe::data::DiurnalArrivals;
use recpipe::qsim::{Fifo, JoinShortestQueue, LifecycleConfig, PathSet, ReplicaGroup, StageSpec};

/// Queries in the compressed day.
const QUERIES: usize = 40_000;
/// The worker fleet's unit capacity (8 units -> 800 QPS on the primary
/// path).
const CAPACITY: usize = 8;

/// The day's traffic: trough 400 QPS at t = 0, peak 2400 QPS at
/// t = 20 — half the primary path's capacity at night, 3x at the peak.
fn ramp() -> DiurnalArrivals {
    DiurnalArrivals::new(400.0, 2400.0, 40.0)
}

/// The degradation ladder: three paths over one shared worker fleet, in
/// decreasing quality order. Per-path sustainable throughput at 8
/// units: full 800 QPS, mid 2000 QPS, lite ~5300 QPS — only the
/// lightest path can absorb the peak.
fn ladder() -> PathSet {
    PathSet::new(vec![ReplicaGroup::replicated("worker", CAPACITY, 1)])
        .with_path("full", 1.00, vec![StageSpec::new("rm-large", 0, 1, 0.010)])
        .expect("full path fits the fleet")
        .with_path("mid", 0.92, vec![StageSpec::new("rm-med", 0, 1, 0.004)])
        .expect("mid path fits the fleet")
        .with_path("lite", 0.80, vec![StageSpec::new("rm-small", 0, 1, 0.0015)])
        .expect("lite path fits the fleet")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let paths = ladder();
    let sweep = AdmissionSweep {
        include_always_primary: true,
        knees: vec![(1.5, 0.75)],
        include_shed_only: true,
        deadlines_s: vec![0.050],
    };
    let outcomes = sweep.run(
        &paths,
        &ramp(),
        &Fifo,
        &JoinShortestQueue,
        QUERIES,
        17,
        &LifecycleConfig::new(),
    )?;

    println!(
        "Overload ramp ({} queries, trough 400 / peak 2400 QPS) over a {}-unit fleet;\n\
         ladder: full (q=1.00, 800 QPS) -> mid (q=0.92, 2000 QPS) -> lite (q=0.80, 5333 QPS)\n",
        QUERIES, CAPACITY
    );
    let mut table = Table::new(vec![
        "policy",
        "qps",
        "p99 ms",
        "shed %",
        "mean quality",
        "quality goodput",
    ]);
    for o in &outcomes {
        table.row(vec![
            o.policy.clone(),
            format!("{:.0}", o.qps),
            format!("{:.1}", o.p99_s * 1e3),
            format!("{:.1}", o.shed_rate * 100.0),
            format!("{:.3}", o.mean_quality()),
            format!("{:.0}", o.quality_goodput),
        ]);
    }
    println!("{table}");

    let by_name = |needle: &str| {
        outcomes
            .iter()
            .find(|o| o.policy.contains(needle))
            .expect("sweep ran the policy")
    };
    let primary = by_name("always-primary");
    let shed_only = by_name("shed-only");
    let degrade = by_name("degrade");

    // (a) Every query is accounted for, whatever the policy decided.
    for o in &outcomes {
        let admitted: usize = o.paths.iter().map(|p| p.admitted).sum();
        let completed: usize = o.paths.iter().map(|p| p.completed).sum();
        assert_eq!(
            admitted + (o.shed_rate * QUERIES as f64).round() as usize,
            QUERIES,
            "{}: admitted + shed must cover every arrival",
            o.policy
        );
        assert_eq!(
            completed, admitted,
            "{}: no lifecycle losses here",
            o.policy
        );
    }
    println!("conservation: all four runs account for every one of the {QUERIES} queries");

    // (b) The headline: degrade-then-shed beats shed-only on
    // quality-weighted goodput. Shedding protects quality-per-answer at
    // 1.00 but throws the overflow away; the ladder answers it at
    // 0.92/0.80 and keeps the goodput.
    assert!(
        degrade.quality_goodput > shed_only.quality_goodput,
        "degrade goodput {:.0} must beat shed-only {:.0}",
        degrade.quality_goodput,
        shed_only.quality_goodput
    );
    println!(
        "degradation beats shedding on quality-weighted goodput: {:.0} vs {:.0} \
         (+{:.0}%)",
        degrade.quality_goodput,
        shed_only.quality_goodput,
        100.0 * (degrade.quality_goodput / shed_only.quality_goodput - 1.0)
    );

    // (c) ... while also losing far fewer queries ...
    assert!(
        degrade.shed_rate < shed_only.shed_rate,
        "degrade shed rate {:.3} must be below shed-only {:.3}",
        degrade.shed_rate,
        shed_only.shed_rate
    );

    // (d) ... and both brown-out policies keep the tail orders of
    // magnitude below the unprotected run, which queues without bound
    // through the peak.
    assert!(
        degrade.p99_s < primary.p99_s && shed_only.p99_s < primary.p99_s,
        "brown-out must protect the tail: degrade {:.3}s / shed-only {:.3}s vs \
         unprotected {:.3}s",
        degrade.p99_s,
        shed_only.p99_s,
        primary.p99_s
    );
    println!(
        "brown-out protects the tail: p99 {:.0} ms (degrade) / {:.0} ms (shed-only) \
         vs {:.0} ms unprotected",
        degrade.p99_s * 1e3,
        shed_only.p99_s * 1e3,
        primary.p99_s * 1e3
    );

    // (e) The three-objective front (maximize goodput, minimize p99,
    // minimize shed) keeps the degrading policies: whoever tops the
    // front's goodput axis got there by walking the ladder, not by
    // rejecting users.
    let front = Scheduler::pareto_brownout(outcomes.clone());
    println!(
        "\nbrown-out Pareto front ({} of {} policies):",
        front.len(),
        outcomes.len()
    );
    for o in front.iter() {
        println!(
            "  {:<32} goodput {:>5.0}  p99 {:>7.1} ms  shed {:>4.1}%",
            o.policy,
            o.quality_goodput,
            o.p99_s * 1e3,
            o.shed_rate * 100.0
        );
    }
    let best = front
        .iter()
        .max_by(|a, b| a.quality_goodput.partial_cmp(&b.quality_goodput).unwrap())
        .expect("front is never empty");
    assert!(
        !best.policy.contains("always-primary") && !best.policy.contains("shed-only"),
        "the front's goodput champion must be a degrading policy, got {}",
        best.policy
    );
    println!("\ngoodput champion on the front: {}", best.policy);
    Ok(())
}
