//! Explore RPAccel's micro-architectural design space: systolic-array
//! fission, asymmetric partitioning, sub-batch pipelining, and the
//! baseline comparison — the accelerator side of the paper (Sections
//! 6-7).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example accelerator_design
//! ```

use recpipe::accel::{
    AreaPowerModel, BaselineAccel, Partition, RpAccel, RpAccelConfig, SystolicArray,
};
use recpipe::core::Table;
use recpipe::data::DatasetKind;
use recpipe::hwsim::StageWork;
use recpipe::models::{ModelConfig, ModelKind};

fn criteo(kind: ModelKind, items: u64) -> StageWork {
    StageWork::new(
        ModelConfig::for_kind(kind, DatasetKind::CriteoKaggle),
        items,
    )
}

fn main() {
    let two_stage = vec![
        criteo(ModelKind::RmSmall, 4096),
        criteo(ModelKind::RmLarge, 512),
    ];

    // 1. Utilization: why fission pays (Figure 10a).
    println!("Systolic-array utilization (RMsmall@4096 vs RMlarge@512):\n");
    let mut util = Table::new(vec!["array", "RMsmall util", "RMlarge util"]);
    for dim in [16usize, 32, 64, 128] {
        let array = SystolicArray::new(dim, dim, 250_000_000);
        util.row(vec![
            format!("{dim}x{dim}"),
            format!(
                "{:.1}%",
                array.model_utilization(&two_stage[0].model, 4096) * 100.0
            ),
            format!(
                "{:.1}%",
                array.model_utilization(&two_stage[1].model, 512) * 100.0
            ),
        ]);
    }
    println!("{util}");

    // 2. Partition choice: latency/lanes tradeoff (Figure 12 bottom).
    println!("Partition sweep for the two-stage pipeline:\n");
    let mut part = Table::new(vec!["partition", "latency (us)", "lanes", "max QPS"]);
    for (f, b) in [(8usize, 2usize), (8, 8), (8, 16), (4, 4)] {
        let accel = RpAccel::new(RpAccelConfig::paper_default(Partition::symmetric(f, b)));
        let profile = accel.service_profile(&two_stage);
        part.row(vec![
            format!("RPAccel({f},{b})"),
            format!("{:.0}", accel.query_latency(&two_stage) * 1e6),
            profile.lanes.to_string(),
            format!("{:.0}", profile.max_qps()),
        ]);
    }
    println!("{part}");

    // 3. The Centaur-like baseline for contrast.
    let baseline = BaselineAccel::paper_default();
    let single = criteo(ModelKind::RmLarge, 4096);
    println!(
        "Baseline single-stage accelerator: {:.0} us/query (host filtering {:.0} us of it)",
        baseline.query_latency(&single, 64) * 1e6,
        baseline.host_filter_time(4096, 64) * 1e6,
    );
    let best = RpAccel::new(RpAccelConfig::paper_default(Partition::symmetric(8, 2)));
    println!(
        "RPAccel(8,2) two-stage:           {:.0} us/query ({:.1}x faster)\n",
        best.query_latency(&two_stage) * 1e6,
        baseline.query_latency(&single, 64) / best.query_latency(&two_stage),
    );

    // 4. What the extra hardware costs (Figure 11).
    let area = AreaPowerModel::paper_default();
    let (a, p) = area.overheads();
    println!(
        "RPAccel overhead vs baseline: +{:.1}% area, +{:.1}% power",
        a * 100.0,
        p * 100.0
    );
    let mut breakdown = Table::new(vec!["component", "area share", "power share"]);
    for ((name, area_share), (_, power_share)) in area
        .area_breakdown()
        .into_iter()
        .zip(area.power_breakdown())
    {
        breakdown.row(vec![
            name,
            format!("{:.1}%", area_share * 100.0),
            format!("{:.1}%", power_share * 100.0),
        ]);
    }
    println!("\n{breakdown}");
}
