//! Project RPAccel onto future, TB-class recommendation models whose
//! embedding tables spill to SSD — the paper's Figure 13 study.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example future_scaling
//! ```

use recpipe::accel::FutureScaling;
use recpipe::core::Table;

fn main() {
    let study = FutureScaling::paper_default();

    println!("Scaling the backend model beyond DRAM (Table 3: 16 GB):\n");
    let mut top = Table::new(vec![
        "model scale",
        "SSD-resident",
        "DRAM miss rate",
        "SSD time hidden",
    ]);
    for scale in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
        top.row(vec![
            format!("{scale:.0}x"),
            format!("{:.0}%", study.ssd_fraction(scale) * 100.0),
            format!("{:.1}%", study.dram_miss_rate(scale) * 100.0),
            format!("{:.0}%", study.overlap_fraction(scale, 1.0) * 100.0),
        ]);
    }
    println!("{top}");

    println!("Single-stage vs multi-stage latency as workload scales:\n");
    let mut bottom = Table::new(vec![
        "scale (mem, items)",
        "single-stage (ms)",
        "multi-stage (ms)",
        "multi-stage win",
    ]);
    for (mem, compute) in [(1.0, 1.0), (4.0, 1.5), (8.0, 2.0), (16.0, 2.5), (32.0, 3.0)] {
        let single = study.single_stage_latency(mem, compute);
        let multi = study.multi_stage_latency(mem, compute);
        bottom.row(vec![
            format!("{mem:.0}x, {:.0} items", 4096.0 * compute),
            format!("{:.2}", single * 1e3),
            format!("{:.2}", multi * 1e3),
            format!("{:.1}x", single / multi),
        ]);
    }
    println!("{bottom}");
    println!(
        "Multi-stage execution hides SSD accesses behind frontend compute,\n\
         scaling gracefully where the single-stage design collapses\n\
         (paper Takeaway 10)."
    );
}
