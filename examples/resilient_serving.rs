//! Query-level resilience on a gray-failing fleet: hedged requests
//! against a limping replica, and retry budgets against retry storms.
//!
//! Fleets don't just fail cleanly. The nastier production mode is
//! *limpware* — a replica that keeps accepting work at a fraction of
//! its profile speed (failing NIC, thermal throttling, a noisy
//! neighbor) and is therefore invisible to availability masking: the
//! router still sees it as up, and an oblivious balancer keeps feeding
//! it. This example injects exactly that fault and shows the two
//! classic client-side defenses doing their jobs:
//!
//! * **Hedged requests** — a 4-replica fleet has one replica degraded
//!   to 25% speed. Round-robin routing strands a quarter of the
//!   traffic behind it and the tail explodes. Re-running with a hedge
//!   (duplicate any attempt still outstanding after 50 ms onto a
//!   *different* replica; first completion wins, the loser is
//!   cancelled lazily) collapses p99 by orders of magnitude for a
//!   modest wasted-work bill.
//! * **Retry budgets** — the same fleet, healthy, hit by a flash
//!   crowd: steady 250 QPS with a 1.5 s burst at 1600 QPS, against
//!   400 QPS of capacity. With a 50 ms timeout and up to 3 retries,
//!   the burst's backlog makes *every* query time out — and unbounded
//!   retries turn 250 QPS of offered load into ~1000 QPS of attempts,
//!   a metastable congestion collapse that outlives the burst by the
//!   rest of the run. A global retry *budget* (token bucket refilled
//!   by successes) drains under the storm, resolves further timeouts
//!   as final, and lets the fleet work off the backlog — goodput
//!   recovers.
//!
//! Both headline comparisons are asserted, along with the resilience
//! ledger: every query resolves exactly once as completed, shed,
//! dropped, or timed-out-final.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example resilient_serving
//! ```

use recpipe::core::Table;
use recpipe::data::{PoissonArrivals, TraceArrivals};
use recpipe::qsim::{
    Fifo, HedgePolicy, LifecycleConfig, LifecycleEvent, LifecycleSchedule, PipelineSpec,
    ReplicaGroup, ResilienceConfig, RetryBudget, RetryPolicy, RoundRobin, SimResult, StageSpec,
};

/// Replicas in the worker fleet (100 QPS each on the 10 ms stage).
const REPLICAS: usize = 4;
/// The limping replica's speed as a fraction of its profile.
const LIMP_SPEED: f64 = 0.25;
/// A timeout that never fires inside these runs — it arms the
/// resilience machinery without resolving anything early, isolating
/// the hedging effect.
const NEVER_S: f64 = 3600.0;

/// A single 10 ms ranking stage over the worker fleet, optionally with
/// one replica limping from t = 0.
fn fleet(limping: bool) -> PipelineSpec {
    let mut group = ReplicaGroup::replicated("worker", 1, REPLICAS);
    if limping {
        group = group.with_lifecycle(
            LifecycleSchedule::empty().with_event(LifecycleEvent::degrade(0.0, 0, LIMP_SPEED)),
        );
    }
    PipelineSpec::new(vec![group])
        .with_stage(StageSpec::new("rank", 0, 1, 0.010))
        .expect("valid stage")
}

/// A deterministic flash crowd: evenly spaced arrivals at `base` QPS,
/// except a burst at `burst` QPS between `from` and `until` seconds.
fn flash_crowd(queries: usize, base: f64, burst: f64, from: f64, until: f64) -> TraceArrivals {
    let mut times = Vec::with_capacity(queries);
    let mut t = 0.0;
    while times.len() < queries {
        times.push(t);
        let rate = if t >= from && t < until { burst } else { base };
        t += 1.0 / rate;
    }
    TraceArrivals::new(times)
}

/// The conservation ledger every resilient run must balance.
fn assert_conserved(label: &str, out: &SimResult, queries: usize) {
    let stats = out.resilience.as_ref().expect("resilient run");
    assert_eq!(
        out.completed + out.shed + out.dropped + stats.timed_out,
        queries,
        "{label}: every query resolves exactly once"
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Part 1: a limping replica, with and without hedging ---------
    //
    // Offered 150 QPS against a nominal 400 QPS fleet — comfortable,
    // except replica 0 limps at 25 QPS while round-robin keeps feeding
    // it 37.5: the queue behind the limper grows for the whole run,
    // and a quarter of the traffic is stranded behind it.
    let queries = 20_000;
    let arrivals = PoissonArrivals::new(150.0);
    let spec = fleet(true);
    let cfg = LifecycleConfig::new();

    let no_hedge = ResilienceConfig::new().with_timeout(NEVER_S);
    let mut plain =
        spec.serve_resilient(&arrivals, &Fifo, &RoundRobin, queries, 42, &cfg, &no_hedge)?;

    let hedged_cfg = no_hedge.clone().with_hedge(HedgePolicy::after(0.050));
    let mut hedged = spec.serve_resilient(
        &arrivals,
        &Fifo,
        &RoundRobin,
        queries,
        42,
        &cfg,
        &hedged_cfg,
    )?;

    let (plain_p99, plain_p50) = (plain.p99_seconds(), plain.p50_seconds());
    let (hedged_p99, hedged_p50) = (hedged.p99_seconds(), hedged.p50_seconds());
    println!(
        "Limping fleet: {REPLICAS} replicas at 100 QPS, replica 0 degraded to {:.0}%;\n\
         150 QPS offered round-robin, {queries} queries\n",
        LIMP_SPEED * 100.0
    );
    let mut table = Table::new(vec![
        "configuration",
        "p99 ms",
        "p50 ms",
        "hedges",
        "won",
        "wasted s",
    ]);
    for (name, p99, p50, out) in [
        ("no hedge", plain_p99, plain_p50, &plain),
        ("hedge @50ms", hedged_p99, hedged_p50, &hedged),
    ] {
        let s = out.resilience.as_ref().expect("resilient run");
        table.row(vec![
            name.to_string(),
            format!("{:.1}", p99 * 1e3),
            format!("{:.1}", p50 * 1e3),
            format!("{}", s.hedges_issued),
            format!("{}", s.hedges_won),
            format!("{:.1}", s.wasted_service_s),
        ]);
    }
    println!("{table}");

    assert_conserved("no-hedge", &plain, queries);
    assert_conserved("hedged", &hedged, queries);
    let hstats = hedged.resilience.as_ref().expect("resilient run");
    assert!(hstats.hedges_issued > 0, "the limper forces hedges");
    assert!(hstats.hedges_won > 0, "hedges beat the limper's queue");
    // The headline: hedging collapses the gray-failure tail. The
    // no-hedge p99 is the limper's runaway queue (tens of seconds);
    // hedged queries escape onto a healthy replica after 50 ms.
    assert!(
        hedged_p99 < plain_p99 * 0.5,
        "hedging must cut p99 at least in half: {:.1} ms vs {:.1} ms",
        hedged_p99 * 1e3,
        plain_p99 * 1e3
    );
    println!(
        "hedging cuts p99 {:.0}x: {:.0} ms -> {:.0} ms\n",
        plain_p99 / hedged_p99,
        plain_p99 * 1e3,
        hedged_p99 * 1e3
    );

    // --- Part 2: retry storm vs retry budget under a flash crowd -----
    //
    // The healthy fleet sustains 400 QPS; the trace offers a steady
    // 250, except a 1.5 s burst at 1600 between t = 2 s and t = 3.5 s.
    // The burst leaves ~1800 queries of backlog, so post-burst
    // arrivals time out at 50 ms — and with lazy cancellation their
    // abandoned attempts still burn service time as carcasses. At up
    // to 3 retries per query, 250 QPS of offered load becomes ~1000
    // QPS of attempts: more than capacity, so the congestion sustains
    // itself long after the burst — unless a retry budget cuts the
    // amplification back below capacity.
    let queries = 25_000;
    let crowd = flash_crowd(queries, 250.0, 1600.0, 2.0, 3.5);
    let spec = fleet(false);
    let timeout_retry = RetryPolicy::new(4, 0.010, 2.0);

    let storm_cfg = ResilienceConfig::new()
        .with_timeout(0.050)
        .with_retry(timeout_retry.clone());
    let storm = spec.serve_resilient(&crowd, &Fifo, &RoundRobin, queries, 17, &cfg, &storm_cfg)?;

    let budget_cfg = ResilienceConfig::new()
        .with_timeout(0.050)
        .with_retry(timeout_retry.with_budget(RetryBudget::new(100.0, 0.05)));
    let budgeted =
        spec.serve_resilient(&crowd, &Fifo, &RoundRobin, queries, 17, &cfg, &budget_cfg)?;

    println!(
        "Flash crowd: steady 250 QPS with a 1.5 s burst at 1600 QPS against a\n\
         400 QPS fleet; 50 ms timeout, <=3 retries, {queries} queries\n"
    );
    let mut table = Table::new(vec![
        "configuration",
        "completed",
        "timed out",
        "retries",
        "denied",
        "wasted s",
    ]);
    for (name, out) in [
        ("unbounded retries", &storm),
        ("retry budget 100+5%", &budgeted),
    ] {
        let s = out.resilience.as_ref().expect("resilient run");
        table.row(vec![
            name.to_string(),
            format!("{}", out.completed),
            format!("{}", s.timed_out),
            format!("{}", s.total_retries()),
            format!("{}", s.retries_denied),
            format!("{:.1}", s.wasted_service_s),
        ]);
    }
    println!("{table}");

    assert_conserved("storm", &storm, queries);
    assert_conserved("budgeted", &budgeted, queries);
    let sstats = storm.resilience.as_ref().expect("resilient run");
    let bstats = budgeted.resilience.as_ref().expect("resilient run");
    assert!(
        sstats.total_retries() > bstats.total_retries(),
        "the budget must bound the retry volume"
    );
    assert!(
        bstats.retries_denied > 0,
        "the budget drains under overload"
    );
    assert!(
        sstats.wasted_service_s > bstats.wasted_service_s,
        "unbounded retries burn more capacity on carcasses"
    );
    // The headline: bounding retry amplification lets the fleet work
    // off the burst instead of tipping into metastable collapse.
    assert!(
        budgeted.completed > storm.completed,
        "the retry budget must avert congestion collapse: {} vs {} completions",
        budgeted.completed,
        storm.completed
    );
    println!(
        "retry budget averts the storm: {} -> {} of {queries} queries completed",
        storm.completed, budgeted.completed
    );

    Ok(())
}
