//! End-to-end MovieLens-style serving with a *real trained model*: train
//! a NeuMF on synthetic interactions, then serve ranked item lists and
//! measure NDCG with the model's actual scores — the fully functional
//! (non-statistical) path through the framework.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example movielens_serving
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recpipe::core::Table;
use recpipe::data::DatasetKind;
use recpipe::metrics::{ideal_sorted, ndcg_at_k};
use recpipe::models::{ModelConfig, ModelKind, NeuMf};

const USERS: usize = 120;
const ITEMS: usize = 400;
const LATENT: usize = 6;

/// Hidden ground-truth affinity the generator and the evaluation share.
fn true_affinity(user: usize, item: usize) -> f64 {
    let mut acc = 0.0;
    for d in 0..LATENT {
        let mut h = (user as u64) << 32 ^ (item as u64) << 8 ^ d as u64;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 29;
        let u = ((h & 0xffff) as f64 / 65535.0) - 0.5;
        let mut g = (user as u64).wrapping_mul(31).wrapping_add(d as u64);
        g = g.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let v = (((g >> 16) & 0xffff) as f64 / 65535.0) - 0.5;
        acc += u * v;
    }
    acc * 40.0
}

fn main() {
    let cfg = ModelConfig::for_kind(ModelKind::RmMed, DatasetKind::MovieLens1M);
    let mut rng = StdRng::seed_from_u64(1);
    let mut model = NeuMf::new(&cfg, USERS, ITEMS, &mut rng);

    // Train on Bernoulli interactions drawn from the hidden affinity.
    println!("Training NeuMF ({LATENT}-factor ground truth, {USERS} users x {ITEMS} items) ...");
    let mut data_rng = StdRng::seed_from_u64(2);
    let mut epoch_loss = Vec::new();
    for _ in 0..6 {
        let mut total = 0.0f64;
        let steps = 30_000;
        for _ in 0..steps {
            let user = data_rng.gen_range(0..USERS);
            let item = data_rng.gen_range(0..ITEMS);
            let p = 1.0 / (1.0 + (-true_affinity(user, item)).exp());
            let liked = data_rng.gen::<f64>() < p;
            total += model.train_step(user, item, liked, 0.05) as f64;
        }
        epoch_loss.push(total / steps as f64);
    }
    println!(
        "epoch losses: {}",
        epoch_loss
            .iter()
            .map(|l| format!("{l:.3}"))
            .collect::<Vec<_>>()
            .join(" -> ")
    );

    // Serve: rank the full catalog per user with the trained model and
    // score the list against the hidden affinities.
    let items: Vec<usize> = (0..ITEMS).collect();
    let mut served_ndcg = Vec::new();
    for user in 0..USERS {
        let scores = model.score_items(user, &items);
        let mut ranked: Vec<(usize, f32)> = items.iter().map(|&i| (i, scores[i])).collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

        let gains: Vec<f64> = items
            .iter()
            .map(|&i| (1.0 / (1.0 + (-true_affinity(user, i)).exp())).powi(2))
            .collect();
        let ideal = ideal_sorted(&gains);
        let served: Vec<f64> = ranked.iter().take(10).map(|&(i, _)| gains[i]).collect();
        served_ndcg.push(ndcg_at_k(&served, &ideal, 10));
    }
    let mean = served_ndcg.iter().sum::<f64>() / served_ndcg.len() as f64;

    // A random ranker as the floor.
    let mut rand_rng = StdRng::seed_from_u64(3);
    let mut random_ndcg = Vec::new();
    for user in 0..USERS {
        let gains: Vec<f64> = items
            .iter()
            .map(|&i| (1.0 / (1.0 + (-true_affinity(user, i)).exp())).powi(2))
            .collect();
        let ideal = ideal_sorted(&gains);
        let served: Vec<f64> = (0..10)
            .map(|_| gains[rand_rng.gen_range(0..ITEMS)])
            .collect();
        random_ndcg.push(ndcg_at_k(&served, &ideal, 10));
    }
    let random_mean = random_ndcg.iter().sum::<f64>() / random_ndcg.len() as f64;

    let mut table = Table::new(vec!["ranker", "NDCG@10"]);
    table.row(vec!["trained NeuMF".into(), format!("{:.3}", mean)]);
    table.row(vec!["random".into(), format!("{:.3}", random_mean)]);
    println!("\n{table}");
    assert!(
        mean > random_mean + 0.05,
        "trained model must beat random ranking"
    );
    println!("The trained model recovers the latent structure it was trained on.");

    // At-scale serving of the MovieLens-class pipeline through the
    // Engine API: the same two-stage funnel shape, bound to the
    // commodity CPU pool.
    use recpipe::core::{Engine, PipelineConfig, Placement, StageConfig};
    let pipeline = PipelineConfig::builder()
        .dataset(DatasetKind::MovieLens1M)
        .stage(StageConfig::new(ModelKind::RmSmall, 1024, 256))
        .stage(StageConfig::new(ModelKind::RmLarge, 256, 64))
        .build()
        .expect("valid MovieLens pipeline");
    let outcome = Engine::commodity(pipeline)
        .placement(Placement::cpu_only(2))
        .load(200.0)
        .quality_queries(200)
        .sim_queries(2_000)
        .build()
        .expect("valid MovieLens engine")
        .evaluate();
    println!(
        "\nServing this catalog shape at 200 QPS on the CPU pool: NDCG {:.2}, p99 {:.2} ms{}",
        outcome.ndcg_percent(),
        outcome.p99_ms(),
        if outcome.saturated {
            " (saturated)"
        } else {
            ""
        },
    );
}
