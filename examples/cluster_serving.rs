//! Cluster-of-replicas serving: replicated backends behind pluggable
//! routers, and a scheduler sweep that co-optimizes replica counts.
//!
//! The paper's datacenter-scale story serves millions of users across
//! fleets of CPUs and accelerators. This example scales the two-stage
//! Criteo pipeline out instead of up:
//!
//! * a 4-replica GPU fleet absorbs an offered load that saturates the
//!   single-pool engine;
//! * four routers split the same traffic — oblivious round-robin,
//!   full-information join-shortest-queue, power-of-two-choices
//!   sampling, and free-unit-driven least-work-left — and the tail
//!   shows what replica-state awareness buys;
//! * the same routers race again on a *batched* fleet, where
//!   `LeastWorkLeft`'s free-unit signal concentrates work into the
//!   deepest batches — and JSQ's queue-length signal still wins the
//!   tail (ROADMAP's open question, now measured);
//! * a replica-count sweep produces a three-objective Pareto front:
//!   quality vs p99 vs total replica cost — priced exhaustively and
//!   with the successive-halving budget, which returns the same front
//!   for roughly half the simulated queries.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example cluster_serving
//! ```

use recpipe::core::{Engine, PipelineConfig, Placement, StageConfig, Table};
use recpipe::data::PoissonArrivals;
use recpipe::models::ModelKind;
use recpipe::qsim::{
    BatchModel, BatchWindow, Fifo, JoinShortestQueue, LeastWorkLeft, PipelineSpec,
    PowerOfTwoChoices, ReplicaGroup, RoundRobin, Router, StageSpec,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pipeline = PipelineConfig::builder()
        .stage(StageConfig::new(ModelKind::RmSmall, 4096, 256))
        .stage(StageConfig::new(ModelKind::RmLarge, 256, 64))
        .build()?;

    // --- Scale-out: one GPU vs a 4-replica GPU fleet -----------------
    let single = Engine::commodity(pipeline.clone())
        .placement(Placement::gpu_only(2))
        .quality_queries(100)
        .build()?;
    let fleet = Engine::commodity(pipeline.clone())
        .placement(Placement::gpu_only(2))
        .replicas(1, 4)
        .quality_queries(100)
        .build()?;
    let overload = single.max_qps() * 2.0;
    println!(
        "Single {} capacity: {:.0} QPS; fleet {} capacity: {:.0} QPS; offered: {:.0} QPS",
        single.placement().describe(single.backends()),
        single.max_qps(),
        fleet.placement().describe(fleet.backends()),
        fleet.max_qps(),
        overload,
    );
    let arrivals = PoissonArrivals::new(overload);
    let alone = single.serve_with(&arrivals, &Fifo, 8_000);
    println!(
        "  single pool: saturated = {}, achieved {:.0} QPS\n",
        alone.saturated, alone.qps
    );

    // --- Router comparison on a mixed-job-size fleet -----------------
    // Short frontend + 5x backend on one replicated worker fleet at
    // rho = 0.9: the scenario where replica-state awareness pays.
    let mixed = PipelineSpec::new(vec![ReplicaGroup::replicated("worker", 1, 4)])
        .with_stage(StageSpec::new("front", 0, 1, 0.002))?
        .with_stage(StageSpec::new("back", 0, 1, 0.010))?;
    let qps = 0.9 * mixed.max_qps();
    let hot = PoissonArrivals::new(qps);
    let routers: Vec<Box<dyn Router>> = vec![
        Box::new(RoundRobin),
        Box::new(PowerOfTwoChoices),
        Box::new(JoinShortestQueue),
        Box::new(LeastWorkLeft),
    ];
    let mut table = Table::new(vec!["router", "p50 (ms)", "p99 (ms)", "QPS", "imbalance"]);
    println!(
        "Router comparison: 4-replica worker fleet, mixed 2 ms/10 ms stages, rho = 0.9 ({qps:.0} QPS)"
    );
    for router in &routers {
        let mut out = mixed.serve_routed(&hot, &Fifo, router.as_ref(), 20_000, 7);
        table.row(vec![
            router.name(),
            format!("{:.2}", out.p50_seconds() * 1e3),
            format!("{:.2}", out.p99_seconds() * 1e3),
            format!("{:.0}", out.qps),
            format!("{:.3}", out.replica_imbalance()),
        ]);
    }
    println!("{table}");

    // --- Batched fleet: free-unit routing vs query counts -----------
    // Four 2-unit replicas serving a batched ranking stage behind a
    // 2 ms batch window. A replica with many queries riding one batch
    // frees them all at once, so JSQ's outstanding-query count
    // overrates its load; `LeastWorkLeft` reads the units actually
    // held instead, funneling arrivals toward startable replicas (and
    // into deeper batches).
    let batched = PipelineSpec::new(vec![ReplicaGroup::replicated("gpu", 2, 4)])
        .with_stage(StageSpec::new("rank", 0, 1, 0.004).with_batch(BatchModel::new(8, 0.2)))?
        .with_stage(StageSpec::new("rerank", 0, 2, 0.006))?;
    let qps = 0.85 * batched.max_qps();
    let window = BatchWindow::new(0.002);
    let busy = PoissonArrivals::new(qps);
    let mut table = Table::new(vec!["router", "p50 (ms)", "p99 (ms)", "mean batch"]);
    println!(
        "Batched-fleet comparison: 4x2-unit replicas, batch-8 rank + 2-unit rerank, \
         2 ms window, rho = 0.85 ({qps:.0} QPS)"
    );
    for router in &routers {
        let mut out = batched.serve_routed(&busy, &window, router.as_ref(), 20_000, 7);
        table.row(vec![
            router.name(),
            format!("{:.2}", out.p50_seconds() * 1e3),
            format!("{:.2}", out.p99_seconds() * 1e3),
            format!("{:.2}", out.mean_batch),
        ]);
    }
    println!("{table}");

    // --- Replica-count sweep: quality vs p99 vs cost -----------------
    // Priced twice: exhaustively, and with the successive-halving
    // budget that prunes dominated placements at low simulation
    // budgets before spending the full budget on contenders.
    use recpipe::core::{Scheduler, SchedulerSettings, SweepBudget};
    use recpipe::hwsim::{CpuModel, GpuModel, PcieModel};
    use std::sync::Arc;

    let mut settings = SchedulerSettings::quick();
    settings.replica_options = vec![1, 2, 4];
    settings.max_stages = 2;
    let pool: Vec<Arc<dyn recpipe::core::Backend>> =
        vec![Arc::new(CpuModel::cascade_lake()), Arc::new(GpuModel::t4())];
    let interconnect = PcieModel::measured();
    let (full_points, full_stats) = Scheduler::new(settings.clone()).explore_pool_with_stats(
        2_000.0,
        2,
        &pool,
        1,
        None,
        &interconnect,
    );
    settings.sweep_budget = SweepBudget::halving(settings.sim_queries);
    let (halved_points, halved_stats) =
        Scheduler::new(settings).explore_pool_with_stats(2_000.0, 2, &pool, 1, None, &interconnect);

    let front = Scheduler::pareto_with_cost(full_points);
    let halved_front = Scheduler::pareto_with_cost(halved_points);
    let mut pareto = Table::new(vec!["pipeline", "mapping", "cost", "NDCG %", "p99 (ms)"]);
    for p in front.iter() {
        pareto.row(vec![
            p.pipeline.describe(),
            p.mapping.clone(),
            format!("{}", p.replicas),
            format!("{:.2}", p.ndcg_percent()),
            format!("{:.2}", p.p99_ms()),
        ]);
    }
    println!("Replica-aware Pareto front at 2000 QPS (quality x p99 x replica cost):");
    println!("{pareto}");
    println!(
        "Sweep budget: full = {} simulated queries over {} candidates; successive halving = {} \
         ({:.0}% of full) recovering {}/{} front points",
        full_stats.simulated_queries,
        full_stats.candidates,
        halved_stats.simulated_queries,
        100.0 * halved_stats.simulated_queries as f64 / full_stats.simulated_queries as f64,
        halved_front
            .iter()
            .filter(|p| front.points().contains(p))
            .count(),
        front.len(),
    );
    println!("Reading the results:");
    println!(
        "  - replication turns a saturating single pool into a stable fleet at the same load;"
    );
    println!("  - JSQ routes around replicas grinding long backend queries; round-robin keeps");
    println!("    feeding them blindly, and d=2 sampling recovers most of JSQ's tail win with");
    println!("    two probes per query; on the batched fleet, least-work-left's free-unit");
    println!("    signal forms the deepest batches, yet JSQ keeps the tail win — queue length");
    println!("    stays the better latency signal even when in-flight batches inflate it;");
    println!("  - the cost axis keeps small clusters on the front: a 1-replica design that meets");
    println!("    quality at higher p99 is not dominated by a 4-replica design that halves it;");
    println!("  - the halving budget prunes the replica cross product for about half the");
    println!("    simulation cost while keeping the full-budget Pareto placements.");
    Ok(())
}
