//! Cluster-of-replicas serving: replicated backends behind pluggable
//! routers, heterogeneous replica fleets, and a scheduler sweep that
//! co-optimizes fleet generation mixes.
//!
//! The paper's datacenter-scale story serves millions of users across
//! fleets of CPUs and accelerators — and real fleets mix machine
//! generations (MP-Rec's case for heterogeneous execution paths). This
//! example scales the two-stage Criteo pipeline out instead of up:
//!
//! * a 4-replica GPU fleet absorbs an offered load that saturates the
//!   single-pool engine;
//! * routers split the same traffic on a uniform fleet — oblivious
//!   round-robin, full-information join-shortest-queue,
//!   power-of-two-choices sampling, and free-unit-driven
//!   least-work-left — and the tail shows what replica-state awareness
//!   buys;
//! * a *two-generation* fleet (2 current boxes + 2 previous-generation
//!   at 40% speed) re-races the routers plus the speed-aware
//!   `ExpectedWait` and affinity `Sticky` entries: query counts and
//!   free units are blind to replica speed, so expected wait (remaining
//!   work / speed) wins the tail;
//! * the same routers race on a *batched* fleet, where `LeastWorkLeft`
//!   forms the deepest steady-state batches — and JSQ's queue-length
//!   signal still wins the uniform-fleet tail;
//! * a fleet-option sweep produces a three-objective Pareto front:
//!   quality vs p99 vs *profile-weighted* fleet cost — old boxes price
//!   at their speed, so mixed-generation clusters survive between the
//!   small and large uniform ones.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example cluster_serving
//! ```

use recpipe::core::{Engine, PipelineConfig, Placement, StageConfig, Table};
use recpipe::data::PoissonArrivals;
use recpipe::models::ModelKind;
use recpipe::qsim::{
    BatchModel, BatchWindow, ExpectedWait, Fifo, JoinShortestQueue, LeastWorkLeft, PipelineSpec,
    PowerOfTwoChoices, ReplicaGroup, ReplicaProfile, RoundRobin, Router, StageSpec, Sticky,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pipeline = PipelineConfig::builder()
        .stage(StageConfig::new(ModelKind::RmSmall, 4096, 256))
        .stage(StageConfig::new(ModelKind::RmLarge, 256, 64))
        .build()?;

    // --- Scale-out: one GPU vs a 4-replica GPU fleet -----------------
    let single = Engine::commodity(pipeline.clone())
        .placement(Placement::gpu_only(2))
        .quality_queries(100)
        .build()?;
    let fleet = Engine::commodity(pipeline.clone())
        .placement(Placement::gpu_only(2))
        .replicas(1, 4)
        .quality_queries(100)
        .build()?;
    let overload = single.max_qps() * 2.0;
    println!(
        "Single {} capacity: {:.0} QPS; fleet {} capacity: {:.0} QPS; offered: {:.0} QPS",
        single.placement().describe(single.backends()),
        single.max_qps(),
        fleet.placement().describe(fleet.backends()),
        fleet.max_qps(),
        overload,
    );
    let arrivals = PoissonArrivals::new(overload);
    let alone = single.serve_with(&arrivals, &Fifo, 8_000);
    println!(
        "  single pool: saturated = {}, achieved {:.0} QPS\n",
        alone.saturated, alone.qps
    );

    // --- Router comparison on a uniform mixed-job-size fleet ---------
    // Short frontend + 5x backend on one replicated worker fleet at
    // rho = 0.9: the scenario where replica-state awareness pays.
    let mixed = PipelineSpec::new(vec![ReplicaGroup::replicated("worker", 1, 4)])
        .with_stage(StageSpec::new("front", 0, 1, 0.002))?
        .with_stage(StageSpec::new("back", 0, 1, 0.010))?;
    let qps = 0.9 * mixed.max_qps();
    let hot = PoissonArrivals::new(qps);
    let routers: Vec<Box<dyn Router>> = vec![
        Box::new(RoundRobin),
        Box::new(PowerOfTwoChoices),
        Box::new(JoinShortestQueue),
        Box::new(LeastWorkLeft),
    ];
    let mut table = Table::new(vec!["router", "p50 (ms)", "p99 (ms)", "QPS", "imbalance"]);
    println!(
        "Router comparison: 4-replica worker fleet, mixed 2 ms/10 ms stages, rho = 0.9 ({qps:.0} QPS)"
    );
    for router in &routers {
        let mut out = mixed.serve_routed(&hot, &Fifo, router.as_ref(), 20_000, 7);
        table.row(vec![
            router.name(),
            format!("{:.2}", out.p50_seconds() * 1e3),
            format!("{:.2}", out.p99_seconds() * 1e3),
            format!("{:.0}", out.qps),
            format!("{:.3}", out.replica_imbalance()),
        ]);
    }
    println!("{table}");

    // --- Two-generation fleet: speed-aware routing ------------------
    // 2 current-generation replicas plus 2 previous-generation ones at
    // 40% speed, same stage pair, rho = 0.9 of the *weighted* capacity.
    // JSQ's query count and least-work's free units are blind to the
    // generation gap: a 2-query backlog on an old box outlasts a
    // 3-query backlog on a new one. ExpectedWait (remaining work /
    // speed) sees it; Sticky shows what pinning a query to its first
    // replica costs when speeds differ.
    let two_gen = PipelineSpec::new(vec![ReplicaGroup::heterogeneous(
        "worker",
        vec![
            ReplicaProfile::baseline(1),
            ReplicaProfile::baseline(1),
            ReplicaProfile::new(1, 0.4),
            ReplicaProfile::new(1, 0.4),
        ],
    )])
    .with_stage(StageSpec::new("front", 0, 1, 0.002))?
    .with_stage(StageSpec::new("back", 0, 1, 0.010))?;
    let qps = 0.9 * two_gen.max_qps();
    let hot = PoissonArrivals::new(qps);
    let hetero_routers: Vec<Box<dyn Router>> = vec![
        Box::new(RoundRobin),
        Box::new(JoinShortestQueue),
        Box::new(LeastWorkLeft),
        Box::new(Sticky::new()),
        Box::new(ExpectedWait),
    ];
    let mut table = Table::new(vec!["router", "p50 (ms)", "p99 (ms)", "QPS"]);
    println!(
        "Two-generation fleet: 2 replicas @1.0 + 2 @0.4 (weighted capacity {:.0} QPS), \
         rho = 0.9 ({qps:.0} QPS)",
        two_gen.max_qps()
    );
    let mut jsq_p99 = f64::NAN;
    let mut ew_p99 = f64::NAN;
    for router in &hetero_routers {
        let mut out = two_gen.serve_routed(&hot, &Fifo, router.as_ref(), 20_000, 7);
        if router.name() == "jsq" {
            jsq_p99 = out.p99_seconds();
        }
        if router.name() == "expected-wait" {
            ew_p99 = out.p99_seconds();
        }
        table.row(vec![
            router.name(),
            format!("{:.2}", out.p50_seconds() * 1e3),
            format!("{:.2}", out.p99_seconds() * 1e3),
            format!("{:.0}", out.qps),
        ]);
    }
    println!("{table}");
    println!(
        "  expected-wait cuts jsq's p99 by {:.0}% on the mixed generations\n",
        100.0 * (1.0 - ew_p99 / jsq_p99)
    );

    // --- Batched fleet: free-unit routing vs query counts -----------
    // Four 2-unit replicas serving a batched ranking stage behind a
    // 2 ms batch window. A replica with many queries riding one batch
    // frees them all at once, so JSQ's outstanding-query count
    // overrates its load; `LeastWorkLeft` reads the units actually
    // held instead, funneling arrivals toward startable replicas (and
    // into deeper batches); `Sticky` tracks its JSQ fallback here (the
    // rerank stage is unbatched — its batch-mate cohesion shows up
    // under bursty traffic, pinned in the qsim test suite).
    let batched = PipelineSpec::new(vec![ReplicaGroup::replicated("gpu", 2, 4)])
        .with_stage(StageSpec::new("rank", 0, 1, 0.004).with_batch(BatchModel::new(8, 0.2)))?
        .with_stage(StageSpec::new("rerank", 0, 2, 0.006))?;
    let qps = 0.85 * batched.max_qps();
    let window = BatchWindow::new(0.002);
    let busy = PoissonArrivals::new(qps);
    let batched_routers: Vec<Box<dyn Router>> = vec![
        Box::new(RoundRobin),
        Box::new(PowerOfTwoChoices),
        Box::new(JoinShortestQueue),
        Box::new(LeastWorkLeft),
        Box::new(Sticky::new()),
        Box::new(ExpectedWait),
    ];
    let mut table = Table::new(vec!["router", "p50 (ms)", "p99 (ms)", "mean batch"]);
    println!(
        "Batched-fleet comparison: 4x2-unit replicas, batch-8 rank + 2-unit rerank, \
         2 ms window, rho = 0.85 ({qps:.0} QPS)"
    );
    for router in &batched_routers {
        let mut out = batched.serve_routed(&busy, &window, router.as_ref(), 20_000, 7);
        table.row(vec![
            router.name(),
            format!("{:.2}", out.p50_seconds() * 1e3),
            format!("{:.2}", out.p99_seconds() * 1e3),
            format!("{:.2}", out.mean_batch),
        ]);
    }
    println!("{table}");

    // --- Fleet-option sweep: quality vs p99 vs weighted cost ---------
    // The scheduler crosses whole generation mixes per backend: one
    // current box, two current boxes, or one current + one
    // previous-generation at 60% speed (cost 1.6). Priced exhaustively
    // and with the successive-halving budget.
    use recpipe::core::{FleetSpec, Scheduler, SchedulerSettings, SweepBudget};
    use recpipe::hwsim::{CpuModel, PcieModel};
    use std::sync::Arc;

    let mut settings = SchedulerSettings::quick();
    settings.fleet_options = vec![
        FleetSpec::uniform(1),
        FleetSpec::uniform(2),
        FleetSpec::mixed(&[(1, 1.0), (1, 0.6)]),
    ];
    settings.max_stages = 2;
    let pool: Vec<Arc<dyn recpipe::core::Backend>> = vec![Arc::new(CpuModel::cascade_lake())];
    let interconnect = PcieModel::measured();
    let load = 8_000.0;
    let (full_points, full_stats) = Scheduler::new(settings.clone()).explore_pool_with_stats(
        load,
        2,
        &pool,
        1,
        None,
        &interconnect,
    );
    settings.sweep_budget = SweepBudget::halving(settings.sim_queries);
    let (halved_points, halved_stats) =
        Scheduler::new(settings).explore_pool_with_stats(load, 2, &pool, 1, None, &interconnect);

    let front = Scheduler::pareto_with_cost(full_points);
    let halved_front = Scheduler::pareto_with_cost(halved_points);
    let mut pareto = Table::new(vec![
        "pipeline",
        "mapping",
        "fleet cost",
        "NDCG %",
        "p99 (ms)",
    ]);
    for p in front.iter() {
        pareto.row(vec![
            p.pipeline.describe(),
            p.mapping.clone(),
            format!("{:.1}", p.fleet_cost),
            format!("{:.2}", p.ndcg_percent()),
            format!("{:.2}", p.p99_ms()),
        ]);
    }
    println!("Fleet-aware Pareto front at {load:.0} QPS (quality x p99 x weighted fleet cost):");
    println!("{pareto}");
    let mixed_points = front.iter().filter(|p| p.mapping.contains('@')).count();
    println!(
        "Sweep budget: full = {} simulated queries over {} candidates; successive halving = {} \
         ({:.0}% of full) recovering {}/{} front points; {mixed_points} mixed-generation \
         cluster(s) on the front",
        full_stats.simulated_queries,
        full_stats.candidates,
        halved_stats.simulated_queries,
        100.0 * halved_stats.simulated_queries as f64 / full_stats.simulated_queries as f64,
        halved_front
            .iter()
            .filter(|p| front.points().contains(p))
            .count(),
        front.len(),
    );
    println!("Reading the results:");
    println!(
        "  - replication turns a saturating single pool into a stable fleet at the same load;"
    );
    println!("  - on the uniform fleet, JSQ routes around replicas grinding long backend");
    println!("    queries and d=2 sampling recovers most of its tail win with two probes;");
    println!("  - on the two-generation fleet, query counts and free units are blind to");
    println!("    replica speed: expected-wait (remaining work / speed) routes around the");
    println!("    old generation's long drains and beats JSQ's p99 outright;");
    println!("  - on the batched fleet, least-work-left's free-unit signal forms the deepest");
    println!("    steady-state batches, yet JSQ keeps the uniform-fleet tail win — queue");
    println!("    length stays the better latency signal when every replica drains at the");
    println!("    same rate;");
    println!("  - the weighted cost axis keeps mixed-generation clusters on the front: a");
    println!("    1.0+0.6 fleet (cost 1.6) lands between one and two current-generation");
    println!("    boxes on both price and tail latency;");
    println!("  - the halving budget prunes the fleet cross product for roughly half the");
    println!("    simulation cost while keeping the full-budget Pareto placements.");
    Ok(())
}
