//! Train a real DLRM on the synthetic latent-factor click data and watch
//! the accuracy-vs-complexity tradeoff emerge — the functional-model
//! path behind the paper's Figure 2 hyperparameter sweep.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example train_dlrm
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use recpipe::core::Table;
use recpipe::data::{DatasetKind, DatasetSpec};
use recpipe::models::{Dlrm, ModelConfig, ModelKind, Trainer};

fn main() {
    let spec = DatasetSpec::criteo_kaggle();
    let vocab = 1_000u32;

    println!("Training DLRM tiers on synthetic Criteo-like clicks ...\n");
    let mut table = Table::new(vec![
        "model",
        "MLP FLOPs/item",
        "params",
        "epoch losses",
        "holdout error",
    ]);

    for kind in [ModelKind::RmSmall, ModelKind::RmMed, ModelKind::RmLarge] {
        let cfg = ModelConfig::for_kind(kind, DatasetKind::CriteoKaggle);
        let mut rng = StdRng::seed_from_u64(42);
        let mut model = Dlrm::new(&cfg, vocab as usize, &mut rng);

        // Wider embeddings get a smaller step: their interaction
        // gradients scale with the latent dimension.
        let lr = 0.05 * (4.0 / cfg.embedding_dim as f32).sqrt();
        let report = Trainer::new(&spec, vocab)
            .epochs(4)
            .samples_per_epoch(6_000)
            .holdout_samples(2_500)
            .learning_rate(lr)
            .run(&mut model, 7);

        let losses = report
            .epoch_losses
            .iter()
            .map(|l| format!("{l:.3}"))
            .collect::<Vec<_>>()
            .join(" -> ");
        table.row(vec![
            kind.to_string(),
            cfg.cost().mlp_flops_per_item.to_string(),
            model.num_params().to_string(),
            losses,
            format!("{:.1}%", report.holdout_error * 100.0),
        ]);
    }
    println!("{table}");
    println!(
        "Every tier trains (losses fall); capacity buys accuracy only up to\n\
         what laptop-scale SGD can extract — see fig02_sweep for the\n\
         calibrated accuracy-vs-complexity curve the framework uses."
    );
}
