//! Run the RecPipe inference scheduler's design-space exploration
//! through `Engine::sweep` and print the quality/latency Pareto
//! frontier — the machinery behind the paper's Figures 7 and 8.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example scheduler_sweep
//! ```

use recpipe::core::{
    Engine, PipelineConfig, Placement, Scheduler, SchedulerSettings, StageConfig, Table,
};
use recpipe::models::ModelKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let qps = 500.0;
    let settings = SchedulerSettings::paper_default();

    // The engine's pipeline supplies the dataset being swept; the
    // scheduler then explores every pipeline/placement combination in
    // the settings' grid over the engine's backend pool (here: the
    // CPU only).
    let seed_pipeline = PipelineConfig::builder()
        .stage(StageConfig::new(ModelKind::RmSmall, 4096, 256))
        .stage(StageConfig::new(ModelKind::RmLarge, 256, 64))
        .build()?;
    let engine = Engine::builder()
        .pipeline(seed_pipeline)
        .backend(recpipe::hwsim::CpuModel::cascade_lake())
        .placement(Placement::cpu_only(2))
        .load(qps)
        .build()?;

    println!(
        "Exploring CPU-only design space at {qps} QPS on {} worker threads ...",
        recpipe::core::worker_threads(settings.workers)
    );
    let frontier = engine.sweep(&settings);
    println!("  {} Pareto-optimal designs survive", frontier.len());

    let mut table = Table::new(vec!["pipeline", "mapping", "NDCG", "p99 (ms)"]);
    let mut sorted = frontier.points().to_vec();
    sorted.sort_by(|a, b| a.p99_s.partial_cmp(&b.p99_s).unwrap());
    for point in &sorted {
        table.row(vec![
            point.pipeline.describe(),
            point.mapping.clone(),
            format!("{:.2}", point.ndcg_percent()),
            format!("{:.2}", point.p99_ms()),
        ]);
    }
    println!("\nCPU Pareto frontier (quality vs tail latency):\n{table}");

    // The two selections the paper highlights. Both optima always lie
    // on the quality/latency frontier (any dominating point would meet
    // the same constraint with a better objective), so the frontier
    // suffices — no second exploration.
    let max_quality = frontier.iter().map(|p| p.ndcg).fold(0.0, f64::max);
    if let Some(best) = Scheduler::best_latency_at_quality(frontier.points(), max_quality - 0.003) {
        println!(
            "Iso-quality winner (NDCG >= {:.2}): {} [{}] at {:.2} ms",
            (max_quality - 0.003) * 100.0,
            best.pipeline.describe(),
            best.mapping,
            best.p99_ms()
        );
    }
    if let Some(best) = Scheduler::best_quality_under_sla(frontier.points(), 0.025) {
        println!(
            "Best quality under a 25 ms SLA: {} [{}] -> NDCG {:.2}",
            best.pipeline.describe(),
            best.mapping,
            best.ndcg_percent()
        );
    }
    Ok(())
}
