//! Run the RecPipe inference scheduler's design-space exploration on
//! commodity hardware and print the quality/latency Pareto frontier —
//! the machinery behind the paper's Figures 7 and 8.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example scheduler_sweep
//! ```

use recpipe::core::{Scheduler, SchedulerSettings, Table};

fn main() {
    let qps = 500.0;
    let scheduler = Scheduler::new(SchedulerSettings::paper_default());

    println!("Exploring CPU-only design space at {qps} QPS ...");
    let cpu_points = scheduler.explore_cpu(qps, 3);
    println!(
        "  evaluated {} (pipeline, mapping) points",
        cpu_points.len()
    );

    let frontier = Scheduler::pareto_quality_latency(cpu_points.clone());
    let mut table = Table::new(vec!["pipeline", "mapping", "NDCG", "p99 (ms)"]);
    let mut sorted = frontier.clone();
    sorted.sort_by(|a, b| a.p99_s.partial_cmp(&b.p99_s).unwrap());
    for point in &sorted {
        table.row(vec![
            point.pipeline.describe(),
            point.mapping.clone(),
            format!("{:.2}", point.ndcg_percent()),
            format!("{:.2}", point.p99_ms()),
        ]);
    }
    println!("\nCPU Pareto frontier (quality vs tail latency):\n{table}");

    // The two selections the paper highlights.
    let max_quality = frontier.iter().map(|p| p.ndcg).fold(0.0, f64::max);
    if let Some(best) = Scheduler::best_latency_at_quality(&cpu_points, max_quality - 0.003) {
        println!(
            "Iso-quality winner (NDCG >= {:.2}): {} [{}] at {:.2} ms",
            (max_quality - 0.003) * 100.0,
            best.pipeline.describe(),
            best.mapping,
            best.p99_ms()
        );
    }
    if let Some(best) = Scheduler::best_quality_under_sla(&cpu_points, 0.025) {
        println!(
            "Best quality under a 25 ms SLA: {} [{}] -> NDCG {:.2}",
            best.pipeline.describe(),
            best.mapping,
            best.ndcg_percent()
        );
    }
}
