//! Closed-loop autoscaling over a diurnal day with injected failures:
//! reactive vs predictive fleet resizing vs static provisioning.
//!
//! Steady-state sweeps answer "how many replicas for this load?" — but
//! production load is a day/night cycle punctuated by machine failures,
//! and the interesting question is *transient*: how many SLO-violating
//! minutes does a sizing strategy concede while the rate swings and a
//! box dies at the worst moment, and what does avoiding them cost?
//! This example races four strategies over the same compressed day
//! (trough 100 QPS, peak 900 QPS) with a fail-stop near the peak:
//!
//! * **static under-provisioned** — 3 replicas (600 QPS): cheap, and
//!   crushed at the peak;
//! * **static N+1** — 6 replicas (1200 QPS): rides out both the peak
//!   and the failure, paying for idle capacity all night;
//! * **reactive** — utilization/queue-depth chasing within a 2..8
//!   band: capacity follows demand, but only *after* a window has run
//!   hot, and warm-up delays the fix;
//! * **predictive** — EWMA + one-window trend extrapolation: replicas
//!   are warming *before* the peak needs them, at a small headroom
//!   premium.
//!
//! Every run replays the same failure schedule (replica 0 fail-stops
//! mid-rush and recovers 5 s later) under the requeue policy, so killed
//! and stranded queries re-enter on surviving replicas: the damage
//! shows up as latency, never as lost queries.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example autoscale_serving
//! ```

use recpipe::core::{AsController, PredictiveScaling, ReactiveScaling, ScalingPolicy, Table};
use recpipe::data::DiurnalArrivals;
use recpipe::qsim::{
    AutoscaleConfig, Fifo, JoinShortestQueue, LifecycleConfig, LifecycleEvent, LifecycleSchedule,
    PipelineSpec, ReplicaGroup, SimResult, StageSpec,
};

/// p99 SLO the day is judged against.
const SLO_P99_S: f64 = 0.1;
/// Telemetry window width: the autoscaler's decision cadence.
const WINDOW_S: f64 = 2.0;
/// Queries in the compressed day (~60 simulated seconds at 500 QPS
/// mean).
const QUERIES: usize = 30_000;
/// One replica's sustainable throughput: 4 units / (1 unit x 20 ms).
const PER_REPLICA_QPS: f64 = 200.0;

/// The day's traffic: trough 100 QPS at t = 0, peak 900 QPS at t = 30.
fn day() -> DiurnalArrivals {
    DiurnalArrivals::new(100.0, 900.0, 60.0)
}

/// The failure story every strategy must ride out: replica 0 dies
/// during the morning rush and comes back 5 s later.
fn failures() -> LifecycleSchedule {
    LifecycleSchedule::empty()
        .with_event(LifecycleEvent::fail_stop(24.0, 0))
        .with_event(LifecycleEvent::recover(29.0, 0))
}

/// A worker fleet of `replicas` boxes (4 units each, 20 ms ranking
/// stage -> 200 QPS per replica) with the failure schedule attached.
fn fleet(replicas: usize) -> PipelineSpec {
    PipelineSpec::new(vec![ReplicaGroup::replicated("worker", 4, replicas)])
        .with_group_lifecycle(0, failures())
        .with_stage(StageSpec::new("rank", 0, 1, 0.02))
        .expect("stage fits the worker group")
}

/// Violation x cost score: `(1 + SLO-violating minutes) * mean fleet
/// cost` — a strategy wins by being cheap *and* healthy, and the `1 +`
/// keeps zero-violation runs comparable on cost.
fn score(result: &SimResult) -> f64 {
    (1.0 + result.slo_violation_minutes(SLO_P99_S)) * result.mean_fleet_cost()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arrivals = day();
    let lifecycle = LifecycleConfig::new().with_window(WINDOW_S);

    // --- Static baselines: fixed fleets riding the same day ---------
    let static_under = fleet(3).serve_lifecycle(
        &arrivals,
        &Fifo,
        &JoinShortestQueue,
        QUERIES,
        11,
        &lifecycle,
    )?;
    let static_n1 = fleet(6).serve_lifecycle(
        &arrivals,
        &Fifo,
        &JoinShortestQueue,
        QUERIES,
        11,
        &lifecycle,
    )?;

    // --- Closed-loop strategies: an 8-replica ceiling, 2 floor ------
    let scaled = fleet(8);
    let band = AutoscaleConfig::new(0, 2, 8, WINDOW_S)
        .with_initial_replicas(3)
        .with_warmup(1.0);
    let mut reactive_policy = ReactiveScaling::new(0.6, 4.0);
    let reactive = scaled.serve_autoscaled(
        &arrivals,
        &Fifo,
        &JoinShortestQueue,
        QUERIES,
        11,
        &band,
        &mut AsController(&mut reactive_policy),
    )?;
    let mut predictive_policy = PredictiveScaling::new(0.5, PER_REPLICA_QPS, 1.25);
    let predictive = scaled.serve_autoscaled(
        &arrivals,
        &Fifo,
        &JoinShortestQueue,
        QUERIES,
        11,
        &band,
        &mut AsController(&mut predictive_policy),
    )?;

    println!(
        "Diurnal day ({} queries, trough {:.0} / peak {:.0} QPS), replica 0 fails at t=24s, \
         recovers at t=29s; p99 SLO {} ms\n",
        QUERIES,
        100.0,
        900.0,
        SLO_P99_S * 1e3
    );
    let mut table = Table::new(vec![
        "strategy",
        "SLO-violating min",
        "mean fleet cost",
        "score",
        "completed",
    ]);
    let runs: Vec<(String, &SimResult)> = vec![
        ("static 3 (under)".to_string(), &static_under),
        ("static 6 (N+1)".to_string(), &static_n1),
        (reactive_policy.name(), &reactive),
        (predictive_policy.name(), &predictive),
    ];
    for (name, result) in &runs {
        table.row(vec![
            name.clone(),
            format!("{:.2}", result.slo_violation_minutes(SLO_P99_S)),
            format!("{:.2}", result.mean_fleet_cost()),
            format!("{:.2}", score(result)),
            format!("{}", result.completed),
        ]);
    }
    println!("{table}");

    // (c) The requeue policy loses nothing: the fail-stop killed
    // in-flight work and stranded queued queries, and every one of them
    // re-entered on a surviving replica.
    for (name, result) in &runs {
        assert_eq!(
            result.completed + result.shed + result.dropped,
            QUERIES,
            "{name}: every query must be accounted for"
        );
        assert_eq!(result.dropped, 0, "{name}: requeue never drops");
        assert_eq!(result.shed, 0, "{name}: requeue never sheds");
    }
    println!("conservation: all four runs completed every one of the {QUERIES} queries");

    // (a) Closing the loop beats static under-provisioning on health.
    let reactive_viol = reactive.slo_violation_minutes(SLO_P99_S);
    let under_viol = static_under.slo_violation_minutes(SLO_P99_S);
    assert!(
        reactive_viol < under_viol,
        "reactive ({reactive_viol:.2} min) must beat static under-provisioning \
         ({under_viol:.2} min) on SLO-violating minutes"
    );
    println!(
        "reactive scaling cuts SLO-violating minutes {under_viol:.2} -> {reactive_viol:.2} \
         vs the under-provisioned static fleet"
    );

    // (b) Prediction beats reaction on the joint violation x cost
    // score: warming capacity ahead of the peak trades a little
    // steady-state cost for far fewer hot windows.
    assert!(
        score(&predictive) < score(&reactive),
        "predictive score {:.2} must beat reactive {:.2}",
        score(&predictive),
        score(&reactive)
    );
    println!(
        "predictive scaling wins the violation x cost score: {:.2} vs reactive {:.2}",
        score(&predictive),
        score(&reactive)
    );
    Ok(())
}
