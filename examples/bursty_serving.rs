//! Batching-aware serving under realistic traffic: drive one pipeline
//! through the arrival-process x scheduling-policy matrix and watch the
//! tail move.
//!
//! The paper evaluates under Poisson arrivals with per-query FIFO
//! serving; production traffic is burstier and production servers
//! batch. This example serves the two-stage Criteo pipeline on the
//! commodity GPU+CPU platform with dynamic batching enabled and
//! compares:
//!
//! * **arrivals** — Poisson, bursty MMPP, a compressed diurnal cycle,
//!   and a closed-loop client population, all at the same nominal load;
//! * **policies** — work-conserving FIFO, a 2 ms batch window, and
//!   earliest-deadline-first against the 25 ms SLA (deadline-ordered,
//!   batching only within each query's slack budget).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example bursty_serving
//! ```

use recpipe::core::{Engine, PipelineConfig, Placement, StageConfig, Table};
use recpipe::data::{
    ArrivalProcess, ClosedLoopArrivals, DiurnalArrivals, MmppArrivals, PoissonArrivals,
};
use recpipe::models::ModelKind;
use recpipe::qsim::{BatchWindow, EarliestDeadlineFirst, Fifo, SchedulingPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pipeline = PipelineConfig::builder()
        .stage(StageConfig::new(ModelKind::RmSmall, 4096, 256))
        .stage(StageConfig::new(ModelKind::RmLarge, 256, 64))
        .build()?;

    // GPU frontend, CPU backend, with every stage carrying its
    // backend's batch-scaling curve.
    let engine = Engine::commodity(pipeline)
        .placement(Placement::gpu_frontend(2, 2))
        .batching(true)
        .quality_queries(200)
        .build()?;

    let qps = 400.0;
    println!(
        "Two-stage pipeline on {}  (per-query capacity {:.0} QPS, fully-batched {:.0} QPS)",
        engine.placement().describe(engine.backends()),
        engine.spec().max_qps(),
        engine.spec().max_qps_at_full_batch(),
    );

    let arrivals: Vec<Box<dyn ArrivalProcess>> = vec![
        Box::new(PoissonArrivals::new(qps)),
        // Quiet 100 QPS / surge 1600 QPS, same 400 QPS mean.
        Box::new(MmppArrivals::new(100.0, 1_600.0, 0.8, 0.2)),
        // A "day" compressed into 8 simulated seconds.
        Box::new(DiurnalArrivals::new(80.0, 720.0, 8.0)),
        // 24 clients thinking 60 ms between queries.
        Box::new(ClosedLoopArrivals::new(24, 0.060)),
    ];
    let policies: Vec<Box<dyn SchedulingPolicy>> = vec![
        Box::new(Fifo),
        Box::new(BatchWindow::new(0.002)),
        Box::new(EarliestDeadlineFirst::new(0.025)),
    ];

    let mut table = Table::new(vec![
        "arrivals",
        "policy",
        "p50 (ms)",
        "p99 (ms)",
        "QPS",
        "mean batch",
    ]);
    for arrival in &arrivals {
        for policy in &policies {
            let mut result = engine.serve_with(arrival.as_ref(), policy.as_ref(), 20_000);
            table.row(vec![
                arrival.name(),
                policy.name(),
                format!("{:.2}", result.p50_seconds() * 1e3),
                format!("{:.2}", result.p99_seconds() * 1e3),
                format!("{:.0}", result.qps),
                format!("{:.2}", result.mean_batch),
            ]);
        }
    }
    println!("{table}");

    println!("Reading the matrix:");
    println!(
        "  - bursty (MMPP) and diurnal arrivals fatten p99 versus Poisson at the same mean load;"
    );
    println!(
        "  - the batch window grows batches (amortizing fixed launch work) at a latency tax —"
    );
    println!("    a trade worth making near saturation, not at light load;");
    println!("  - EDF orders by system age and batches only inside each query's slack budget —");
    println!("    deadline-bounded batching between FIFO's eagerness and the fixed window;");
    println!("  - the closed loop self-regulates under FIFO (latency pinned at the floor), while");
    println!("    batch-forming policies sync its clients into convoys — EDF's deadline bound");
    println!("    keeps those convoys far shorter than the fixed window's.");
    Ok(())
}
