//! Quickstart: build a two-stage recommendation pipeline, bind it to
//! hardware with the `Engine` API, and compare it against the
//! single-stage monolith on CPU and RPAccel.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use recpipe::accel::Partition;
use recpipe::core::{Engine, PipelineConfig, Placement, StageConfig, Table};
use recpipe::models::ModelKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's canonical Criteo designs: a monolithic RMlarge ranking
    // all 4096 candidates, and the two-stage funnel that filters with
    // RMsmall first.
    let single = PipelineConfig::single_stage(ModelKind::RmLarge, 4096, 64)?;
    let multi = PipelineConfig::builder()
        .stage(StageConfig::new(ModelKind::RmSmall, 4096, 256))
        .stage(StageConfig::new(ModelKind::RmLarge, 256, 64))
        .build()?;

    // One engine per (pipeline, hardware) pair; each evaluate() call
    // answers quality + tail latency + throughput together.
    let qps = 500.0;
    let cpu_single = Engine::commodity(single.clone())
        .placement(Placement::cpu_only(1))
        .load(qps)
        .quality_queries(400)
        .sim_queries(4_000)
        .build()?;
    let cpu_multi = Engine::commodity(multi.clone())
        .placement(Placement::cpu_only(2))
        .load(qps)
        .quality_queries(400)
        .sim_queries(4_000)
        .build()?;
    let accel_multi = Engine::rpaccel(multi.clone(), Partition::symmetric(8, 2))
        .load(qps)
        .quality_queries(400)
        .sim_queries(4_000)
        .build()?;

    let mut table = Table::new(vec!["design", "platform", "NDCG", "p99 (ms)"]);
    let mut outcomes = Vec::new();
    for (engine, platform) in [
        (&cpu_single, "CPU (64 cores)"),
        (&cpu_multi, "CPU (64 cores)"),
        (&accel_multi, "RPAccel(8,2)"),
    ] {
        let outcome = engine.evaluate();
        table.row(vec![
            outcome.pipeline.describe(),
            platform.into(),
            format!("{:.2}", outcome.ndcg_percent()),
            format!("{:.2}", outcome.p99_ms()),
        ]);
        outcomes.push(outcome);
    }

    println!("RecPipe quickstart — Criteo-like workload at {qps} QPS\n");
    println!("{table}");
    println!(
        "Two-stage cuts CPU tail latency {:.1}x at iso-quality; RPAccel adds another {:.1}x.",
        outcomes[0].p99_s / outcomes[1].p99_s,
        outcomes[1].p99_s / outcomes[2].p99_s,
    );
    Ok(())
}
