//! Quickstart: build a two-stage recommendation pipeline, measure its
//! quality, and compare its tail latency against the single-stage
//! monolith on CPU, GPU, and RPAccel.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use recpipe::accel::Partition;
use recpipe::core::{
    Mapping, PerformanceEvaluator, PipelineConfig, QualityEvaluator, StageConfig, Table,
};
use recpipe::models::ModelKind;

fn main() {
    // The paper's canonical Criteo designs: a monolithic RMlarge ranking
    // all 4096 candidates, and the two-stage funnel that filters with
    // RMsmall first.
    let single = PipelineConfig::single_stage(ModelKind::RmLarge, 4096, 64)
        .expect("valid single-stage pipeline");
    let multi = PipelineConfig::builder()
        .stage(StageConfig::new(ModelKind::RmSmall, 4096, 256))
        .stage(StageConfig::new(ModelKind::RmLarge, 256, 64))
        .build()
        .expect("valid two-stage pipeline");

    // Quality: NDCG of the served top-64 (paper metric, x100).
    let quality = QualityEvaluator::criteo_like(64).queries(400);
    let q_single = quality.evaluate(&single);
    let q_multi = quality.evaluate(&multi);

    // Performance: p99 tail latency at 500 QPS on each platform.
    let perf = PerformanceEvaluator::table2_defaults().sim_queries(4000);
    let qps = 500.0;
    let mut cpu_single = perf.evaluate(&single, &Mapping::cpu_only(1), qps);
    let mut cpu_multi = perf.evaluate(&multi, &Mapping::cpu_only(2), qps);
    let mut accel_multi = perf.evaluate_accel(&multi, Partition::symmetric(8, 2), qps);

    let mut table = Table::new(vec!["design", "platform", "NDCG", "p99 (ms)"]);
    table.row(vec![
        single.describe(),
        "CPU (64 cores)".into(),
        format!("{:.2}", q_single.ndcg_percent()),
        format!("{:.2}", cpu_single.p99_seconds() * 1e3),
    ]);
    table.row(vec![
        multi.describe(),
        "CPU (64 cores)".into(),
        format!("{:.2}", q_multi.ndcg_percent()),
        format!("{:.2}", cpu_multi.p99_seconds() * 1e3),
    ]);
    table.row(vec![
        multi.describe(),
        "RPAccel(8,2)".into(),
        format!("{:.2}", q_multi.ndcg_percent()),
        format!("{:.2}", accel_multi.p99_seconds() * 1e3),
    ]);

    println!("RecPipe quickstart — Criteo-like workload at {qps} QPS\n");
    println!("{table}");
    println!(
        "Two-stage cuts CPU tail latency {:.1}x at iso-quality; RPAccel adds another {:.1}x.",
        cpu_single.p99_seconds() / cpu_multi.p99_seconds(),
        cpu_multi.p99_seconds() / accel_multi.p99_seconds(),
    );
}
